//! Summary statistics across seeded runs.

/// Mean and (sample) standard deviation — the paper plots the mean of
/// nine runs with standard-deviation error bars.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeanStd {
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (0 for fewer than two samples).
    pub std: f64,
    /// Number of samples.
    pub n: usize,
}

impl MeanStd {
    /// Summarize a sample set.
    pub fn from_samples(samples: &[f64]) -> Self {
        let n = samples.len();
        if n == 0 {
            return MeanStd {
                mean: 0.0,
                std: 0.0,
                n: 0,
            };
        }
        let mean = samples.iter().sum::<f64>() / n as f64;
        let std = if n < 2 {
            0.0
        } else {
            let var = samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / (n - 1) as f64;
            var.sqrt()
        };
        MeanStd { mean, std, n }
    }
}

/// Latency summary over a run's windows: median, 95th percentile, and
/// maximum result latency (seconds past each window's close).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyStats {
    /// Median latency.
    pub p50: f64,
    /// 95th-percentile latency.
    pub p95: f64,
    /// Worst-case latency.
    pub max: f64,
}

impl LatencyStats {
    /// Summarize a latency sample set (seconds). Empty input yields
    /// zeros.
    pub fn from_samples(samples: &[f64]) -> Self {
        if samples.is_empty() {
            return LatencyStats {
                p50: 0.0,
                p95: 0.0,
                max: 0.0,
            };
        }
        let mut sorted = samples.to_vec();
        sorted.sort_by(f64::total_cmp);
        LatencyStats {
            p50: percentile(&sorted, 0.50),
            p95: percentile(&sorted, 0.95),
            max: *sorted.last().expect("nonempty"),
        }
    }
}

/// Nearest-rank percentile over a sorted slice.
fn percentile(sorted: &[f64], q: f64) -> f64 {
    let n = sorted.len();
    let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
    sorted[rank - 1]
}

impl MeanStd {
    /// Welch's t statistic for the difference of this mean from
    /// `other`'s (negative when this mean is smaller). Returns 0 when
    /// either sample is too small or both variances vanish with equal
    /// means, and ±∞ when variances vanish but means differ.
    pub fn welch_t(&self, other: &MeanStd) -> f64 {
        if self.n < 2 || other.n < 2 {
            return 0.0;
        }
        let var = self.std * self.std / self.n as f64 + other.std * other.std / other.n as f64;
        let diff = self.mean - other.mean;
        if var <= 0.0 {
            return if diff == 0.0 {
                0.0
            } else {
                diff.signum() * f64::INFINITY
            };
        }
        diff / var.sqrt()
    }

    /// Is this mean smaller than `other`'s by a conventionally
    /// significant margin (|t| > 2, roughly p < 0.05 for the sample
    /// sizes the experiments use)?
    pub fn significantly_less(&self, other: &MeanStd) -> bool {
        self.welch_t(other) < -2.0
    }

    /// One-sample t statistic against zero (for paired-difference
    /// samples). Returns 0 for fewer than two samples, ±∞ for a
    /// non-zero constant sample.
    pub fn t_vs_zero(&self) -> f64 {
        if self.n < 2 {
            return 0.0;
        }
        if self.std == 0.0 {
            return if self.mean == 0.0 {
                0.0
            } else {
                self.mean.signum() * f64::INFINITY
            };
        }
        self.mean / (self.std / (self.n as f64).sqrt())
    }

    /// Is this (paired-difference) mean significantly above zero?
    pub fn significantly_positive(&self) -> bool {
        self.t_vs_zero() > 2.0
    }
}

impl dt_types::ToJson for MeanStd {
    fn to_json(&self) -> dt_types::Json {
        dt_types::json::obj(vec![
            ("mean", self.mean.to_json()),
            ("std", self.std.to_json()),
            ("n", self.n.to_json()),
        ])
    }
}

impl dt_types::ToJson for LatencyStats {
    fn to_json(&self) -> dt_types::Json {
        dt_types::json::obj(vec![
            ("p50", self.p50.to_json()),
            ("p95", self.p95.to_json()),
            ("max", self.max.to_json()),
        ])
    }
}

impl std::fmt::Display for MeanStd {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.3} ± {:.3}", self.mean, self.std)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_singleton() {
        let e = MeanStd::from_samples(&[]);
        assert_eq!((e.mean, e.std, e.n), (0.0, 0.0, 0));
        let s = MeanStd::from_samples(&[4.0]);
        assert_eq!((s.mean, s.std, s.n), (4.0, 0.0, 1));
    }

    #[test]
    fn known_values() {
        let m = MeanStd::from_samples(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((m.mean - 5.0).abs() < 1e-12);
        // Sample variance of this classic set is 32/7.
        assert!((m.std - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn latency_percentiles() {
        let samples: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let l = LatencyStats::from_samples(&samples);
        assert_eq!(l.p50, 50.0);
        assert_eq!(l.p95, 95.0);
        assert_eq!(l.max, 100.0);
        // Unsorted input is handled.
        let l = LatencyStats::from_samples(&[3.0, 1.0, 2.0]);
        assert_eq!(l.p50, 2.0);
        assert_eq!(l.max, 3.0);
        let e = LatencyStats::from_samples(&[]);
        assert_eq!((e.p50, e.p95, e.max), (0.0, 0.0, 0.0));
        // Singleton.
        let s = LatencyStats::from_samples(&[7.0]);
        assert_eq!((s.p50, s.p95, s.max), (7.0, 7.0, 7.0));
    }

    #[test]
    fn welch_t_behaviour() {
        let lo = MeanStd::from_samples(&[1.0, 1.1, 0.9, 1.0, 1.05]);
        let hi = MeanStd::from_samples(&[5.0, 5.2, 4.8, 5.1, 4.9]);
        assert!(lo.significantly_less(&hi));
        assert!(!hi.significantly_less(&lo));
        assert!(lo.welch_t(&hi) < -10.0);
        // Overlapping samples: no significance either way.
        let a = MeanStd::from_samples(&[1.0, 5.0, 3.0]);
        let b = MeanStd::from_samples(&[2.0, 4.0, 3.5]);
        assert!(!a.significantly_less(&b));
        assert!(!b.significantly_less(&a));
        // Degenerate cases.
        let single = MeanStd::from_samples(&[1.0]);
        assert_eq!(single.welch_t(&hi), 0.0);
        let const_a = MeanStd::from_samples(&[2.0, 2.0]);
        let const_b = MeanStd::from_samples(&[3.0, 3.0]);
        assert_eq!(const_a.welch_t(&const_b), f64::NEG_INFINITY);
        assert!(const_a.significantly_less(&const_b));
        assert_eq!(const_a.welch_t(&const_a.clone()), 0.0);
    }

    #[test]
    fn one_sample_t() {
        let d = MeanStd::from_samples(&[1.0, 1.2, 0.9, 1.1]);
        assert!(d.significantly_positive());
        let noisy = MeanStd::from_samples(&[1.0, -1.0, 0.5, -0.6]);
        assert!(!noisy.significantly_positive());
        assert_eq!(MeanStd::from_samples(&[5.0]).t_vs_zero(), 0.0);
        assert_eq!(
            MeanStd::from_samples(&[2.0, 2.0]).t_vs_zero(),
            f64::INFINITY
        );
        assert_eq!(MeanStd::from_samples(&[0.0, 0.0]).t_vs_zero(), 0.0);
    }

    #[test]
    fn display_formats() {
        let m = MeanStd::from_samples(&[1.0, 3.0]);
        assert_eq!(m.to_string(), "2.000 ± 1.414");
    }
}
