//! The delay-constraint sweep: the accuracy cost of a latency
//! contract (DESIGN.md §11).
//!
//! The rate sweeps of [`crate::experiment`] hold the triage queue
//! bound fixed and vary the arrival rate; this sweep holds an
//! *overload* rate fixed and varies the [`DelayConstraint`] handed to
//! the adaptive controller. Each run generates **one** arrival
//! sequence shared by every constraint (the same fairness discipline
//! the mode comparison uses), computes the ideal result offline, and
//! records per constraint: RMS error, shed fraction, and the window
//! result-latency distribution — the delay-vs-accuracy tradeoff curve
//! in one table.
//!
//! A point with `constraint_ms == None` is the uncontrolled baseline
//! (fixed queue capacity only); it doubles as the regression anchor —
//! a generous constraint must reproduce it bit for bit.
//!
//! Two boundary effects to keep in mind when reading the table:
//!
//! * A constraint whose derived threshold exceeds the *total* queue
//!   capacity never engages — the point degenerates to the baseline,
//!   including the baseline's latency tail. Constraints only tighten
//!   the capacity bound; they cannot loosen it.
//! * The workload is finite: windows still open at the last arrival
//!   are all sealed when the final backlog drain completes, so the
//!   baseline's trailing windows report up to a full drain (capacity
//!   × per-tuple cost) of extra latency. An engaged controller keeps
//!   that drain under the constraint, which is exactly the guarantee
//!   being measured.

use crate::experiment::SweepConfig;
use crate::ideal::ideal_map;
use crate::rms::{latencies, report_into_map, rms_error};
use crate::stats::MeanStd;
use dt_engine::CostModel;
use dt_triage::{DelayConstraint, Pipeline, PipelineConfig, ShedMode};
use dt_types::{DtError, DtResult, VDuration};
use dt_workload::{generate, ArrivalModel, WorkloadConfig};

/// One constraint's aggregate numbers across the seeded runs.
#[derive(Debug, Clone)]
pub struct DelayPoint {
    /// The delay constraint in milliseconds; `None` is the
    /// uncontrolled baseline (shed on queue overflow only).
    pub constraint_ms: Option<u64>,
    /// RMS error summarized over the runs.
    pub rms: MeanStd,
    /// Fraction of tuples shed, pooled over the runs.
    pub drop_fraction: f64,
    /// Median window result latency (seconds past window close),
    /// pooled over every window of every run.
    pub p50_latency: f64,
    /// 99th-percentile window result latency (seconds).
    pub p99_latency: f64,
    /// Worst-case window result latency (seconds).
    pub max_latency: f64,
    /// Windows whose result latency exceeded the constraint by more
    /// than one engine tick (always 0 for the unconstrained baseline).
    pub deadline_misses: u64,
    /// Total windows emitted across runs.
    pub windows: u64,
}

impl dt_types::ToJson for DelayPoint {
    fn to_json(&self) -> dt_types::Json {
        dt_types::json::obj(vec![
            ("constraint_ms", self.constraint_ms.to_json()),
            ("rms", self.rms.to_json()),
            ("drop_fraction", self.drop_fraction.to_json()),
            ("p50_latency", self.p50_latency.to_json()),
            ("p99_latency", self.p99_latency.to_json()),
            ("max_latency", self.max_latency.to_json()),
            ("deadline_misses", self.deadline_misses.to_json()),
            ("windows", self.windows.to_json()),
        ])
    }
}

/// Nearest-rank percentile over unsorted samples (0 when empty).
fn percentile(samples: &[f64], q: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(f64::total_cmp);
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Run the delay sweep: `cfg` supplies the query, workload template,
/// run count, and engine/queue parameters (its `modes` field is
/// ignored — the sweep always runs [`ShedMode::DataTriage`]); `rate`
/// is the fixed arrival rate (choose one above `engine_capacity`, or
/// nothing ever sheds); `constraints_ms` lists the swept constraints,
/// with `None` meaning "no controller".
///
/// Determinism: run `r`'s seed is a pure function of `r`, every
/// constraint replays the identical arrival sequence, and constraints
/// are evaluated in the order given — the output is bit-reproducible.
pub fn delay_sweep(
    cfg: &SweepConfig,
    rate: f64,
    constraints_ms: &[Option<u64>],
) -> DtResult<Vec<DelayPoint>> {
    if cfg.runs == 0 {
        return Err(DtError::config("delay sweep needs at least one run"));
    }
    if constraints_ms.is_empty() {
        return Err(DtError::config("delay sweep needs at least one constraint"));
    }
    let width = VDuration::from_secs_f64(cfg.tuples_per_window as f64 / rate);
    if width.is_zero() {
        return Err(DtError::config(format!(
            "window width rounds to zero at rate {rate}"
        )));
    }
    let cost = CostModel::from_capacity(cfg.engine_capacity)?;
    // One engine tick: the busy time one Data Triage tuple holds the
    // engine (service plus the kept-synopsis fold). The deadline test
    // allows this much slack past the constraint — the tuple in
    // service when the window closes cannot be preempted.
    let tick = (cost.service_time + cost.synopsis_insert_time).as_secs_f64();

    let n = constraints_ms.len();
    let mut errs: Vec<Vec<f64>> = vec![Vec::new(); n];
    let mut dropped = vec![0u64; n];
    let mut arrived = vec![0u64; n];
    let mut lats: Vec<Vec<f64>> = vec![Vec::new(); n];
    let mut misses = vec![0u64; n];
    let mut windows = vec![0u64; n];

    for run in 0..cfg.runs {
        let seed = (run as u64 + 1).wrapping_mul(0x9E3779B97F4A7C15);
        let workload = WorkloadConfig {
            arrival: ArrivalModel::Constant { rate },
            seed,
            ..cfg.workload.clone()
        };
        let arrivals = generate(&workload)?;
        let plan = cfg.plan_with_window(width)?;
        let ideal = ideal_map(&plan, &arrivals)?;

        for (ci, &constraint) in constraints_ms.iter().enumerate() {
            let mut pcfg = PipelineConfig::new(ShedMode::DataTriage);
            pcfg.policy = cfg.policy;
            pcfg.queue_capacity = cfg.queue_capacity;
            pcfg.cost = cost;
            pcfg.synopsis = cfg.synopsis;
            pcfg.seed = seed;
            pcfg.delay = constraint.map(DelayConstraint::from_millis).transpose()?;
            let report = Pipeline::run(plan.clone(), pcfg, arrivals.iter().cloned())?;
            let run_lats = latencies(&report);
            windows[ci] += run_lats.len() as u64;
            if let Some(ms) = constraint {
                let deadline = ms as f64 / 1_000.0 + tick;
                misses[ci] += run_lats.iter().filter(|&&l| l > deadline).count() as u64;
            }
            lats[ci].extend(run_lats);
            dropped[ci] += report.totals.dropped;
            arrived[ci] += report.totals.arrived;
            let actual = report_into_map(report);
            errs[ci].push(rms_error(&ideal, &actual));
        }
    }

    Ok(constraints_ms
        .iter()
        .enumerate()
        .map(|(ci, &constraint_ms)| DelayPoint {
            constraint_ms,
            rms: MeanStd::from_samples(&errs[ci]),
            drop_fraction: if arrived[ci] == 0 {
                0.0
            } else {
                dropped[ci] as f64 / arrived[ci] as f64
            },
            p50_latency: percentile(&lats[ci], 0.50),
            p99_latency: percentile(&lats[ci], 0.99),
            max_latency: percentile(&lats[ci], 1.0),
            deadline_misses: misses[ci],
            windows: windows[ci],
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dt_types::ToJson;

    fn quick_cfg() -> SweepConfig {
        let mut cfg = SweepConfig::paper_default();
        cfg.runs = 2;
        cfg.workload.total_tuples = 4_000;
        cfg.tuples_per_window = 400;
        cfg.engine_capacity = 1_000.0;
        cfg.queue_capacity = 100;
        cfg
    }

    #[test]
    fn generous_constraint_matches_uncontrolled_baseline() {
        // A constraint far above what the queue bound already implies
        // must change nothing: the controller's verdict is always Keep
        // and the run replays the exact baseline decisions.
        let points = delay_sweep(&quick_cfg(), 2_000.0, &[None, Some(600_000)]).unwrap();
        assert_eq!(
            points[0].rms.to_json().render(),
            points[1].rms.to_json().render(),
            "generous constraint perturbed the baseline"
        );
        assert_eq!(points[0].drop_fraction, points[1].drop_fraction);
        assert_eq!(points[1].deadline_misses, 0);
    }

    #[test]
    fn tighter_constraints_shed_more_and_bound_latency() {
        // Constraints chosen in the *active* region: each threshold is
        // below the 300-tuple total queue capacity, so the controller
        // is the binding shed signal at every point.
        let cfg = quick_cfg();
        let sweep = [None, Some(200), Some(50), Some(20)];
        let points = delay_sweep(&cfg, 2_000.0, &sweep).unwrap();
        // Tightening the constraint can only increase shedding…
        for pair in points.windows(2) {
            assert!(
                pair[1].drop_fraction >= pair[0].drop_fraction - 1e-12,
                "constraint {:?} shed less than {:?}",
                pair[1].constraint_ms,
                pair[0].constraint_ms
            );
        }
        // …and each constrained point honors its deadline.
        for p in &points[1..] {
            assert_eq!(
                p.deadline_misses, 0,
                "constraint {:?} missed deadlines",
                p.constraint_ms
            );
        }
        // The tight constraint actually bites: it sheds harder than
        // the baseline and pulls p99 latency under its own bound.
        let base = &points[0];
        let tight = &points[3];
        assert!(tight.drop_fraction > base.drop_fraction);
        // 20 ms constraint, one ~1.02 ms engine tick of slack.
        assert!(tight.p99_latency <= 0.020 + 1.1e-3, "{}", tight.p99_latency);
    }

    #[test]
    fn rejects_degenerate_configs() {
        let mut cfg = quick_cfg();
        assert!(delay_sweep(&cfg, 2_000.0, &[]).is_err());
        cfg.runs = 0;
        assert!(delay_sweep(&cfg, 2_000.0, &[None]).is_err());
    }
}
