//! The RMS error metric of paper §6.3.

use dt_triage::{RunReport, WindowPayload};
use dt_types::{Row, WindowId};

/// Query results in comparable form: `(window, group key)` →
/// aggregate values.
pub type ResultMap = dt_types::FxHashMap<(WindowId, Row), Vec<f64>>;

/// Flatten a pipeline run's grouped windows into a [`ResultMap`].
/// Non-aggregating windows are skipped (RMS is defined over grouped
/// aggregates).
pub fn report_to_map(report: &RunReport) -> ResultMap {
    let mut out = ResultMap::default();
    for w in &report.windows {
        if let WindowPayload::Groups(groups) = &w.payload {
            for (key, vals) in groups {
                out.insert((w.window, key.clone()), vals.clone());
            }
        }
    }
    out
}

/// [`report_to_map`], consuming the report: group keys and aggregate
/// vectors move into the map instead of being cloned. Use when the
/// report is not needed afterwards (the experiment driver's hot loop).
pub fn report_into_map(report: RunReport) -> ResultMap {
    let mut out = ResultMap::default();
    for w in report.windows {
        if let WindowPayload::Groups(groups) = w.payload {
            for (key, vals) in groups {
                out.insert((w.window, key), vals);
            }
        }
    }
    out
}

/// Per-window result latencies of a run, in seconds.
pub fn latencies(report: &RunReport) -> Vec<f64> {
    report
        .windows
        .iter()
        .map(|w| w.latency(report.window_spec).as_secs_f64())
        .collect()
}

/// Root-mean-square difference between an ideal and an actual result
/// set.
///
/// ```
/// use dt_metrics::{rms_error, ResultMap};
/// use dt_types::Row;
///
/// let mut ideal = ResultMap::default();
/// ideal.insert((0, Row::from_ints(&[1])), vec![10.0]);
/// let mut actual = ResultMap::default();
/// actual.insert((0, Row::from_ints(&[1])), vec![7.0]);
/// assert_eq!(rms_error(&ideal, &actual), 3.0);
/// // A group missing from the actual results counts in full.
/// assert_eq!(rms_error(&ideal, &ResultMap::default()), 10.0);
/// ```
///
/// Errors accumulate over the **union** of `(window, group)` keys —
/// a group missing from the actual results contributes its full ideal
/// value as error (and vice versa for spurious groups), so "drop
/// everything" cannot score well. NaN components (e.g. `MIN` of a
/// group reconstructed only from a synopsis) are treated as absent,
/// i.e. zero.
///
/// The mean is taken over the **ideal** result's components (falling
/// back to the union count when the ideal is empty), never over
/// whatever the estimator chose to emit: normalizing by emitted keys
/// would let an approximation *lower* its RMS by spreading many
/// near-zero spurious groups, rewarding blur over accuracy.
pub fn rms_error(ideal: &ResultMap, actual: &ResultMap) -> f64 {
    let mut sum_sq = 0.0;
    let mut n_union = 0usize;
    let mut n_ideal = 0usize;
    let zero: Vec<f64> = Vec::new();
    // A *sorted* key union: floating-point accumulation must visit
    // keys in a reproducible order, or the last ulp of the error
    // varies with the hash maps' per-instance hasher seeds (which
    // would break the bit-identical serial-vs-parallel sweep
    // guarantee). Sorting a flat vector beats a tree set here: one
    // allocation, cache-friendly dedup.
    let mut keys: Vec<&(WindowId, Row)> = ideal.keys().chain(actual.keys()).collect();
    keys.sort_unstable();
    keys.dedup();
    for key in keys {
        let i = ideal.get(key).unwrap_or(&zero);
        let a = actual.get(key).unwrap_or(&zero);
        let arity = i.len().max(a.len());
        n_union += arity;
        n_ideal += i.len();
        for idx in 0..arity {
            let iv = i.get(idx).copied().unwrap_or(0.0);
            let av = a.get(idx).copied().unwrap_or(0.0);
            let iv = if iv.is_nan() { 0.0 } else { iv };
            let av = if av.is_nan() { 0.0 } else { av };
            sum_sq += (av - iv).powi(2);
        }
    }
    let n = if n_ideal > 0 { n_ideal } else { n_union };
    if n == 0 {
        0.0
    } else {
        (sum_sq / n as f64).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(w: WindowId, g: i64) -> (WindowId, Row) {
        (w, Row::from_ints(&[g]))
    }

    #[test]
    fn identical_maps_have_zero_error() {
        let mut m = ResultMap::default();
        m.insert(key(0, 1), vec![5.0]);
        m.insert(key(1, 2), vec![7.0, 3.0]);
        assert_eq!(rms_error(&m, &m), 0.0);
    }

    #[test]
    fn missing_groups_count_fully() {
        let mut ideal = ResultMap::default();
        ideal.insert(key(0, 1), vec![3.0]);
        ideal.insert(key(0, 2), vec![4.0]);
        let actual = ResultMap::default();
        // sqrt((9 + 16)/2) = sqrt(12.5)
        assert!((rms_error(&ideal, &actual) - 12.5f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn spurious_groups_count_fully() {
        let ideal = ResultMap::default();
        let mut actual = ResultMap::default();
        actual.insert(key(0, 1), vec![6.0]);
        assert!((rms_error(&ideal, &actual) - 6.0).abs() < 1e-12);
    }

    #[test]
    fn partial_error_averages() {
        let mut ideal = ResultMap::default();
        ideal.insert(key(0, 1), vec![10.0]);
        ideal.insert(key(0, 2), vec![10.0]);
        let mut actual = ResultMap::default();
        actual.insert(key(0, 1), vec![10.0]);
        actual.insert(key(0, 2), vec![6.0]);
        // sqrt((0 + 16)/2)
        assert!((rms_error(&ideal, &actual) - 8.0f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn nan_treated_as_missing() {
        let mut ideal = ResultMap::default();
        ideal.insert(key(0, 1), vec![3.0]);
        let mut actual = ResultMap::default();
        actual.insert(key(0, 1), vec![f64::NAN]);
        assert!((rms_error(&ideal, &actual) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_maps_zero() {
        assert_eq!(rms_error(&ResultMap::default(), &ResultMap::default()), 0.0);
    }

    #[test]
    fn mismatched_arity_pads_with_zero() {
        let mut ideal = ResultMap::default();
        ideal.insert(key(0, 1), vec![1.0, 2.0]);
        let mut actual = ResultMap::default();
        actual.insert(key(0, 1), vec![1.0]);
        assert!((rms_error(&ideal, &actual) - 2.0f64.powi(2).div_euclid(2.0).sqrt()).abs() < 1e-9);
    }
}
