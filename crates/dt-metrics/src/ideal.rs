//! Exact offline evaluation: the "ideal" result of §6.3, computed
//! from the original data with no shedding.

use std::collections::BTreeMap;

use dt_engine::execute_window_rows;
use dt_query::QueryPlan;
use dt_types::{DtError, DtResult, Row, Tuple, WindowId};

use crate::rms::ResultMap;

/// Evaluate the plan exactly over a full arrival sequence, producing
/// per-window grouped results keyed like [`ResultMap`].
///
/// The plan must be aggregating (RMS is defined over grouped
/// aggregates) and all streams must share one window width, as in the
/// pipeline.
pub fn ideal_map(plan: &QueryPlan, arrivals: &[(usize, Tuple)]) -> DtResult<ResultMap> {
    if !plan.is_aggregating() && plan.group_by.is_empty() {
        return Err(DtError::config("ideal_map requires an aggregating query"));
    }
    let spec = plan.streams[0].window;
    if plan.streams.iter().any(|s| s.window != spec) {
        return Err(DtError::config("streams must share one window width"));
    }
    let n = plan.streams.len();
    // Bucket row *references* per window per stream — the arrivals
    // own every row; execution borrows them in place.
    let mut windows: BTreeMap<WindowId, Vec<Vec<&Row>>> = BTreeMap::new();
    for (stream, tuple) in arrivals {
        if *stream >= n {
            return Err(DtError::config(format!("unknown stream {stream}")));
        }
        for w in spec.windows_of(tuple.ts) {
            windows.entry(w).or_insert_with(|| vec![Vec::new(); n])[*stream].push(&tuple.row);
        }
    }
    let mut out = ResultMap::default();
    for (w, inputs) in windows {
        if let dt_engine::WindowOutput::Groups(groups) = execute_window_rows(plan, &inputs)? {
            for (key, vals) in groups {
                let vals: Vec<f64> = vals.iter().map(|a| a.value).collect();
                // HAVING applies at result emission (same rule as the
                // pipeline's merge stage).
                if !plan.having_accepts(&vals) {
                    continue;
                }
                out.insert((w, key), vals);
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dt_query::{parse_select, Catalog, Planner};
    use dt_types::{DataType, Schema, Timestamp};

    fn plan(sql: &str) -> QueryPlan {
        let mut c = Catalog::new();
        c.add_stream("R", Schema::from_pairs(&[("a", DataType::Int)]));
        Planner::new(&c).plan(&parse_select(sql).unwrap()).unwrap()
    }

    fn tup(v: i64, us: u64) -> Tuple {
        Tuple::new(Row::from_ints(&[v]), Timestamp::from_micros(us))
    }

    #[test]
    fn windows_partition_by_timestamp() {
        let p = plan("SELECT a, COUNT(*) FROM R GROUP BY a");
        let arrivals = vec![
            (0usize, tup(1, 100_000)),
            (0, tup(1, 200_000)),
            (0, tup(2, 1_200_000)),
        ];
        let m = ideal_map(&p, &arrivals).unwrap();
        assert_eq!(m[&(0, Row::from_ints(&[1]))], vec![2.0]);
        assert_eq!(m[&(1, Row::from_ints(&[2]))], vec![1.0]);
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn non_aggregating_rejected() {
        let p = plan("SELECT a FROM R");
        assert!(ideal_map(&p, &[]).is_err());
    }

    #[test]
    fn unknown_stream_rejected() {
        let p = plan("SELECT a, COUNT(*) FROM R GROUP BY a");
        assert!(ideal_map(&p, &[(3, tup(1, 0))]).is_err());
    }

    #[test]
    fn empty_arrivals_empty_map() {
        let p = plan("SELECT a, COUNT(*) FROM R GROUP BY a");
        assert!(ideal_map(&p, &[]).unwrap().is_empty());
    }
}
