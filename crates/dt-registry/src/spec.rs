//! Registration requests and query snapshots.

use dt_triage::DelayConstraint;
use dt_types::WindowId;

/// A registered query's identity. Ids are assigned once, in
/// registration order, and never reused — result consumers key their
/// output by `QueryId`, so a recycled id could silently splice two
/// different queries' result streams together.
pub type QueryId = u64;

/// One registration request.
#[derive(Debug, Clone, PartialEq)]
pub struct QuerySpec {
    /// The TCQ-dialect statement.
    pub sql: String,
    /// Owning tenant; `None` lands the query (and its constraint) in
    /// the stream's catch-all lane.
    pub tenant: Option<String>,
    /// The tenant's delay constraint for this query, if any.
    pub delay: Option<DelayConstraint>,
    /// Fair-share weight of the owning tenant (must be positive). A
    /// tenant registered several times gets the maximum.
    pub weight: f64,
}

impl QuerySpec {
    /// A plain registration: no tenant, no constraint, weight 1.
    pub fn new(sql: impl Into<String>) -> Self {
        QuerySpec {
            sql: sql.into(),
            tenant: None,
            delay: None,
            weight: 1.0,
        }
    }

    /// Attach a tenant name.
    pub fn tenant(mut self, tenant: impl Into<String>) -> Self {
        self.tenant = Some(tenant.into());
        self
    }

    /// Attach a delay constraint.
    pub fn delay(mut self, delay: DelayConstraint) -> Self {
        self.delay = Some(delay);
        self
    }

    /// Set the fair-share weight.
    pub fn weight(mut self, weight: f64) -> Self {
        self.weight = weight;
        self
    }
}

/// A frozen view of one registered query, for `list` and `/stats`.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryInfo {
    /// The query's id.
    pub id: QueryId,
    /// The registered statement.
    pub sql: String,
    /// Owning tenant, if any.
    pub tenant: Option<String>,
    /// The query's delay constraint, if any.
    pub delay: Option<DelayConstraint>,
    /// Fair-share weight.
    pub weight: f64,
    /// Catalog streams the query reads.
    pub streams: Vec<String>,
    /// First window the query covers.
    pub active_from: WindowId,
    /// One past the last covered window; `None` while registered.
    pub active_to: Option<WindowId>,
    /// Windows emitted for this query so far.
    pub windows_emitted: u64,
    /// Last window's estimated-mass share (the RMS-error proxy; see
    /// [`dt_triage::QueryClose::estimated_share`]).
    pub estimated_share: f64,
    /// Last window's shed share over the query's streams.
    pub shed_share: f64,
}

impl QueryInfo {
    /// True while the query is still registered.
    pub fn active(&self) -> bool {
        self.active_to.is_none()
    }
}
