//! The registry proper: compile, attach, fan out, detach.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::RwLock;

use dt_obs::{Counter, Gauge, MetricsRegistry};
use dt_query::{parse_select, Catalog, Planner};
use dt_triage::{
    DelayConstraint, LaneSpec, QueryClose, QueryExecutor, SharedStream, ShedMode, SynPair,
};
use dt_types::{DtError, DtResult, Row, WindowId, WindowSpec};

use crate::spec::{QueryId, QueryInfo, QuerySpec};

/// Everything fixed at server startup that registration must honor.
#[derive(Debug, Clone)]
pub struct RegistryConfig {
    /// Stream catalog queries are planned against. Its insertion
    /// order *is* the physical stream table — workers, sealed
    /// windows, and [`WindowInputs`] all index streams by catalog
    /// position.
    pub catalog: Catalog,
    /// The shedding methodology every query runs under.
    pub mode: ShedMode,
    /// The server's single window spec: every stream seals on this
    /// cadence, so every query must use it.
    pub spec: WindowSpec,
    /// When true (the server was started with a window override),
    /// registered plans get their windows rewritten to `spec` instead
    /// of being rejected on mismatch — the same treatment the
    /// server's initial queries received.
    pub override_windows: bool,
}

/// One sealed window's per-stream state, indexed by physical stream.
#[derive(Debug, Clone, Copy)]
pub struct WindowInputs<'a> {
    /// Kept rows per stream, in arrival order.
    pub rows: &'a [Vec<Row>],
    /// Sealed kept/dropped synopses per stream (synopsis modes only).
    pub pairs: Option<&'a [SynPair]>,
    /// `(kept, dropped)` tuple counts per stream for this window —
    /// feeds the per-query shed-share gauge.
    pub counts: &'a [(u64, u64)],
}

/// Per-query instruments (default = disabled no-ops).
#[derive(Debug, Default)]
struct QueryGauges {
    windows: Counter,
    estimated_share: Gauge,
    shed_share: Gauge,
}

impl QueryGauges {
    fn register(reg: &MetricsRegistry, id: QueryId) -> Self {
        let label = id.to_string();
        QueryGauges {
            windows: reg.counter(
                "dt_registry_query_windows_total",
                "Windows emitted per registered query",
                &[("query", &label)],
            ),
            estimated_share: reg.gauge(
                "dt_registry_query_estimated_share",
                "Last window's estimated-mass share per query (per-mille, 0-1000) - the RMS-error proxy",
                &[("query", &label)],
            ),
            shed_share: reg.gauge(
                "dt_registry_query_shed_share",
                "Last window's shed share over the query's streams (per-mille, 0-1000)",
                &[("query", &label)],
            ),
        }
    }
}

/// One registered query's compiled state. Counters are atomic so
/// `close_window` runs under the read lock.
#[derive(Debug)]
struct RegisteredQuery {
    id: QueryId,
    sql: String,
    tenant: Option<String>,
    delay: Option<DelayConstraint>,
    weight: f64,
    /// Single-query executor: main plan + shadow rewrite.
    exec: QueryExecutor,
    /// Executor stream index → physical (catalog) stream index.
    phys: Vec<usize>,
    active_from: WindowId,
    /// One past the last covered window; `None` while registered.
    active_to: Option<WindowId>,
    windows: AtomicU64,
    est_share_milli: AtomicU64,
    shed_share_milli: AtomicU64,
    gauges: QueryGauges,
}

impl RegisteredQuery {
    /// Active for window `w`: registered at or before it, not yet
    /// unregistered past it.
    fn covers(&self, w: WindowId) -> bool {
        self.active_from <= w && self.active_to.is_none_or(|to| w < to)
    }

    fn info(&self, streams: &[SharedStream]) -> QueryInfo {
        QueryInfo {
            id: self.id,
            sql: self.sql.clone(),
            tenant: self.tenant.clone(),
            delay: self.delay,
            weight: self.weight,
            streams: self.phys.iter().map(|&p| streams[p].name.clone()).collect(),
            active_from: self.active_from,
            active_to: self.active_to,
            windows_emitted: self.windows.load(Ordering::Relaxed),
            estimated_share: self.est_share_milli.load(Ordering::Relaxed) as f64 / 1000.0,
            shed_share: self.shed_share_milli.load(Ordering::Relaxed) as f64 / 1000.0,
        }
    }
}

fn fmt_spec(spec: WindowSpec) -> String {
    if spec.slide() == spec.width() {
        format!("{} tumbling", spec.width())
    } else {
        format!("{} sliding every {}", spec.width(), spec.slide())
    }
}

/// The registry. See the crate docs for the lifecycle and the
/// shared-triage invariant.
#[derive(Debug)]
pub struct QueryRegistry {
    cfg: RegistryConfig,
    /// The physical stream table, in catalog order. Fixed at startup:
    /// the server's workers are spawned against it.
    streams: Vec<SharedStream>,
    metrics: MetricsRegistry,
    /// All queries ever registered, in id order. Unregistered entries
    /// stay (deactivated) so final reports can cover them.
    queries: RwLock<Vec<RegisteredQuery>>,
    next_id: AtomicU64,
    /// The next window id the merger will emit. Registration becomes
    /// effective here; unregistration stops here.
    emit_cursor: AtomicU64,
}

impl QueryRegistry {
    /// An empty registry over `cfg.catalog`'s streams.
    pub fn new(cfg: RegistryConfig, metrics: MetricsRegistry) -> DtResult<Self> {
        if cfg.catalog.streams().is_empty() {
            return Err(DtError::config("registry needs a non-empty catalog"));
        }
        let streams = cfg
            .catalog
            .streams()
            .iter()
            .map(|(name, schema)| SharedStream {
                name: name.clone(),
                schema: schema.clone(),
            })
            .collect();
        Ok(QueryRegistry {
            cfg,
            streams,
            metrics,
            queries: RwLock::new(Vec::new()),
            next_id: AtomicU64::new(0),
            emit_cursor: AtomicU64::new(0),
        })
    }

    /// The physical stream table, in catalog order.
    pub fn streams(&self) -> &[SharedStream] {
        &self.streams
    }

    /// The server-wide window spec.
    pub fn spec(&self) -> WindowSpec {
        self.cfg.spec
    }

    /// The shedding mode queries run under.
    pub fn mode(&self) -> ShedMode {
        self.cfg.mode
    }

    /// The next window id to be emitted.
    pub fn emit_cursor(&self) -> WindowId {
        self.emit_cursor.load(Ordering::Relaxed)
    }

    /// Compile and attach one query; effective from the next emitted
    /// window. Errors are structured: parse errors carry line/column,
    /// planning errors name the offending stream or column, and
    /// window mismatches name the server's sealing cadence.
    pub fn register(&self, spec: QuerySpec) -> DtResult<QueryId> {
        if !(spec.weight > 0.0 && spec.weight.is_finite()) {
            return Err(DtError::config(format!(
                "query weight must be positive and finite, got {}",
                spec.weight
            )));
        }
        let stmt = parse_select(&spec.sql)?;
        let mut plan = Planner::new(&self.cfg.catalog).plan(&stmt)?;
        if self.cfg.override_windows {
            for s in &mut plan.streams {
                s.window = self.cfg.spec;
            }
        }
        let exec = QueryExecutor::new(vec![plan], self.cfg.mode)?.with_metrics(&self.metrics);
        if exec.spec() != self.cfg.spec {
            return Err(DtError::config(format!(
                "query window ({}) does not match the server window ({}); every query \
                 shares the server's sealing cadence",
                fmt_spec(exec.spec()),
                fmt_spec(self.cfg.spec),
            )));
        }
        let phys: Vec<usize> = exec
            .streams()
            .iter()
            .map(|s| {
                self.streams
                    .iter()
                    .position(|p| p.name == s.name)
                    .ok_or_else(|| {
                        DtError::config(format!("stream '{}' is not in the catalog", s.name))
                    })
            })
            .collect::<DtResult<_>>()?;
        let mut queries = self.queries.write().expect("registry lock poisoned");
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let active_from = self.emit_cursor.load(Ordering::Relaxed);
        queries.push(RegisteredQuery {
            id,
            sql: spec.sql,
            tenant: spec.tenant,
            delay: spec.delay,
            weight: spec.weight,
            exec,
            phys,
            active_from,
            active_to: None,
            windows: AtomicU64::new(0),
            est_share_milli: AtomicU64::new(0),
            shed_share_milli: AtomicU64::new(0),
            gauges: QueryGauges::register(&self.metrics, id),
        });
        Ok(id)
    }

    /// Detach query `id` at the current window boundary, returning
    /// the first window it no longer covers. The entry remains (with
    /// `active_to` set) for final reporting.
    pub fn unregister(&self, id: QueryId) -> DtResult<WindowId> {
        let mut queries = self.queries.write().expect("registry lock poisoned");
        let q = queries
            .iter_mut()
            .find(|q| q.id == id)
            .ok_or_else(|| DtError::config(format!("unknown query id {id}")))?;
        if q.active_to.is_some() {
            return Err(DtError::config(format!(
                "query {id} is already unregistered"
            )));
        }
        let boundary = self.emit_cursor.load(Ordering::Relaxed).max(q.active_from);
        q.active_to = Some(boundary);
        Ok(boundary)
    }

    /// Frozen views of every query ever registered, in id order.
    pub fn list(&self) -> Vec<QueryInfo> {
        self.queries
            .read()
            .expect("registry lock poisoned")
            .iter()
            .map(|q| q.info(&self.streams))
            .collect()
    }

    /// Number of currently registered (active) queries.
    pub fn num_active(&self) -> usize {
        self.queries
            .read()
            .expect("registry lock poisoned")
            .iter()
            .filter(|q| q.active_to.is_none())
            .count()
    }

    /// The tenant-lane configuration for physical stream `p`, for
    /// [`dt_triage::FairController::set_lanes`]: a catch-all lane for
    /// untagged traffic (carrying the tightest constraint among
    /// untenanted queries on the stream) followed by one lane per
    /// tenant with an active query reading the stream (tightest
    /// constraint, heaviest weight). Empty — meaning "fall back to
    /// the base controller" — when no active query on the stream has
    /// a tenant or a delay constraint.
    pub fn lanes_for_stream(&self, p: usize) -> Vec<LaneSpec> {
        let queries = self.queries.read().expect("registry lock poisoned");
        let mut lanes: Vec<LaneSpec> = vec![LaneSpec {
            name: "default".into(),
            weight: 1.0,
            constraint: None,
        }];
        let mut relevant = false;
        for q in queries
            .iter()
            .filter(|q| q.active_to.is_none() && q.phys.contains(&p))
        {
            match &q.tenant {
                None => {
                    if q.delay.is_some() {
                        relevant = true;
                        lanes[0].constraint = min_opt(lanes[0].constraint, q.delay);
                    }
                }
                Some(t) => {
                    relevant = true;
                    match lanes.iter_mut().find(|l| &l.name == t) {
                        Some(lane) => {
                            lane.constraint = min_opt(lane.constraint, q.delay);
                            lane.weight = lane.weight.max(q.weight);
                        }
                        None => lanes.push(LaneSpec {
                            name: t.clone(),
                            weight: q.weight,
                            constraint: q.delay,
                        }),
                    }
                }
            }
        }
        if relevant {
            lanes
        } else {
            Vec::new()
        }
    }

    /// The shard-routing key column for physical stream `p`: the
    /// stream-local column of the first active query that groups on
    /// exactly one column of this stream, or `None` (round-robin).
    ///
    /// Routing is a *locality heuristic*, not a correctness input
    /// (DESIGN.md §15): sharded seals re-sort rows by ingest sequence
    /// and every mergeable synopsis folds partition-independently, so
    /// the server fixes each stream's routing key at startup and
    /// later registrations simply inherit it.
    pub fn group_key_col(&self, p: usize) -> Option<usize> {
        let queries = self.queries.read().expect("registry lock poisoned");
        for q in queries.iter().filter(|q| q.active_to.is_none()) {
            let Some(plan) = q.exec.plan(0) else { continue };
            if plan.group_by.len() != 1 {
                continue;
            }
            let g = plan.group_by[0];
            for (k, b) in plan.streams.iter().enumerate() {
                if g >= b.offset && g < b.offset + b.schema.arity() {
                    if q.phys.get(k) == Some(&p) {
                        return Some(g - b.offset);
                    }
                    break;
                }
            }
        }
        None
    }

    /// Fan one sealed window out to every query active for it, by
    /// reference — each query's executor reads its slice of the
    /// server-wide per-stream state without cloning a row or a
    /// synopsis. Returns `(QueryId, QueryClose)` pairs in id order.
    ///
    /// Also advances the emit cursor to `window + 1` *before*
    /// enumerating, so a registration racing this call either misses
    /// `window` entirely or is included — never half-covered.
    pub fn close_window(
        &self,
        window: WindowId,
        inputs: WindowInputs<'_>,
    ) -> DtResult<Vec<(QueryId, QueryClose)>> {
        if inputs.rows.len() != self.streams.len() || inputs.counts.len() != self.streams.len() {
            return Err(DtError::config(format!(
                "close_window got {} row / {} count streams, registry has {}",
                inputs.rows.len(),
                inputs.counts.len(),
                self.streams.len()
            )));
        }
        self.emit_cursor.fetch_max(window + 1, Ordering::Relaxed);
        let queries = self.queries.read().expect("registry lock poisoned");
        let mut out = Vec::new();
        for q in queries.iter().filter(|q| q.covers(window)) {
            let rows: Vec<&[Row]> = q.phys.iter().map(|&p| inputs.rows[p].as_slice()).collect();
            let pair_refs: Option<Vec<&SynPair>> = inputs
                .pairs
                .map(|pairs| q.phys.iter().map(|&p| &pairs[p]).collect());
            let close = q.exec.close_ref(0, &rows, pair_refs.as_deref())?;
            q.windows.fetch_add(1, Ordering::Relaxed);
            q.gauges.windows.inc();
            let est = (close.estimated_share() * 1000.0).round() as u64;
            q.est_share_milli.store(est, Ordering::Relaxed);
            q.gauges.estimated_share.set(est as i64);
            let (kept, dropped) = q.phys.iter().fold((0u64, 0u64), |(k, d), &p| {
                (k + inputs.counts[p].0, d + inputs.counts[p].1)
            });
            let shed = if kept + dropped == 0 {
                0
            } else {
                (dropped as f64 / (kept + dropped) as f64 * 1000.0).round() as u64
            };
            q.shed_share_milli.store(shed, Ordering::Relaxed);
            q.gauges.shed_share.set(shed as i64);
            out.push((q.id, close));
        }
        Ok(out)
    }
}

fn min_opt(a: Option<DelayConstraint>, b: Option<DelayConstraint>) -> Option<DelayConstraint> {
    match (a, b) {
        (Some(a), Some(b)) => Some(a.min(b)),
        (x, None) => x,
        (None, y) => y,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dt_synopsis::SynopsisConfig;
    use dt_types::{DataType, Schema, VDuration};

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.add_stream("R", Schema::from_pairs(&[("a", DataType::Int)]));
        c.add_stream("S", Schema::from_pairs(&[("b", DataType::Int)]));
        c
    }

    fn registry() -> QueryRegistry {
        QueryRegistry::new(
            RegistryConfig {
                catalog: catalog(),
                mode: ShedMode::DataTriage,
                spec: WindowSpec::new(VDuration::from_secs(1)).unwrap(),
                override_windows: false,
            },
            MetricsRegistry::disabled(),
        )
        .unwrap()
    }

    #[test]
    fn physical_table_follows_catalog_order() {
        let r = registry();
        let names: Vec<&str> = r.streams().iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, vec!["R", "S"]);
    }

    #[test]
    fn register_list_unregister_lifecycle() {
        let r = registry();
        let a = r
            .register(QuerySpec::new("SELECT a, COUNT(*) FROM R GROUP BY a"))
            .unwrap();
        let b = r
            .register(QuerySpec::new("SELECT b, SUM(b) FROM S GROUP BY b").tenant("acme"))
            .unwrap();
        assert_eq!((a, b), (0, 1));
        assert_eq!(r.num_active(), 2);
        let infos = r.list();
        assert_eq!(infos.len(), 2);
        assert_eq!(infos[0].streams, vec!["R"]);
        assert_eq!(infos[1].tenant.as_deref(), Some("acme"));
        assert!(infos.iter().all(|i| i.active()));
        let boundary = r.unregister(a).unwrap();
        assert_eq!(boundary, 0, "nothing emitted yet");
        assert_eq!(r.num_active(), 1);
        assert!(!r.list()[0].active());
        // Double unregister and unknown ids are structured errors.
        assert!(r.unregister(a).is_err());
        assert!(r.unregister(99).is_err());
        // Ids keep counting up; the dead entry's id is not recycled.
        let c = r
            .register(QuerySpec::new("SELECT a, COUNT(*) FROM R GROUP BY a"))
            .unwrap();
        assert_eq!(c, 2);
    }

    #[test]
    fn rejects_window_mismatch_naming_the_server_cadence() {
        let r = registry();
        let err = r
            .register(QuerySpec::new(
                "SELECT a, COUNT(*) FROM R GROUP BY a WINDOW R['5 seconds']",
            ))
            .unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("does not match the server window"), "{msg}");
        assert!(msg.contains("1.000000s tumbling"), "{msg}");
    }

    #[test]
    fn override_rewrites_instead_of_rejecting() {
        let cfg = RegistryConfig {
            catalog: catalog(),
            mode: ShedMode::DataTriage,
            spec: WindowSpec::new(VDuration::from_secs(1)).unwrap(),
            override_windows: true,
        };
        let r = QueryRegistry::new(cfg, MetricsRegistry::disabled()).unwrap();
        r.register(QuerySpec::new(
            "SELECT a, COUNT(*) FROM R GROUP BY a WINDOW R['5 seconds']",
        ))
        .unwrap();
    }

    #[test]
    fn parse_errors_carry_line_and_column() {
        let r = registry();
        let err = r
            .register(QuerySpec::new("SELECT a,\n COUNT( FROM R GROUP BY a"))
            .unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("line 2"), "{msg}");
    }

    #[test]
    fn rejects_bad_weight_and_drop_only_passthrough() {
        let r = registry();
        assert!(r
            .register(QuerySpec::new("SELECT a, COUNT(*) FROM R GROUP BY a").weight(0.0))
            .is_err());
        assert!(r
            .register(QuerySpec::new("SELECT a, COUNT(*) FROM R GROUP BY a").weight(f64::NAN))
            .is_err());
    }

    type SealedInputs = (Vec<Vec<Row>>, Vec<SynPair>, Vec<(u64, u64)>);

    fn sealed_inputs(r: &QueryRegistry, per_stream: &[&[i64]], dropped: &[&[i64]]) -> SealedInputs {
        let cfg = SynopsisConfig::Sparse { cell_width: 1 };
        let mut rows = Vec::new();
        let mut pairs = Vec::new();
        let mut counts = Vec::new();
        for (i, s) in r.streams().iter().enumerate() {
            let mut pair = SynPair {
                kept: cfg.build(s.schema.arity()).unwrap(),
                dropped: cfg.build(s.schema.arity()).unwrap(),
            };
            let kept: Vec<Row> = per_stream[i]
                .iter()
                .map(|&v| Row::from_ints(&[v]))
                .collect();
            for row in &kept {
                pair.kept
                    .insert(&[row.values()[0].as_i64().unwrap()])
                    .unwrap();
            }
            for &v in dropped[i] {
                pair.dropped.insert(&[v]).unwrap();
            }
            pair.kept.seal();
            pair.dropped.seal();
            counts.push((kept.len() as u64, dropped[i].len() as u64));
            rows.push(kept);
            pairs.push(pair);
        }
        (rows, pairs, counts)
    }

    #[test]
    fn close_window_fans_out_and_respects_boundaries() {
        let r = registry();
        let q0 = r
            .register(QuerySpec::new("SELECT a, COUNT(*) FROM R GROUP BY a"))
            .unwrap();
        let (rows, pairs, counts) = sealed_inputs(&r, &[&[1, 1, 1], &[7]], &[&[1, 1], &[]]);
        let inputs = WindowInputs {
            rows: &rows,
            pairs: Some(&pairs),
            counts: &counts,
        };
        let out = r.close_window(0, inputs).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].0, q0);
        // 3 exact + 2 estimated = 5 for group a=1.
        match &out[0].1.payload {
            dt_triage::WindowPayload::Groups(g) => {
                assert!((g[&Row::from_ints(&[1])][0] - 5.0).abs() < 1e-9);
            }
            other => panic!("{other:?}"),
        }
        assert!((out[0].1.estimated_share() - 0.4).abs() < 1e-9);
        assert_eq!(r.emit_cursor(), 1);

        // A second query registered now first appears in window 1 and
        // reads the same shared state.
        let q1 = r
            .register(QuerySpec::new("SELECT a, SUM(a) FROM R GROUP BY a"))
            .unwrap();
        let out = r.close_window(1, inputs).unwrap();
        let ids: Vec<QueryId> = out.iter().map(|(id, _)| *id).collect();
        assert_eq!(ids, vec![q0, q1]);

        // Unregistering q0 stops it at the boundary: window 2 emits
        // only q1.
        let boundary = r.unregister(q0).unwrap();
        assert_eq!(boundary, 2);
        let out = r.close_window(2, inputs).unwrap();
        let ids: Vec<QueryId> = out.iter().map(|(id, _)| *id).collect();
        assert_eq!(ids, vec![q1]);
        // Gauge snapshots: q0 saw 2 windows, q1 saw 2 so far.
        let infos = r.list();
        assert_eq!(infos[0].windows_emitted, 2);
        assert_eq!(infos[1].windows_emitted, 2);
        assert!((infos[1].shed_share - 0.4).abs() < 0.001, "2 of 5 shed");
    }

    #[test]
    fn close_window_validates_stream_counts() {
        let r = registry();
        r.register(QuerySpec::new("SELECT a, COUNT(*) FROM R GROUP BY a"))
            .unwrap();
        let err = r
            .close_window(
                0,
                WindowInputs {
                    rows: &[],
                    pairs: None,
                    counts: &[],
                },
            )
            .unwrap_err();
        assert!(err.to_string().contains("close_window"));
    }

    #[test]
    fn lanes_derive_from_active_tenants() {
        let r = registry();
        // No queries: no lanes anywhere.
        assert!(r.lanes_for_stream(0).is_empty());
        // An untenanted query without a delay still means no lanes.
        r.register(QuerySpec::new("SELECT a, COUNT(*) FROM R GROUP BY a"))
            .unwrap();
        assert!(r.lanes_for_stream(0).is_empty());
        // Tenants on R only.
        let d20 = DelayConstraint::from_millis(20).unwrap();
        let d50 = DelayConstraint::from_millis(50).unwrap();
        let qa = r
            .register(
                QuerySpec::new("SELECT a, COUNT(*) FROM R GROUP BY a")
                    .tenant("acme")
                    .delay(d50)
                    .weight(2.0),
            )
            .unwrap();
        r.register(
            QuerySpec::new("SELECT a, SUM(a) FROM R GROUP BY a")
                .tenant("acme")
                .delay(d20),
        )
        .unwrap();
        r.register(QuerySpec::new("SELECT a, COUNT(*) FROM R GROUP BY a").tenant("borg"))
            .unwrap();
        let lanes = r.lanes_for_stream(0);
        assert_eq!(lanes.len(), 3, "catch-all + acme + borg");
        assert_eq!(lanes[0].name, "default");
        let acme = lanes.iter().find(|l| l.name == "acme").unwrap();
        assert_eq!(acme.constraint, Some(d20), "tightest constraint wins");
        assert_eq!(acme.weight, 2.0, "heaviest weight wins");
        assert_eq!(
            lanes.iter().find(|l| l.name == "borg").unwrap().constraint,
            None
        );
        // S has no tenanted queries.
        assert!(r.lanes_for_stream(1).is_empty());
        // Unregistering one acme query relaxes the constraint.
        r.unregister(qa).unwrap();
        let lanes = r.lanes_for_stream(0);
        let acme = lanes.iter().find(|l| l.name == "acme").unwrap();
        assert_eq!(acme.constraint, Some(d20));
        assert_eq!(acme.weight, 1.0, "the heavy registration is gone");
    }
}
