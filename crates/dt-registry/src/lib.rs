//! Runtime query registry: many continuous queries over shared
//! per-stream triage.
//!
//! TelegraphCQ is a *multi-query* system — clients walk up to a
//! running server, register a continuous query, read results for a
//! while, and walk away, all without restarting the dataflow. This
//! crate supplies that lifecycle for the Data Triage runtime:
//!
//! * [`QueryRegistry::register`] compiles a TCQ-dialect statement
//!   (through `dt-query` planning and `dt-rewrite` shadow rewriting)
//!   into a main + shadow plan and attaches it to the physical
//!   streams it reads, effective from the next emitted window.
//! * [`QueryRegistry::unregister`] detaches a query at a window
//!   boundary: the window being emitted when the call lands is the
//!   last one the query reports, so a consumer never sees a torn,
//!   partially-covered window.
//! * [`QueryRegistry::close_window`] fans one sealed window — the
//!   per-stream kept rows and kept/dropped synopses the server's
//!   workers produced — out to every query active for that window,
//!   by reference.
//!
//! # The shared-triage invariant
//!
//! All queries over a stream share that stream's triage: its bounded
//! queue, its kept/dropped synopses, and its adaptive controller.
//! Admitting a tuple and folding it into synopses is paid **once per
//! stream**, never once per query — registering the tenth query over
//! a busy stream adds only its (window-close) execution cost, not
//! another pass over the firehose. The witness is the per-stream
//! `dt_triage_synopsis_inserts_total` counter, which is independent
//! of the number of attached queries.
//!
//! # Tenants and weighted-fair shedding
//!
//! A registration may carry a tenant name, a fair-share weight, and a
//! per-tenant delay constraint. [`QueryRegistry::lanes_for_stream`]
//! derives, for each physical stream, the tenant-lane configuration a
//! [`dt_triage::FairController`] needs: one catch-all lane for
//! untagged traffic plus one lane per tenant with an active query on
//! that stream. The stream's effective delay constraint is the
//! minimum over all its lanes', and shedding is apportioned by
//! weighted-fair water-filling, so one tenant's burst cannot starve
//! another tenant's accuracy.

mod registry;
mod spec;

pub use registry::{QueryRegistry, RegistryConfig, WindowInputs};
pub use spec::{QueryId, QueryInfo, QuerySpec};
