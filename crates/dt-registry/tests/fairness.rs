//! The weighted-fair acceptance test (ISSUE 6): two tenants with
//! delay constraints share one stream; bursting tenant A's input 4×
//! must not degrade tenant B's accuracy or delay.
//!
//! The run is a deterministic discrete simulation of the server's
//! admission path: arrivals ask the stream's [`FairController`] for a
//! verdict, kept tuples enter a simulated bounded queue drained at a
//! fixed service rate, and every window closes through the real
//! [`QueryRegistry`] fan-out — kept rows exactly, shed rows through
//! the shared dropped synopsis — so tenant B's RMS error is measured
//! on genuine merged (exact + estimate) results.

use std::sync::Arc;

use dt_obs::MetricsRegistry;
use dt_query::Catalog;
use dt_registry::{QueryRegistry, QuerySpec, RegistryConfig, WindowInputs};
use dt_synopsis::SynopsisConfig;
use dt_triage::{
    DelayConstraint, FairController, QueryClose, SharedController, ShedDecision, ShedMode, SynPair,
    WindowPayload,
};
use dt_types::{DataType, Row, Schema, VDuration, WindowSpec};

/// Tuples tenant B offers per round, every round, in both runs.
const B_RATE: usize = 4;
/// Tenant A's quiet rate; the burst multiplies this by 4.
const A_RATE: usize = 4;
/// Tuples the simulated worker drains per round.
const SERVICE: usize = 8;
/// Rounds per window and windows per run.
const ROUNDS: usize = 25;
const WINDOWS: usize = 6;
/// Measured per-tuple main-path cost: 1 ms, so a queue depth of N
/// means an estimated delay of N ms against the 200 ms constraint.
/// The wide band matters: the controller's ramp spans ~50 tuples of
/// depth, so epoch-to-epoch depth wobble stays inside the ramp
/// instead of slamming into the shed-everything override.
const MAIN_US: f64 = 1_000.0;
const DELAY_MS: u64 = 200;

/// Non-uniform value patterns (A in 0..5, B in 10..15), so the
/// cell-width-5 synopsis' uniform smear is measurably wrong for shed
/// tuples — shedding a tenant's tuples *does* cost that tenant
/// accuracy.
const A_VALS: [i64; 8] = [0, 0, 0, 1, 1, 2, 3, 4];
const B_VALS: [i64; 8] = [10, 10, 10, 11, 11, 12, 13, 14];

struct Outcome {
    /// Tenant B's RMS count error per window (warmup window excluded).
    b_rms: f64,
    /// B tuples admitted while the estimated queueing delay exceeded
    /// the 20 ms constraint.
    b_deadline_misses: u64,
    /// Shed totals per tenant over the measured windows.
    a_shed: u64,
    b_shed: u64,
    a_offered: u64,
}

fn registry() -> QueryRegistry {
    let mut catalog = Catalog::new();
    catalog.add_stream("R", Schema::from_pairs(&[("a", DataType::Int)]));
    QueryRegistry::new(
        RegistryConfig {
            catalog,
            mode: ShedMode::DataTriage,
            spec: WindowSpec::new(VDuration::from_secs(1)).unwrap(),
            override_windows: false,
        },
        MetricsRegistry::disabled(),
    )
    .unwrap()
}

fn b_groups(close: &QueryClose) -> [f64; 5] {
    let mut out = [0.0; 5];
    if let WindowPayload::Groups(g) = &close.payload {
        for (row, aggs) in g {
            let v = row.values()[0].as_i64().unwrap();
            if (10..15).contains(&v) {
                out[(v - 10) as usize] = aggs[0];
            }
        }
    }
    out
}

/// One full run. `a_rate` is tenant A's per-round arrival count;
/// `fair` selects the weighted-fair lane controller versus a
/// tenant-blind flat controller at the same constraint.
fn run(a_rate: usize, fair_lanes: bool) -> Outcome {
    let reg = registry();
    let d = DelayConstraint::from_millis(DELAY_MS).unwrap();
    reg.register(
        QuerySpec::new("SELECT a, COUNT(*) FROM R GROUP BY a")
            .tenant("alpha")
            .delay(d),
    )
    .unwrap();
    let qb = reg
        .register(
            QuerySpec::new("SELECT a, COUNT(*) FROM R GROUP BY a")
                .tenant("beta")
                .delay(d)
                .weight(2.0),
        )
        .unwrap();

    let base = Arc::new(SharedController::seeded(d, MAIN_US, 0.0));
    let ctl = FairController::new(Arc::clone(&base), Some(d));
    if fair_lanes {
        ctl.set_lanes(&reg.lanes_for_stream(0)).unwrap();
    }

    let syn = SynopsisConfig::Sparse { cell_width: 5 };
    let mut depth: usize = 0;
    let mut credit: f64 = 0.0;
    let mut out = Outcome {
        b_rms: 0.0,
        b_deadline_misses: 0,
        a_shed: 0,
        b_shed: 0,
        a_offered: 0,
    };
    let mut measured = 0usize;

    for w in 0..WINDOWS as u64 {
        let mut kept_rows: Vec<Row> = Vec::new();
        let mut pair = SynPair {
            kept: syn.build(1).unwrap(),
            dropped: syn.build(1).unwrap(),
        };
        let mut truth = [0u64; 5]; // B's groups 10..14
        let (mut a_shed, mut b_shed, mut kept, mut dropped) = (0u64, 0u64, 0u64, 0u64);
        let warm = w == 0;
        for r in 0..ROUNDS {
            // Interleave: B's tuples spread evenly through A's
            // (rates are chosen so `total` divides evenly by B_RATE).
            let total = a_rate + B_RATE;
            let stride = total / B_RATE;
            let mut sent_a = 0usize;
            let mut sent_b = 0usize;
            for i in 0..total {
                let is_b = i % stride == 0 && sent_b < B_RATE;
                let (tenant, v) = if is_b {
                    sent_b += 1;
                    ("beta", B_VALS[(r * B_RATE + sent_b - 1) % 8])
                } else {
                    sent_a += 1;
                    if !warm {
                        out.a_offered += 1;
                    }
                    ("alpha", A_VALS[(r * a_rate + sent_a - 1) % 8])
                };
                if is_b {
                    truth[(v - 10) as usize] += 1;
                }
                match ctl.decide(Some(tenant)) {
                    ShedDecision::Keep => {
                        base.on_enqueue();
                        depth += 1;
                        kept += 1;
                        kept_rows.push(Row::from_ints(&[v]));
                        pair.kept.insert(&[v]).unwrap();
                        if is_b && depth as u64 * 1_000 > DELAY_MS * 1_000 {
                            out.b_deadline_misses += 1;
                        }
                    }
                    ShedDecision::Shed => {
                        dropped += 1;
                        pair.dropped.insert(&[v]).unwrap();
                        if is_b {
                            b_shed += 1;
                        } else {
                            a_shed += 1;
                        }
                    }
                }
                // Smooth service: the worker drains SERVICE tuples per
                // round, interleaved with arrivals.
                credit += SERVICE as f64 / total as f64;
                while credit >= 1.0 && depth > 0 {
                    credit -= 1.0;
                    depth -= 1;
                    base.on_dequeue(1);
                }
            }
        }
        pair.kept.seal();
        pair.dropped.seal();
        let rows = vec![kept_rows];
        let pairs = vec![pair];
        let counts = vec![(kept, dropped)];
        let closes = reg
            .close_window(
                w,
                WindowInputs {
                    rows: &rows,
                    pairs: Some(&pairs),
                    counts: &counts,
                },
            )
            .unwrap();
        if warm {
            continue; // ramp-up transient: not measured
        }
        let close_b = &closes.iter().find(|(id, _)| *id == qb).unwrap().1;
        let est = b_groups(close_b);
        let se: f64 = (0..5).map(|i| (est[i] - truth[i] as f64).powi(2)).sum();
        out.b_rms += (se / 5.0).sqrt();
        measured += 1;
        out.a_shed += a_shed;
        out.b_shed += b_shed;
    }
    out.b_rms /= measured as f64;
    out
}

#[test]
fn burst_by_one_tenant_does_not_starve_the_other() {
    // Baseline: both tenants at their quiet rates, arrivals == service.
    let base = run(A_RATE, true);
    assert_eq!(base.b_deadline_misses, 0, "no misses in the quiet run");

    // Tenant A bursts 4×. Weighted-fair water-filling makes A absorb
    // the shedding its own burst causes.
    let burst = run(A_RATE * 4, true);
    assert!(
        burst.a_shed * 2 > burst.a_offered,
        "the burst must overload the stream: A shed {} of {}",
        burst.a_shed,
        burst.a_offered
    );
    assert_eq!(
        burst.b_deadline_misses, 0,
        "B's admitted tuples stay inside the delay constraint"
    );
    // The acceptance bound: B's RMS error grows at most 10% over the
    // no-burst run (epsilon absorbs a zero baseline).
    assert!(
        burst.b_rms <= base.b_rms * 1.10 + 1e-9,
        "B's RMS error {} must stay within 10% of the baseline {}",
        burst.b_rms,
        base.b_rms
    );

    // Contrast: a tenant-blind controller at the same constraint sheds
    // B's tuples along with A's, and B's accuracy pays for A's burst —
    // the insulation above is the lanes' doing, not slack in the test.
    let flat = run(A_RATE * 4, false);
    assert!(
        flat.b_shed > 0,
        "flat controller sheds the quiet tenant too (shed {})",
        flat.b_shed
    );
    assert!(
        flat.b_rms > burst.b_rms + 1e-9,
        "tenant-blind RMS {} must exceed weighted-fair RMS {}",
        flat.b_rms,
        burst.b_rms
    );
}
