//! Histogram edge cases and concurrency hammering (no lost updates).

use dt_obs::MetricsRegistry;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;

#[test]
fn zero_sample_histogram_reports_zeros() {
    let reg = MetricsRegistry::new();
    let h = reg.histogram("empty_us", "no samples", &[]);
    assert_eq!(h.count(), 0);
    assert_eq!(h.sum(), 0);
    assert_eq!(h.max(), 0);
    for q in [0.0, 0.5, 0.99, 1.0] {
        assert_eq!(h.quantile(q), 0, "q={q}");
    }
    let snap = h.snapshot();
    assert_eq!(snap.mean(), 0.0);
    assert_eq!((snap.p50, snap.p90, snap.p99), (0, 0, 0));
    // The exposition still renders a well-formed (all-zero) series.
    let text = reg.render_prometheus();
    assert!(text.contains("empty_us_bucket{le=\"+Inf\"} 0"), "{text}");
    assert!(text.contains("empty_us_count 0"), "{text}");
}

#[test]
fn single_sample_is_exact_at_every_quantile() {
    let reg = MetricsRegistry::new();
    let h = reg.histogram("one_us", "one sample", &[]);
    h.observe(12_345);
    // The quantile estimate is the bucket upper bound clamped to the
    // observed max, so one sample is reported exactly everywhere.
    for q in [0.0, 0.01, 0.5, 0.9, 0.999, 1.0] {
        assert_eq!(h.quantile(q), 12_345, "q={q}");
    }
    assert_eq!(h.max(), 12_345);
    assert_eq!(h.sum(), 12_345);
}

#[test]
fn values_beyond_the_top_bucket_still_count() {
    let reg = MetricsRegistry::new();
    let h = reg.histogram("huge_us", "overflow", &[]);
    let huge = 1u64 << 50; // far past the 2^40 overflow boundary
    h.observe(huge);
    h.observe(u64::MAX);
    h.observe(5);
    assert_eq!(h.count(), 3);
    assert_eq!(h.max(), u64::MAX);
    // Overflow samples are clamped to the observed max, never lost.
    assert_eq!(h.quantile(1.0), u64::MAX);
    assert_eq!(h.quantile(0.0), 5);
    // The finite `le` series only covers values below the overflow
    // boundary (2^40); the two overflow samples appear in `+Inf`.
    let cum = h.cumulative_pow2();
    assert_eq!(cum.last().unwrap().1, 1, "{cum:?}");
    let text = reg.render_prometheus();
    assert!(text.contains("huge_us_bucket{le=\"+Inf\"} 3"), "{text}");
}

#[test]
fn quantiles_are_monotone_in_q() {
    let reg = MetricsRegistry::new();
    let h = reg.histogram("mono_us", "monotone", &[]);
    // A spread covering linear buckets, several octaves, and overflow.
    let mut v = 1u64;
    for i in 0..2_000u64 {
        h.observe(v % 5_000_000);
        v = v.wrapping_mul(6364136223846793005).wrapping_add(i);
    }
    h.observe(1 << 45);
    let mut prev = 0u64;
    for i in 0..=100 {
        let q = h.quantile(i as f64 / 100.0);
        assert!(q >= prev, "q={} gave {q} after {prev}", i as f64 / 100.0);
        prev = q;
    }
    assert_eq!(h.quantile(1.0), h.max());
}

#[test]
fn hammered_counters_and_histograms_lose_no_updates() {
    const THREADS: usize = 8;
    const PER_THREAD: u64 = 50_000;

    let reg = MetricsRegistry::new();
    let counter = reg.counter("hammer_total", "hammered", &[]);
    let gauge = reg.gauge("hammer_level", "hammered", &[]);
    let hist = reg.histogram("hammer_us", "hammered", &[]);
    let expected_sum = Arc::new(AtomicU64::new(0));

    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let counter = counter.clone();
            let gauge = gauge.clone();
            let hist = hist.clone();
            let expected_sum = Arc::clone(&expected_sum);
            thread::spawn(move || {
                let mut local_sum = 0u64;
                for i in 0..PER_THREAD {
                    counter.inc();
                    gauge.add(1);
                    gauge.sub(1);
                    let v = (t as u64) * 1_000 + (i % 997);
                    hist.observe(v);
                    local_sum += v;
                }
                expected_sum.fetch_add(local_sum, Ordering::Relaxed);
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    let total = THREADS as u64 * PER_THREAD;
    assert_eq!(counter.get(), total, "counter lost updates");
    assert_eq!(gauge.get(), 0, "gauge add/sub should cancel");
    assert_eq!(hist.count(), total, "histogram lost samples");
    assert_eq!(
        hist.sum(),
        expected_sum.load(Ordering::Relaxed),
        "histogram sum drifted"
    );
    // Bucket totals must also agree with the count.
    assert_eq!(h_total(&hist), total, "bucket counts lost updates");
}

fn h_total(h: &dt_obs::Histogram) -> u64 {
    h.cumulative_pow2().last().map(|&(_, c)| c).unwrap_or(0)
}

#[test]
fn hammered_registration_returns_shared_cells() {
    // Concurrent registration of the same metric must converge on one
    // cell and never deadlock or duplicate.
    const THREADS: usize = 8;
    let reg = MetricsRegistry::new();
    let handles: Vec<_> = (0..THREADS)
        .map(|_| {
            let reg = reg.clone();
            thread::spawn(move || {
                for _ in 0..1_000 {
                    reg.counter("shared_total", "shared", &[("k", "v")]).inc();
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let snap = reg.snapshot();
    assert_eq!(snap.metrics.len(), 1, "duplicate registration");
    let c = reg.counter("shared_total", "shared", &[("k", "v")]);
    assert_eq!(c.get(), THREADS as u64 * 1_000);
}

#[test]
fn hammered_span_ring_never_corrupts() {
    const THREADS: usize = 4;
    let reg = MetricsRegistry::new();
    let ids: Vec<_> = (0..THREADS)
        .map(|t| reg.span_id(&format!("stage{t}")))
        .collect();
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let reg = reg.clone();
            let id = ids[t];
            thread::spawn(move || {
                for _ in 0..10_000 {
                    reg.span(id).finish();
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    // Every surviving record resolves to a registered name; torn slots
    // with unknown ids are filtered, not fabricated.
    for s in reg.recent_spans() {
        assert!(s.name.starts_with("stage"), "{s:?}");
    }
}
