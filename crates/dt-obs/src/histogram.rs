//! Log-linear latency histograms.
//!
//! The classic HDR layout: values 0..16 get one bucket each, and every
//! power of two above that is split into 16 linear sub-buckets, so the
//! bucket width is always ≤ 1/16 of the value — bounded relative error
//! without per-sample branching beyond a couple of bit operations.
//! Values at or above 2⁴⁰ (≈ 12.7 days in microseconds) land in one
//! overflow bucket; the exact max is tracked separately so even
//! overflow samples report their true extreme.
//!
//! Recording is one relaxed `fetch_add` on the bucket plus count/sum
//! updates and a `fetch_max` — no locks, no allocation, safe to call
//! from any thread.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Linear sub-buckets per power of two.
const SUB: usize = 16;
const SUB_BITS: u32 = 4;
/// Values with more significant bits than this overflow.
const MAX_MSB: u32 = 39;
/// Bucket count: octaves 0 (values 0..16) through `MAX_MSB - 3`, plus
/// one overflow bucket.
const BUCKETS: usize = (MAX_MSB as usize - 3 + 1) * SUB + 1;

/// The shared storage behind cloned [`Histogram`] handles.
#[derive(Debug)]
pub(crate) struct HistogramCore {
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

/// Bucket index for a value (always in range).
fn bucket_of(v: u64) -> usize {
    if v < SUB as u64 {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros();
    if msb > MAX_MSB {
        return BUCKETS - 1;
    }
    let octave = (msb - (SUB_BITS - 1)) as usize;
    let sub = ((v >> (msb - SUB_BITS)) & (SUB as u64 - 1)) as usize;
    octave * SUB + sub
}

/// Largest value that maps into `bucket` (inclusive upper bound); the
/// overflow bucket reports `u64::MAX`.
fn bucket_upper(bucket: usize) -> u64 {
    if bucket < SUB {
        return bucket as u64;
    }
    if bucket >= BUCKETS - 1 {
        return u64::MAX;
    }
    let octave = (bucket / SUB) as u32;
    let sub = (bucket % SUB) as u64;
    let base = 1u64 << (octave + SUB_BITS - 1);
    let width = base / SUB as u64;
    base + (sub + 1) * width - 1
}

impl HistogramCore {
    fn new() -> Self {
        HistogramCore {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    fn observe(&self, v: u64) {
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }
}

/// A cloneable histogram handle; a disabled handle records nothing.
#[derive(Debug, Clone, Default)]
pub struct Histogram {
    pub(crate) core: Option<Arc<HistogramCore>>,
}

impl Histogram {
    pub(crate) fn live() -> Self {
        Histogram {
            core: Some(Arc::new(HistogramCore::new())),
        }
    }

    /// A handle that records nothing (what a disabled registry hands
    /// out).
    pub fn disabled() -> Self {
        Histogram { core: None }
    }

    /// True when samples are actually recorded.
    pub fn is_enabled(&self) -> bool {
        self.core.is_some()
    }

    /// Record one value.
    #[inline]
    pub fn observe(&self, v: u64) {
        if let Some(core) = &self.core {
            core.observe(v);
        }
    }

    /// Start a timer whose drop records elapsed **microseconds** into
    /// this histogram. Disabled handles never read the clock.
    #[inline]
    pub fn start_timer(&self) -> HistTimer<'_> {
        HistTimer {
            hist: self,
            start: self.core.as_ref().map(|_| Instant::now()),
        }
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.core
            .as_ref()
            .map_or(0, |c| c.count.load(Ordering::Relaxed))
    }

    /// Sum of recorded values (wrapping on overflow).
    pub fn sum(&self) -> u64 {
        self.core
            .as_ref()
            .map_or(0, |c| c.sum.load(Ordering::Relaxed))
    }

    /// Largest recorded value (0 with no samples).
    pub fn max(&self) -> u64 {
        self.core
            .as_ref()
            .map_or(0, |c| c.max.load(Ordering::Relaxed))
    }

    /// The estimated `q`-quantile (`0.0 ..= 1.0`) of recorded values:
    /// the inclusive upper bound of the bucket containing the target
    /// rank, clamped to the observed max so estimates never exceed a
    /// real sample. Zero samples → 0. Monotone in `q`.
    pub fn quantile(&self, q: f64) -> u64 {
        let Some(core) = &self.core else { return 0 };
        let count = core.count.load(Ordering::Relaxed);
        if count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the target sample, 1-based; q=0 means the first.
        let rank = ((q * count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, b) in core.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                return bucket_upper(i).min(core.max.load(Ordering::Relaxed));
            }
        }
        core.max.load(Ordering::Relaxed)
    }

    /// Point-in-time digest of this histogram.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count(),
            sum: self.sum(),
            max: self.max(),
            p50: self.quantile(0.50),
            p90: self.quantile(0.90),
            p99: self.quantile(0.99),
        }
    }

    /// Cumulative sample counts at power-of-two boundaries, for the
    /// Prometheus `_bucket{le=…}` series: pairs of `(le, cumulative)`
    /// covering the observed range (at least `le=1`), ending just past
    /// the max. The `+Inf` bucket is the total count.
    pub fn cumulative_pow2(&self) -> Vec<(u64, u64)> {
        let Some(core) = &self.core else {
            return vec![(1, 0)];
        };
        let max = core.max.load(Ordering::Relaxed);
        let top_msb = if max < 2 {
            1
        } else {
            (64 - max.leading_zeros()).min(MAX_MSB + 1)
        };
        let mut out = Vec::with_capacity(top_msb as usize);
        let mut cum = 0u64;
        let mut bucket = 0usize;
        // Values < 2^m occupy buckets below the octave starting at 2^m.
        for m in 0..=top_msb {
            let le = (1u64 << m) - 1;
            let limit = if m <= SUB_BITS {
                // Within the linear region a boundary is its own index.
                (1usize << m).min(SUB)
            } else {
                ((m as usize - SUB_BITS as usize) + 1) * SUB
            };
            while bucket < limit.min(BUCKETS) {
                cum += core.buckets[bucket].load(Ordering::Relaxed);
                bucket += 1;
            }
            out.push((le, cum));
        }
        out
    }
}

/// Drop guard from [`Histogram::start_timer`].
pub struct HistTimer<'a> {
    hist: &'a Histogram,
    start: Option<Instant>,
}

impl HistTimer<'_> {
    /// Stop early and record; equivalent to dropping the guard.
    pub fn stop(self) {}
}

impl Drop for HistTimer<'_> {
    fn drop(&mut self) {
        if let Some(start) = self.start.take() {
            self.hist.observe(start.elapsed().as_micros() as u64);
        }
    }
}

/// A frozen histogram digest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HistogramSnapshot {
    /// Samples recorded.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: u64,
    /// Largest recorded value.
    pub max: u64,
    /// Median estimate.
    pub p50: u64,
    /// 90th percentile estimate.
    pub p90: u64,
    /// 99th percentile estimate.
    pub p99: u64,
}

impl HistogramSnapshot {
    /// Mean of recorded values (0 with no samples).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_layout_is_consistent() {
        // Every value maps to a bucket whose bounds contain it, and
        // bucket uppers are strictly increasing.
        let probes = [
            0u64,
            1,
            15,
            16,
            17,
            31,
            32,
            100,
            1_000,
            65_535,
            65_536,
            1 << 20,
            (1 << 30) + 12345,
            (1 << 40) - 1,
        ];
        for &v in &probes {
            let b = bucket_of(v);
            assert!(v <= bucket_upper(b), "v={v} b={b}");
            if b > 0 {
                assert!(v > bucket_upper(b - 1), "v={v} b={b}");
            }
        }
        for b in 1..BUCKETS {
            assert!(bucket_upper(b) > bucket_upper(b - 1), "b={b}");
        }
    }

    #[test]
    fn relative_error_is_bounded() {
        for v in [17u64, 100, 999, 12_345, 7_000_000] {
            let h = Histogram::live();
            h.observe(v);
            let q = h.quantile(1.0);
            assert!(q >= v);
            assert!((q - v) as f64 <= v as f64 / SUB as f64 + 1.0, "v={v} q={q}");
        }
    }

    #[test]
    fn disabled_histogram_is_inert() {
        let h = Histogram::disabled();
        h.observe(42);
        let t = h.start_timer();
        drop(t);
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), 0);
        assert!(!h.is_enabled());
    }

    #[test]
    fn cumulative_pow2_matches_total() {
        let h = Histogram::live();
        for v in [0u64, 1, 3, 17, 900, 70_000] {
            h.observe(v);
        }
        let cum = h.cumulative_pow2();
        assert_eq!(cum.last().unwrap().1, 6, "{cum:?}");
        // Cumulative counts are monotone.
        for w in cum.windows(2) {
            assert!(w[0].1 <= w[1].1);
            assert!(w[0].0 < w[1].0);
        }
        // le=15 covers 0,1,3 → 3 samples.
        let at15 = cum.iter().find(|(le, _)| *le == 15).unwrap().1;
        assert_eq!(at15, 3);
    }
}
