//! A bounded ring buffer of coarse stage timings.
//!
//! Spans are for the *stages* of the runtime (seal, merge,
//! window-exec, drain), not per-tuple events: a few hundred per second
//! at most. Recording is an atomic cursor bump plus two relaxed
//! stores into the claimed slot; the ring never grows and never
//! blocks. A reader that races a writer on the same slot can observe
//! a torn (id, duration) / start pairing — acceptable for a debugging
//! trace, and the snapshot path filters ids that were never
//! registered.
//!
//! Span names are interned once (under a mutex — registration is
//! cold) into a [`SpanId`]; the hot path carries only the integer.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Packed slot layout: `id` in the top 16 bits, duration (µs, capped)
/// in the low 48.
const DUR_BITS: u64 = 48;
const DUR_MASK: u64 = (1 << DUR_BITS) - 1;
/// Slot 0 of a fresh ring holds id `EMPTY`, which is never handed out.
const EMPTY: u64 = (1 << 16) - 1;

/// An interned span name.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanId(pub(crate) u16);

/// One recorded span, resolved to its name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Interned stage name.
    pub name: String,
    /// Start offset from the registry's epoch, microseconds.
    pub start_us: u64,
    /// Duration, microseconds.
    pub dur_us: u64,
}

#[derive(Debug)]
struct Slot {
    id_dur: AtomicU64,
    start: AtomicU64,
}

/// The ring itself; lives inside the registry.
#[derive(Debug)]
pub(crate) struct SpanRing {
    slots: Box<[Slot]>,
    cursor: AtomicU64,
    names: Mutex<Vec<String>>,
    epoch: Instant,
}

impl SpanRing {
    pub(crate) fn new(capacity: usize, epoch: Instant) -> Self {
        SpanRing {
            slots: (0..capacity.max(1))
                .map(|_| Slot {
                    id_dur: AtomicU64::new(EMPTY << DUR_BITS),
                    start: AtomicU64::new(0),
                })
                .collect(),
            cursor: AtomicU64::new(0),
            names: Mutex::new(Vec::new()),
            epoch,
        }
    }

    /// Intern a stage name (idempotent).
    pub(crate) fn intern(&self, name: &str) -> SpanId {
        let mut names = self.names.lock().expect("span names");
        if let Some(i) = names.iter().position(|n| n == name) {
            return SpanId(i as u16);
        }
        // Cap the id space one below EMPTY; an overflowing intern
        // aliases the last name rather than corrupting the ring.
        if names.len() as u64 >= EMPTY - 1 {
            return SpanId((EMPTY - 2) as u16);
        }
        names.push(name.to_string());
        SpanId((names.len() - 1) as u16)
    }

    /// Record a finished span.
    pub(crate) fn record(&self, id: SpanId, start_us: u64, dur_us: u64) {
        let i = self.cursor.fetch_add(1, Ordering::Relaxed) as usize % self.slots.len();
        let slot = &self.slots[i];
        slot.start.store(start_us, Ordering::Relaxed);
        slot.id_dur.store(
            ((id.0 as u64) << DUR_BITS) | dur_us.min(DUR_MASK),
            Ordering::Relaxed,
        );
    }

    /// Microseconds since the ring's epoch.
    pub(crate) fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    /// The most recent spans, oldest first (up to the ring capacity).
    pub(crate) fn recent(&self) -> Vec<SpanRecord> {
        let names = self.names.lock().expect("span names").clone();
        let cursor = self.cursor.load(Ordering::Relaxed);
        let len = self.slots.len() as u64;
        let filled = cursor.min(len);
        let mut out = Vec::with_capacity(filled as usize);
        for k in 0..filled {
            let i = ((cursor - filled + k) % len) as usize;
            let packed = self.slots[i].id_dur.load(Ordering::Relaxed);
            let id = (packed >> DUR_BITS) as usize;
            if let Some(name) = names.get(id) {
                out.push(SpanRecord {
                    name: name.clone(),
                    start_us: self.slots[i].start.load(Ordering::Relaxed),
                    dur_us: packed & DUR_MASK,
                });
            }
        }
        out
    }
}

/// Drop guard that records a span into its registry's ring.
pub struct SpanGuard<'a> {
    pub(crate) ring: Option<&'a SpanRing>,
    pub(crate) id: SpanId,
    pub(crate) start: Option<Instant>,
    pub(crate) start_us: u64,
}

impl SpanGuard<'_> {
    /// Finish the span now; equivalent to dropping the guard.
    pub fn finish(self) {}
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        if let (Some(ring), Some(start)) = (self.ring, self.start.take()) {
            ring.record(self.id, self.start_us, start.elapsed().as_micros() as u64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_keeps_the_last_capacity_spans() {
        let ring = SpanRing::new(4, Instant::now());
        let seal = ring.intern("seal");
        let merge = ring.intern("merge");
        assert_eq!(ring.intern("seal"), seal, "interning is idempotent");
        for i in 0..10u64 {
            let id = if i % 2 == 0 { seal } else { merge };
            ring.record(id, i * 100, 10 + i);
        }
        let recent = ring.recent();
        assert_eq!(recent.len(), 4);
        // Oldest first: spans 6..10.
        assert_eq!(recent[0].start_us, 600);
        assert_eq!(recent[3].start_us, 900);
        assert_eq!(recent[3].dur_us, 19);
        assert_eq!(recent[3].name, "merge");
    }

    #[test]
    fn fresh_ring_reports_nothing() {
        let ring = SpanRing::new(8, Instant::now());
        assert!(ring.recent().is_empty());
    }

    #[test]
    fn unfilled_slots_are_skipped_by_name_filter() {
        let ring = SpanRing::new(8, Instant::now());
        let id = ring.intern("only");
        ring.record(id, 1, 2);
        let recent = ring.recent();
        assert_eq!(recent.len(), 1);
        assert_eq!(recent[0].name, "only");
    }
}
