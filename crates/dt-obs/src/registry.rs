//! The metrics registry and its scalar instruments.
//!
//! Registration (naming a metric, interning a span) takes a mutex —
//! it happens at pipeline/server construction. The instruments handed
//! back are `Option<Arc<atomic>>` handles: recording on an enabled
//! handle is one relaxed atomic op, recording on a disabled handle is
//! a branch. Cloning a handle or the registry is an `Arc` clone.

use crate::histogram::{Histogram, HistogramSnapshot};
use crate::span::{SpanGuard, SpanId, SpanRecord, SpanRing};
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Default span-ring capacity (spans retained for snapshots).
const SPAN_RING_CAPACITY: usize = 1024;

/// A monotonically increasing count. Cloneable; disabled handles are
/// inert.
#[derive(Debug, Clone, Default)]
pub struct Counter {
    cell: Option<Arc<AtomicU64>>,
}

impl Counter {
    /// A handle that records nothing.
    pub fn disabled() -> Self {
        Counter { cell: None }
    }

    /// Add 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(cell) = &self.cell {
            cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.cell.as_ref().map_or(0, |c| c.load(Ordering::Relaxed))
    }
}

/// A settable level (queue depth, lag). Cloneable; disabled handles
/// are inert.
#[derive(Debug, Clone, Default)]
pub struct Gauge {
    cell: Option<Arc<AtomicI64>>,
}

impl Gauge {
    /// A handle that records nothing.
    pub fn disabled() -> Self {
        Gauge { cell: None }
    }

    /// Set the level.
    #[inline]
    pub fn set(&self, v: i64) {
        if let Some(cell) = &self.cell {
            cell.store(v, Ordering::Relaxed);
        }
    }

    /// Add `n` (may be negative via `sub`).
    #[inline]
    pub fn add(&self, n: i64) {
        if let Some(cell) = &self.cell {
            cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Subtract `n`.
    #[inline]
    pub fn sub(&self, n: i64) {
        self.add(-n);
    }

    /// Current level.
    pub fn get(&self) -> i64 {
        self.cell.as_ref().map_or(0, |c| c.load(Ordering::Relaxed))
    }
}

/// What kind of instrument a registered metric is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonic count.
    Counter,
    /// Settable level.
    Gauge,
    /// Log-linear distribution.
    Histogram,
}

#[derive(Debug, Clone)]
enum Cell {
    Counter(Arc<AtomicU64>),
    Gauge(Arc<AtomicI64>),
    Histogram(Histogram),
}

#[derive(Debug)]
struct MetricEntry {
    name: String,
    help: String,
    labels: Vec<(String, String)>,
    cell: Cell,
}

#[derive(Debug)]
struct RegistryInner {
    metrics: Mutex<Vec<MetricEntry>>,
    spans: SpanRing,
}

/// The cloneable observability handle. See the crate docs.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    inner: Option<Arc<RegistryInner>>,
}

impl MetricsRegistry {
    /// A recording registry.
    pub fn new() -> Self {
        MetricsRegistry {
            inner: Some(Arc::new(RegistryInner {
                metrics: Mutex::new(Vec::new()),
                spans: SpanRing::new(SPAN_RING_CAPACITY, Instant::now()),
            })),
        }
    }

    /// A registry whose every instrument is a no-op.
    pub fn disabled() -> Self {
        MetricsRegistry { inner: None }
    }

    /// True when instruments actually record.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    fn register(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        make: impl FnOnce() -> Cell,
        kind: MetricKind,
    ) -> Cell {
        let Some(inner) = &self.inner else {
            return make_disabled(kind);
        };
        let mut metrics = inner.metrics.lock().expect("metrics registry");
        if let Some(e) = metrics
            .iter()
            .find(|e| e.name == name && label_eq(&e.labels, labels))
        {
            if cell_kind(&e.cell) == kind {
                return e.cell.clone();
            }
            // Same name, different kind: hand back a detached cell so
            // the caller still works; it just won't be exported.
            return make();
        }
        let cell = make();
        metrics.push(MetricEntry {
            name: name.to_string(),
            help: help.to_string(),
            labels: labels
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
            cell: cell.clone(),
        });
        cell
    }

    /// Register (or look up) a counter. Counter names end in `_total`
    /// by convention.
    pub fn counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Counter {
        if self.inner.is_none() {
            return Counter::disabled();
        }
        match self.register(
            name,
            help,
            labels,
            || Cell::Counter(Arc::new(AtomicU64::new(0))),
            MetricKind::Counter,
        ) {
            Cell::Counter(cell) => Counter { cell: Some(cell) },
            _ => Counter::disabled(),
        }
    }

    /// Register (or look up) a gauge.
    pub fn gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Gauge {
        if self.inner.is_none() {
            return Gauge::disabled();
        }
        match self.register(
            name,
            help,
            labels,
            || Cell::Gauge(Arc::new(AtomicI64::new(0))),
            MetricKind::Gauge,
        ) {
            Cell::Gauge(cell) => Gauge { cell: Some(cell) },
            _ => Gauge::disabled(),
        }
    }

    /// Register (or look up) a histogram. Time histograms record
    /// microseconds and end in `_us` by convention.
    pub fn histogram(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Histogram {
        if self.inner.is_none() {
            return Histogram::disabled();
        }
        match self.register(
            name,
            help,
            labels,
            || Cell::Histogram(Histogram::live()),
            MetricKind::Histogram,
        ) {
            Cell::Histogram(h) => h,
            _ => Histogram::disabled(),
        }
    }

    /// Intern a span (stage) name for [`MetricsRegistry::span`].
    pub fn span_id(&self, name: &str) -> SpanId {
        match &self.inner {
            Some(inner) => inner.spans.intern(name),
            None => SpanId(0),
        }
    }

    /// Start a span; the returned guard records (start, duration) into
    /// the ring when dropped. Disabled registries never read the
    /// clock.
    #[inline]
    pub fn span(&self, id: SpanId) -> SpanGuard<'_> {
        match &self.inner {
            Some(inner) => SpanGuard {
                ring: Some(&inner.spans),
                id,
                start_us: inner.spans.now_us(),
                start: Some(Instant::now()),
            },
            None => SpanGuard {
                ring: None,
                id,
                start_us: 0,
                start: None,
            },
        }
    }

    /// The most recent spans, oldest first.
    pub fn recent_spans(&self) -> Vec<SpanRecord> {
        self.inner
            .as_ref()
            .map_or_else(Vec::new, |i| i.spans.recent())
    }

    /// Freeze every metric and the span ring.
    pub fn snapshot(&self) -> Snapshot {
        let Some(inner) = &self.inner else {
            return Snapshot::default();
        };
        let metrics = inner.metrics.lock().expect("metrics registry");
        Snapshot {
            metrics: metrics
                .iter()
                .map(|e| MetricSnapshot {
                    name: e.name.clone(),
                    help: e.help.clone(),
                    labels: e.labels.clone(),
                    value: match &e.cell {
                        Cell::Counter(c) => MetricValue::Counter(c.load(Ordering::Relaxed)),
                        Cell::Gauge(g) => MetricValue::Gauge(g.load(Ordering::Relaxed)),
                        Cell::Histogram(h) => MetricValue::Histogram(h.snapshot()),
                    },
                })
                .collect(),
            spans: inner.spans.recent(),
        }
    }

    /// Prometheus text exposition (`text/plain; version=0.0.4`).
    ///
    /// Counters and gauges are one sample each; histograms expose
    /// cumulative `_bucket{le=…}` series at power-of-two boundaries
    /// (the internal resolution is 16× finer; the coarser exposition
    /// keeps scrapes small) plus `_sum`, `_count`, and quantile
    /// estimate gauges (`_p50` / `_p90` / `_p99`).
    pub fn render_prometheus(&self) -> String {
        let Some(inner) = &self.inner else {
            return String::new();
        };
        let metrics = inner.metrics.lock().expect("metrics registry");
        let mut out = String::new();
        let mut seen_types: Vec<(String, &'static str)> = Vec::new();
        for e in metrics.iter() {
            match &e.cell {
                Cell::Counter(c) => {
                    type_line(&mut out, &mut seen_types, &e.name, &e.help, "counter");
                    sample(
                        &mut out,
                        &e.name,
                        &e.labels,
                        &[],
                        &fmt_u64(c.load(Ordering::Relaxed)),
                    );
                }
                Cell::Gauge(g) => {
                    type_line(&mut out, &mut seen_types, &e.name, &e.help, "gauge");
                    sample(
                        &mut out,
                        &e.name,
                        &e.labels,
                        &[],
                        &g.load(Ordering::Relaxed).to_string(),
                    );
                }
                Cell::Histogram(h) => {
                    type_line(&mut out, &mut seen_types, &e.name, &e.help, "histogram");
                    let total = h.count();
                    for (le, cum) in h.cumulative_pow2() {
                        sample(
                            &mut out,
                            &format!("{}_bucket", e.name),
                            &e.labels,
                            &[("le", &fmt_u64(le))],
                            &fmt_u64(cum),
                        );
                    }
                    sample(
                        &mut out,
                        &format!("{}_bucket", e.name),
                        &e.labels,
                        &[("le", "+Inf")],
                        &fmt_u64(total),
                    );
                    sample(
                        &mut out,
                        &format!("{}_sum", e.name),
                        &e.labels,
                        &[],
                        &fmt_u64(h.sum()),
                    );
                    sample(
                        &mut out,
                        &format!("{}_count", e.name),
                        &e.labels,
                        &[],
                        &fmt_u64(total),
                    );
                    let snap = h.snapshot();
                    for (suffix, v) in [("p50", snap.p50), ("p90", snap.p90), ("p99", snap.p99)] {
                        let qname = format!("{}_{suffix}", e.name);
                        type_line(
                            &mut out,
                            &mut seen_types,
                            &qname,
                            &format!("{} ({suffix} estimate)", e.help),
                            "gauge",
                        );
                        sample(&mut out, &qname, &e.labels, &[], &fmt_u64(v));
                    }
                }
            }
        }
        out
    }

    /// A human-readable snapshot table (the `--obs` output).
    pub fn render_table(&self) -> String {
        self.snapshot().render_table()
    }
}

fn make_disabled(kind: MetricKind) -> Cell {
    match kind {
        MetricKind::Counter => Cell::Counter(Arc::new(AtomicU64::new(0))),
        MetricKind::Gauge => Cell::Gauge(Arc::new(AtomicI64::new(0))),
        MetricKind::Histogram => Cell::Histogram(Histogram::disabled()),
    }
}

fn cell_kind(cell: &Cell) -> MetricKind {
    match cell {
        Cell::Counter(_) => MetricKind::Counter,
        Cell::Gauge(_) => MetricKind::Gauge,
        Cell::Histogram(_) => MetricKind::Histogram,
    }
}

fn label_eq(have: &[(String, String)], want: &[(&str, &str)]) -> bool {
    have.len() == want.len()
        && have
            .iter()
            .zip(want)
            .all(|((hk, hv), (wk, wv))| hk == wk && hv == wv)
}

fn fmt_u64(v: u64) -> String {
    v.to_string()
}

/// Emit `# HELP` / `# TYPE` once per metric family.
fn type_line(
    out: &mut String,
    seen: &mut Vec<(String, &'static str)>,
    name: &str,
    help: &str,
    ty: &'static str,
) {
    if seen.iter().any(|(n, _)| n == name) {
        return;
    }
    seen.push((name.to_string(), ty));
    out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} {ty}\n"));
}

/// Emit one sample line with the entry's labels plus extras.
fn sample(
    out: &mut String,
    name: &str,
    labels: &[(String, String)],
    extra: &[(&str, &str)],
    value: &str,
) {
    out.push_str(name);
    if !labels.is_empty() || !extra.is_empty() {
        out.push('{');
        let mut first = true;
        for (k, v) in labels
            .iter()
            .map(|(k, v)| (k.as_str(), v.as_str()))
            .chain(extra.iter().copied())
        {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!("{k}=\"{}\"", escape_label(v)));
        }
        out.push('}');
    }
    out.push(' ');
    out.push_str(value);
    out.push('\n');
}

fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// A frozen view of every registered metric plus recent spans.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// Every registered metric, in registration order.
    pub metrics: Vec<MetricSnapshot>,
    /// Recent spans, oldest first.
    pub spans: Vec<SpanRecord>,
}

/// One metric, frozen.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricSnapshot {
    /// Metric family name.
    pub name: String,
    /// Help text.
    pub help: String,
    /// Static label set.
    pub labels: Vec<(String, String)>,
    /// The frozen value.
    pub value: MetricValue,
}

/// A frozen metric value.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Counter value.
    Counter(u64),
    /// Gauge level.
    Gauge(i64),
    /// Histogram digest.
    Histogram(HistogramSnapshot),
}

impl MetricSnapshot {
    /// `name{k=v,…}` for display.
    pub fn display_name(&self) -> String {
        if self.labels.is_empty() {
            return self.name.clone();
        }
        let labels: Vec<String> = self
            .labels
            .iter()
            .map(|(k, v)| format!("{k}={v}"))
            .collect();
        format!("{}{{{}}}", self.name, labels.join(","))
    }
}

impl Snapshot {
    /// Find a metric by family name and an optional label filter.
    pub fn find(&self, name: &str, labels: &[(&str, &str)]) -> Option<&MetricSnapshot> {
        self.metrics.iter().find(|m| {
            m.name == name
                && labels
                    .iter()
                    .all(|(k, v)| m.labels.iter().any(|(mk, mv)| mk == k && mv == v))
        })
    }

    /// The human-readable table.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        let width = self
            .metrics
            .iter()
            .map(|m| m.display_name().len())
            .max()
            .unwrap_or(0)
            .max(6);
        out.push_str(&format!("{:<width$}  value\n", "metric"));
        for m in &self.metrics {
            let value = match &m.value {
                MetricValue::Counter(v) => v.to_string(),
                MetricValue::Gauge(v) => v.to_string(),
                MetricValue::Histogram(h) => format!(
                    "count={} mean={:.1} p50={} p90={} p99={} max={}",
                    h.count,
                    h.mean(),
                    h.p50,
                    h.p90,
                    h.p99,
                    h.max
                ),
            };
            out.push_str(&format!("{:<width$}  {value}\n", m.display_name()));
        }
        if !self.spans.is_empty() {
            out.push_str(&format!("\nrecent spans ({}):\n", self.spans.len()));
            for s in self.spans.iter().rev().take(16) {
                out.push_str(&format!(
                    "  +{:>10}us {:<16} {:>8}us\n",
                    s.start_us, s.name, s.dur_us
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_is_idempotent_per_name_and_labels() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("x_total", "a counter", &[("stream", "R")]);
        let b = reg.counter("x_total", "a counter", &[("stream", "R")]);
        let c = reg.counter("x_total", "a counter", &[("stream", "S")]);
        a.inc();
        b.add(2);
        c.inc();
        assert_eq!(a.get(), 3, "same cell behind both handles");
        assert_eq!(c.get(), 1);
        assert_eq!(reg.snapshot().metrics.len(), 2);
    }

    #[test]
    fn kind_conflicts_hand_back_detached_cells() {
        let reg = MetricsRegistry::new();
        let _c = reg.counter("x_total", "a counter", &[]);
        let g = reg.gauge("x_total", "now a gauge?", &[]);
        g.set(7);
        assert_eq!(g.get(), 7, "detached cell still works");
        assert_eq!(reg.snapshot().metrics.len(), 1, "but is not exported");
    }

    #[test]
    fn disabled_registry_is_fully_inert() {
        let reg = MetricsRegistry::disabled();
        let c = reg.counter("x_total", "c", &[]);
        let g = reg.gauge("y", "g", &[]);
        let h = reg.histogram("z_us", "h", &[]);
        c.inc();
        g.set(5);
        h.observe(10);
        let id = reg.span_id("stage");
        reg.span(id).finish();
        assert_eq!(c.get(), 0);
        assert_eq!(g.get(), 0);
        assert_eq!(h.count(), 0);
        assert!(reg.snapshot().metrics.is_empty());
        assert!(reg.recent_spans().is_empty());
        assert!(reg.render_prometheus().is_empty());
        assert!(!reg.is_enabled());
    }

    #[test]
    fn prometheus_rendering_has_types_labels_and_quantiles() {
        let reg = MetricsRegistry::new();
        reg.counter("dt_x_total", "tuples", &[("stream", "R")])
            .add(5);
        reg.gauge("dt_depth", "queue depth", &[("stream", "R")])
            .set(-2);
        let h = reg.histogram("dt_lat_us", "latency", &[]);
        for v in [10u64, 100, 1000] {
            h.observe(v);
        }
        let text = reg.render_prometheus();
        assert!(text.contains("# TYPE dt_x_total counter"), "{text}");
        assert!(text.contains("dt_x_total{stream=\"R\"} 5"), "{text}");
        assert!(text.contains("dt_depth{stream=\"R\"} -2"), "{text}");
        assert!(text.contains("# TYPE dt_lat_us histogram"), "{text}");
        assert!(text.contains("dt_lat_us_bucket{le=\"+Inf\"} 3"), "{text}");
        assert!(text.contains("dt_lat_us_count 3"), "{text}");
        assert!(text.contains("dt_lat_us_sum 1110"), "{text}");
        assert!(text.contains("dt_lat_us_p50"), "{text}");
        assert!(text.contains("dt_lat_us_p99"), "{text}");
        // Every cumulative bucket count is ≤ the +Inf count.
        for line in text.lines().filter(|l| l.contains("_bucket{")) {
            let v: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(v <= 3, "{line}");
        }
    }

    #[test]
    fn snapshot_find_filters_by_label() {
        let reg = MetricsRegistry::new();
        reg.counter("n_total", "n", &[("mode", "data-triage")])
            .add(4);
        reg.counter("n_total", "n", &[("mode", "drop-only")]).add(9);
        let snap = reg.snapshot();
        match snap
            .find("n_total", &[("mode", "drop-only")])
            .unwrap()
            .value
        {
            MetricValue::Counter(v) => assert_eq!(v, 9),
            ref other => panic!("{other:?}"),
        }
        assert!(snap.find("n_total", &[("mode", "nope")]).is_none());
        assert!(!snap.render_table().is_empty());
    }

    #[test]
    fn spans_round_trip_through_registry() {
        let reg = MetricsRegistry::new();
        let id = reg.span_id("merge");
        {
            let _g = reg.span(id);
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        let spans = reg.recent_spans();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].name, "merge");
        assert!(spans[0].dur_us >= 1_000, "{}", spans[0].dur_us);
    }
}
