//! Low-overhead observability for the Data Triage runtime.
//!
//! The whole point of Data Triage is *behavior under overload* — and a
//! runtime that sheds load is exactly the runtime you cannot afford to
//! slow down by watching it. This crate is the compromise the
//! production stream processors make: an instrumentation layer whose
//! hot-path cost is a handful of uncontended atomic operations, and
//! whose *disabled* cost is a branch on an `Option`.
//!
//! Components:
//!
//! * [`MetricsRegistry`] — the cheap, cloneable handle everything hangs
//!   off. A registry built with [`MetricsRegistry::new`] records; one
//!   built with [`MetricsRegistry::disabled`] hands out no-op
//!   instruments (no allocation, no atomics, no `Instant` reads).
//! * [`Counter`] / [`Gauge`] — lock-free monotonic counts and
//!   set/add/sub levels (queue depths, shed totals, ingest bytes).
//! * [`Histogram`] — a log-linear (HDR-style) histogram over `u64`
//!   values: 16 linear sub-buckets per power of two, so relative error
//!   is bounded at ~6 % across the full range while recording stays a
//!   single atomic increment. Quantile extraction ([`Histogram::quantile`])
//!   serves p50/p90/p99; the exact observed max is tracked separately.
//! * Span tracing (inside the registry) — a bounded ring buffer of
//!   coarse stage timings (`seal`, `merge`, `window_exec`): the last N
//!   spans survive for a snapshot, older ones are overwritten, and
//!   recording never blocks.
//! * Exposition — [`MetricsRegistry::render_prometheus`] emits the
//!   Prometheus text format (`text/plain; version=0.0.4`);
//!   [`MetricsRegistry::render_table`] a human-readable snapshot table.
//!
//! Conventions: counters end in `_total`; time histograms record
//! **microseconds** and end in `_us`; label sets are small and static
//! (stream names, shed modes). Registering the same name + label set
//! twice returns a handle to the same underlying cell.
//!
//! The instrument families themselves live with the code they measure:
//! `dt-triage` registers the per-stream triage counters and the
//! adaptive controller's `dt_triage_threshold` /
//! `dt_triage_estimated_delay_ms` / `dt_triage_shed_fraction` gauges
//! (DESIGN.md §11), `dt-server` the runtime counters and latency
//! histograms. DESIGN.md §9 is the full metric index.

mod histogram;
mod registry;
mod span;

pub use histogram::{Histogram, HistogramSnapshot};
pub use registry::{
    Counter, Gauge, MetricKind, MetricSnapshot, MetricValue, MetricsRegistry, Snapshot,
};
pub use span::{SpanGuard, SpanId, SpanRecord};
