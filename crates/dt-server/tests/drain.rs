//! Graceful-drain latency of the event-loop ingest plane.
//!
//! An idle connection on the threaded plane parks in a 50 ms read
//! timeout; on the event loop it parks in epoll with *no* data ever
//! arriving. Shutdown must not wait for peers to hang up: the reactor
//! observes the stop flag at its next wakeup (forced by an eventfd
//! kick) and closes every connection in one sweep — holdbacks
//! flushed, interest deregistered, then the socket dropped. This test
//! pins that drain promptness end to end with live sockets.

use std::net::SocketAddr;
use std::sync::Arc;
use std::time::{Duration, Instant};

use dt_query::Catalog;
use dt_server::{
    fetch_metrics, fetch_stats, render_frame, Client, ClientConfig, IngestPlane, MetricsRegistry,
    RetryPolicy, Server, ServerConfig,
};
use dt_synopsis::SynopsisConfig;
use dt_types::{DataType, Row, Schema, Timestamp, VDuration, VirtualClock};

const IDLE_CONNS: usize = 8;

fn drain_config() -> ServerConfig {
    let mut catalog = Catalog::new();
    catalog.add_stream("R", Schema::from_pairs(&[("a", DataType::Int)]));
    let mut cfg = ServerConfig::new("SELECT a, COUNT(*) FROM R GROUP BY a", catalog);
    cfg.window = Some(VDuration::from_secs(1));
    cfg.synopsis = SynopsisConfig::Sparse { cell_width: 1 };
    cfg.metrics = MetricsRegistry::new();
    cfg.ingest = IngestPlane::EventLoop { reactors: 2 };
    cfg
}

fn idle_client(addr: SocketAddr) -> Client {
    Client::connect_with(
        addr,
        ClientConfig {
            read_timeout: Some(Duration::from_secs(5)),
            retry: RetryPolicy::none(),
        },
    )
    .expect("client connects")
}

/// Sum every sample of a metric family in a Prometheus exposition.
fn series_sum(metrics: &str, name: &str) -> u64 {
    metrics
        .lines()
        .filter(|l| l.starts_with(name) && !l.starts_with("# "))
        .filter_map(|l| l.rsplit(' ').next()?.parse::<u64>().ok())
        .sum()
}

/// Shutdown with open, idle connections completes within the drain
/// bound instead of waiting on peers that will never speak again, and
/// every parked client observes an orderly EOF.
#[test]
fn drain_closes_idle_connections_promptly() {
    let cfg = drain_config();
    let clock = Arc::new(VirtualClock::new());
    clock.set(Timestamp::from_micros(600_000));
    let server = Server::start(&cfg, Some("127.0.0.1:0"), clock).expect("server starts");
    let addr = server.addr().expect("bound address");

    // Park IDLE_CONNS clients: one frame each (so the reactors have
    // adopted and read them), then silence.
    let mut clients: Vec<Client> = Vec::new();
    for i in 0..IDLE_CONNS {
        let mut c = idle_client(addr);
        let line = render_frame(
            "R",
            &Row::from_ints(&[i as i64 % 5]),
            Some(Timestamp::from_micros(100_000 + i as u64)),
        )
        .expect("render");
        c.send_line(&line).expect("send");
        clients.push(c);
    }

    // Every connection adopted and every frame through the engine.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let s = fetch_stats(addr).expect("stats");
        if s.stream("R").expect("stream R").offered >= IDLE_CONNS as u64 {
            break;
        }
        assert!(Instant::now() < deadline, "frames never arrived");
        std::thread::sleep(Duration::from_millis(5));
    }
    #[cfg(target_os = "linux")]
    {
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            let m = fetch_metrics(addr).expect("metrics");
            // The stats/metrics probe connections come and go, so the
            // gauge is exactly the parked clients once they're all
            // adopted and the probe has hung up.
            if series_sum(&m, "dt_server_reactor_conns") >= IDLE_CONNS as u64 {
                assert!(
                    series_sum(&m, "dt_server_readiness_wakeups_total") > 0,
                    "{m}"
                );
                assert!(m.contains("dt_server_ingest_read_burst_bytes"), "{m}");
                break;
            }
            assert!(
                Instant::now() < deadline,
                "reactors never adopted the idle conns"
            );
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    // The drain itself: the reactor tick is 10 ms, so even with
    // thread joins and the final report this must be near-instant.
    // The bound is generous for CI noise but far below the blocking
    // alternative of waiting out eight silent peers.
    let t0 = Instant::now();
    let report = server.shutdown().expect("graceful shutdown");
    let elapsed = t0.elapsed();
    assert!(
        elapsed < Duration::from_secs(1),
        "drain took {elapsed:?} with {IDLE_CONNS} idle connections open"
    );

    // Orderly close: every parked client sees EOF, not a reset.
    for mut c in clients {
        assert_eq!(c.recv_line().expect("clean EOF"), None);
    }

    // Nothing lost on the way down.
    let run = &report.reports[0];
    let arrived: u64 = run.windows.iter().map(|w| w.arrived).sum();
    assert_eq!(arrived, IDLE_CONNS as u64);
}
