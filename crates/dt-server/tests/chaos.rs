//! The chaos suite: a full server on a loopback socket, soaked under
//! seeded [`FaultPlan`] schedules.
//!
//! The plan is a *pure* decision function of `(seed, domain, a, b)`,
//! so the harness — which tracks exactly the indices the server uses
//! (connection number, line number) — can re-derive every injected
//! corruption after the fact. That prediction is what turns "the
//! server survived" into the much stronger determinism contract:
//! every window outside the blast radius is **bit-identical** to a
//! fault-free run, and every window inside it is flagged.
//!
//! Alongside the soak, targeted tests pin each degradation mechanism
//! in isolation: the merger's watchdog force-sealing past a stalled
//! sealer, the per-connection error budget and its structured error
//! frame, supervised worker restart after an injected panic, and the
//! client's typed timeouts and bounded retry loop.

use dt_query::Catalog;
use dt_server::{
    fetch_metrics, fetch_stats, fetch_stats_with, render_frame, Client, ClientConfig, FaultPlan,
    IngestPlane, MetricsRegistry, RetryPolicy, Server, ServerConfig, ServerReport, StatsReply,
    VirtualClock,
};
use dt_synopsis::SynopsisConfig;
use dt_triage::RunReport;
use dt_types::{DataType, Row, Schema, Timestamp, VDuration};
use std::collections::BTreeSet;
use std::net::SocketAddr;
use std::sync::{Arc, Once};
use std::time::{Duration, Instant};

/// Windows in a soak run and frames per window. The channel capacity
/// stays far above one window's frames so no run ever sheds: every
/// count difference between runs is then attributable to a fault.
const WINDOWS: usize = 10;
const FRAMES: usize = 48;
const CAPACITY: usize = 256;

/// Injected worker panics are part of the experiment, not noise:
/// filter their reports, forward everything else to the default hook.
fn quiet_injected_panics() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let msg = info
                .payload()
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| info.payload().downcast_ref::<&str>().copied())
                .unwrap_or("");
            if !msg.contains("injected worker panic") {
                prev(info);
            }
        }));
    });
}

fn poll(what: &str, mut ready: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while Instant::now() < deadline {
        if ready() {
            return;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    panic!("timed out waiting for {what}");
}

/// Sum of the first aggregate (COUNT(*)) across a window's groups.
fn total_count(report: &RunReport, w: usize) -> f64 {
    report.windows[w]
        .groups()
        .expect("aggregating query")
        .values()
        .map(|aggs| aggs[0])
        .sum()
}

/// Sum every sample of a counter family in a Prometheus exposition.
fn series_sum(metrics: &str, name: &str) -> u64 {
    metrics
        .lines()
        .filter(|l| l.starts_with(name) && !l.starts_with("# "))
        .filter_map(|l| l.rsplit(' ').next()?.parse::<u64>().ok())
        .sum()
}

/// The soak's ingest clients never self-heal: retries would open
/// server connections the harness didn't count, breaking its
/// (connection, line) bookkeeping. Recovery is the harness's job.
fn harness_client(addr: SocketAddr) -> Client {
    Client::connect_with(
        addr,
        ClientConfig {
            read_timeout: Some(Duration::from_secs(5)),
            retry: RetryPolicy::none(),
        },
    )
    .expect("harness client connects")
}

/// Ingest lines the server has fully handled (offered or rejected).
/// Holdbacks flush on every close path, so once a connection is gone
/// this is always a *prefix* of the lines sent.
fn processed(addr: SocketAddr) -> u64 {
    let s = fetch_stats(addr).expect("stats");
    s.stream("R").expect("stream R").offered + s.parse_errors
}

/// Wait until the processed count stops moving (two idle-flush ticks
/// of quiet), then trust it as the resume point.
fn settled_processed(addr: SocketAddr) -> u64 {
    let mut p = processed(addr);
    let mut quiet = Instant::now();
    loop {
        std::thread::sleep(Duration::from_millis(10));
        let q = processed(addr);
        if q != p {
            p = q;
            quiet = Instant::now();
        } else if quiet.elapsed() >= Duration::from_millis(200) {
            return p;
        }
    }
}

/// Everything one soak run leaves behind for the assertions.
struct Soak {
    report: ServerReport,
    stats: StatsReply,
    metrics: String,
    /// Global frame index at which each ingest connection started —
    /// connection `c` processed exactly `frames[starts[c]..starts[c+1]]`.
    conn_starts: Vec<usize>,
    frames: usize,
}

/// Drive one full soak: `WINDOWS` windows of `FRAMES` frames each,
/// sent strictly after the clock passes the window's end (so pacing
/// never defers consumption and nothing sheds), waiting after every
/// window until the server has handled each line. A processing stall
/// means the connection died (an injected disconnect, usually): the
/// harness closes it, reads back how far the server got, and resends
/// the unprocessed suffix on a fresh connection — exactly what a
/// production producer with client-side buffering would do.
fn soak(plan: FaultPlan) -> Soak {
    let mut catalog = Catalog::new();
    catalog.add_stream("R", Schema::from_pairs(&[("a", DataType::Int)]));
    let mut cfg = ServerConfig::new("SELECT a, COUNT(*) FROM R GROUP BY a", catalog);
    cfg.window = Some(VDuration::from_secs(1));
    cfg.synopsis = SynopsisConfig::Sparse { cell_width: 1 };
    cfg.channel_capacity = CAPACITY;
    cfg.metrics = MetricsRegistry::new();
    cfg.seal_watchdog = Some(VDuration::from_secs(2));
    cfg.fault = plan;

    let clock = Arc::new(VirtualClock::new());
    let server = Server::start(&cfg, Some("127.0.0.1:0"), clock.clone()).expect("server starts");
    let addr = server.addr().expect("bound address");

    let mut frames: Vec<String> = Vec::with_capacity(WINDOWS * FRAMES);
    let mut conn_starts = vec![0usize];
    let mut client = Some(harness_client(addr));

    for w in 0..WINDOWS as u64 {
        clock.set(Timestamp::from_micros((w + 1) * 1_000_000));
        for i in 0..FRAMES as u64 {
            let ts = Timestamp::from_micros(w * 1_000_000 + 10_000 + i * 18_000);
            let a = ((i * 7 + w) % 5) as i64;
            let line = render_frame("R", &Row::from_ints(&[a]), Some(ts)).expect("render");
            if let Some(c) = client.as_mut() {
                // A dead socket is detected (and recovered) below.
                let _ = c.send_line(&line);
            }
            frames.push(line);
        }
        await_processed(addr, &frames, &mut client, &mut conn_starts);
    }

    let metrics = fetch_metrics(addr).expect("metrics scrape");
    let stats = fetch_stats(addr).expect("stats");
    if let Some(c) = client.take() {
        let _ = c.close();
    }
    let report = server.shutdown().expect("graceful shutdown — no deadlock");
    Soak {
        report,
        stats,
        metrics,
        conn_starts,
        frames: frames.len(),
    }
}

fn await_processed(
    addr: SocketAddr,
    frames: &[String],
    client: &mut Option<Client>,
    conn_starts: &mut Vec<usize>,
) {
    let target = frames.len() as u64;
    let deadline = Instant::now() + Duration::from_secs(30);
    let mut last = processed(addr);
    let mut last_change = Instant::now();
    while last < target {
        assert!(
            Instant::now() < deadline,
            "ingest deadlocked at {last}/{target} lines"
        );
        std::thread::sleep(Duration::from_millis(5));
        let p = processed(addr);
        if p != last {
            last = p;
            last_change = Instant::now();
            continue;
        }
        if last_change.elapsed() < Duration::from_millis(400) {
            continue;
        }
        // Stalled well past the idle-flush tick: the connection is
        // dead. Resynchronize from the server's own count.
        if let Some(c) = client.take() {
            let _ = c.close();
        }
        let resume = settled_processed(addr);
        assert!(resume <= target, "server processed lines never sent");
        conn_starts.push(resume as usize);
        let mut fresh = harness_client(addr);
        for line in &frames[resume as usize..] {
            let _ = fresh.send_line(line);
        }
        *client = Some(fresh);
        last = processed(addr);
        last_change = Instant::now();
    }
}

/// Re-derive the fault plan's corruption schedule from the harness's
/// connection bookkeeping: which lines were mangled, and therefore
/// which windows lost a frame.
fn predicted_corruption(
    plan: &FaultPlan,
    conn_starts: &[usize],
    total: usize,
) -> (u64, BTreeSet<u64>) {
    let mut errors = 0u64;
    let mut windows = BTreeSet::new();
    for (c, &start) in conn_starts.iter().enumerate() {
        let end = conn_starts.get(c + 1).copied().unwrap_or(total);
        for j in start..end {
            if plan.corrupt(c as u64, (j - start) as u64).is_some() {
                errors += 1;
                windows.insert((j / FRAMES) as u64);
            }
        }
    }
    (errors, windows)
}

/// The tentpole: three seeded fault schedules against one fault-free
/// baseline. (a) no deadlock, no dropped windows — every run emits
/// the full contiguous window range; (b) windows outside the blast
/// radius are bit-identical to the baseline; (c) windows inside it
/// are flagged (degraded, or short exactly where a corrupted frame
/// was predicted).
#[test]
fn chaos_soak_is_deterministic_outside_the_blast_radius() {
    quiet_injected_panics();

    let base = soak(FaultPlan::disabled());
    let base_run = &base.report.reports[0];
    let ids: Vec<u64> = base_run.windows.iter().map(|w| w.window).collect();
    assert_eq!(ids, (0..WINDOWS as u64).collect::<Vec<_>>());
    assert_eq!(base.stats.parse_errors, 0);
    assert_eq!(base.stats.windows_degraded, 0);
    for w in &base_run.windows {
        assert!(!w.degraded, "fault-free run degraded window {}", w.window);
        assert_eq!(w.arrived, FRAMES as u64);
        assert_eq!(w.dropped, 0, "capacity rules out shedding");
    }

    for seed in [11u64, 23, 42] {
        let plan = FaultPlan::seeded(seed);
        let out = soak(plan.clone());
        let run = &out.report.reports[0];

        // (a) Every window emitted exactly once, strictly in order.
        let ids: Vec<u64> = run.windows.iter().map(|w| w.window).collect();
        assert_eq!(
            ids,
            (0..WINDOWS as u64).collect::<Vec<_>>(),
            "seed {seed}: windows dropped or reordered"
        );

        // The harness's prediction must match the server's accounting
        // exactly — this is what "deterministic injection" buys.
        let (errors, corrupt_windows) = predicted_corruption(&plan, &out.conn_starts, out.frames);
        assert_eq!(
            out.stats.parse_errors, errors,
            "seed {seed}: predicted corruption diverged (conns {:?})",
            out.conn_starts
        );

        // Blast radius: windows that lost a corrupted frame, plus
        // windows the server itself flagged (worker panics, forced
        // seals — the harness can't predict those to the tuple, the
        // runtime must confess them).
        let mut impacted = corrupt_windows;
        for w in &run.windows {
            if w.degraded {
                impacted.insert(w.window);
            }
        }

        for w in 0..WINDOWS {
            let wf = &run.windows[w];
            if impacted.contains(&(w as u64)) {
                assert!(
                    wf.arrived <= FRAMES as u64,
                    "seed {seed} window {w}: more tuples than were sent"
                );
                continue;
            }
            // (b) Bit-identical to the fault-free run.
            let wb = &base_run.windows[w];
            assert!(!wf.degraded);
            assert_eq!(wf.arrived, wb.arrived, "seed {seed} window {w}");
            assert_eq!(wf.kept, wb.kept, "seed {seed} window {w}");
            assert_eq!(wf.dropped, wb.dropped, "seed {seed} window {w}");
            assert_eq!(
                wf.groups(),
                wb.groups(),
                "seed {seed} window {w}: fault-free window diverged"
            );
        }

        // (c) The degraded ledger is consistent end to end: live
        // stats, final report, and per-window flags all agree.
        let flagged = run.windows.iter().filter(|w| w.degraded).count() as u64;
        assert_eq!(out.stats.windows_degraded, flagged, "seed {seed}");
        assert_eq!(out.report.windows_degraded, flagged, "seed {seed}");

        // The fault counters are live on /metrics, and the schedule
        // actually fired (5% delay over ~500 lines cannot miss).
        assert!(
            out.metrics
                .contains("# TYPE dt_server_faults_injected_total counter"),
            "seed {seed}: {}",
            out.metrics
        );
        assert!(
            series_sum(&out.metrics, "dt_server_faults_injected_total") > 0,
            "seed {seed}: no fault ever fired"
        );
        assert_eq!(
            series_sum(&out.metrics, "dt_server_frames_rejected_total"),
            errors,
            "seed {seed}"
        );
    }
}

/// A sealer that swallows a watermark stalls its windows; the merger's
/// watchdog force-seals past it from whatever contributions exist and
/// flags the result degraded, so one wedged stream cannot stall every
/// query's emission forever.
#[test]
fn watchdog_force_seals_past_a_stalled_sealer() {
    let mut catalog = Catalog::new();
    catalog.add_stream("R", Schema::from_pairs(&[("a", DataType::Int)]));
    let mut cfg = ServerConfig::new("SELECT a, COUNT(*) FROM R GROUP BY a", catalog);
    cfg.window = Some(VDuration::from_secs(1));
    cfg.synopsis = SynopsisConfig::Sparse { cell_width: 1 };
    cfg.metrics = MetricsRegistry::new();
    // The watchdog must be able to fire before the *next* watermark
    // repairs the stall, so it is shorter than one window here.
    cfg.seal_watchdog = Some(VDuration::from_millis(500));
    cfg.fault = FaultPlan::disabled().inject_seal_stall(0, 0);

    let clock = Arc::new(VirtualClock::new());
    let server = Server::start(&cfg, Some("127.0.0.1:0"), clock.clone()).expect("server starts");
    let addr = server.addr().expect("bound address");
    let mut client = Client::connect(addr).expect("client connects");

    clock.set(Timestamp::from_micros(600_000));
    for i in 0..5u64 {
        let ts = Timestamp::from_micros(100_000 + i * 100_000);
        client
            .send("R", &Row::from_ints(&[1]), Some(ts))
            .expect("send");
    }
    poll("ingest", || {
        fetch_stats(addr).unwrap().stream("R").unwrap().offered == 5
    });

    // Past window 0's end + grace + watchdog. The worker swallows the
    // Seal(0) watermark; after the real-time grace the merger seals
    // window 0 anyway — empty, degraded.
    clock.set(Timestamp::from_micros(1_700_000));
    poll("forced seal", || {
        fetch_stats(addr).unwrap().windows_emitted >= 1
    });
    let stats = fetch_stats(addr).expect("stats");
    assert_eq!(stats.windows_degraded, 1);
    let metrics = fetch_metrics(addr).expect("metrics");
    assert!(
        metrics.contains("dt_server_windows_force_sealed_total 1"),
        "{metrics}"
    );
    assert!(
        metrics.contains("dt_server_faults_injected_total{kind=\"stall_seal\"} 1"),
        "{metrics}"
    );

    client.close().expect("client close");
    let report = server.shutdown().expect("graceful shutdown");
    let run = &report.reports[0];
    // Exactly one window: the forced one. The worker's own (stale)
    // seal of window 0 at drain must not resurrect it.
    assert_eq!(report.windows_emitted, 1);
    assert_eq!(report.windows_degraded, 1);
    assert_eq!(run.windows.len(), 1);
    assert!(run.windows[0].degraded, "forced window must be flagged");
    assert_eq!(
        total_count(run, 0),
        0.0,
        "the stalled stream's tuples were lost, not resurrected"
    );
}

/// Malformed lines are skipped, not fatal — until a connection
/// exhausts its error budget, at which point the server answers with
/// a structured error frame and closes only that connection.
#[test]
fn error_budget_closes_noisy_connections_with_a_structured_frame() {
    let mut catalog = Catalog::new();
    catalog.add_stream("R", Schema::from_pairs(&[("a", DataType::Int)]));
    let mut cfg = ServerConfig::new("SELECT a, COUNT(*) FROM R GROUP BY a", catalog);
    cfg.window = Some(VDuration::from_secs(1));
    cfg.synopsis = SynopsisConfig::Sparse { cell_width: 1 };
    cfg.metrics = MetricsRegistry::new();
    cfg.conn_error_budget = 3;

    let clock = Arc::new(VirtualClock::new());
    let server = Server::start(&cfg, Some("127.0.0.1:0"), clock.clone()).expect("server starts");
    let addr = server.addr().expect("bound address");

    let mut noisy = Client::connect_with(
        addr,
        ClientConfig {
            read_timeout: Some(Duration::from_secs(5)),
            retry: RetryPolicy::none(),
        },
    )
    .expect("client connects");

    // Two bad lines: within budget, each skipped, connection alive.
    noisy.send_line("not a frame").expect("send");
    noisy.send_line("{\"torn\":").expect("send");
    poll("bad lines counted", || {
        fetch_stats(addr).unwrap().parse_errors == 2
    });
    noisy
        .send(
            "R",
            &Row::from_ints(&[1]),
            Some(Timestamp::from_micros(100_000)),
        )
        .expect("send");
    poll("good frame still lands", || {
        fetch_stats(addr).unwrap().stream("R").unwrap().offered == 1
    });

    // The third strike exhausts the budget: structured frame, close.
    noisy.send_line("@@garbage@@").expect("send");
    let frame = noisy
        .recv_line()
        .expect("error frame before close")
        .expect("frame, not bare EOF");
    assert!(
        frame.contains("\"error\":\"error budget exhausted\""),
        "{frame}"
    );
    assert!(frame.contains("\"rejected\":3"), "{frame}");
    assert!(frame.contains("\"budget\":3"), "{frame}");
    assert_eq!(noisy.recv_line().expect("EOF after frame"), None);

    // Only that connection died: a fresh producer is unaffected.
    let mut clean = Client::connect(addr).expect("second client");
    clean
        .send(
            "R",
            &Row::from_ints(&[2]),
            Some(Timestamp::from_micros(200_000)),
        )
        .expect("send");
    poll("fresh connection ingests", || {
        fetch_stats(addr).unwrap().stream("R").unwrap().offered == 2
    });
    let metrics = fetch_metrics(addr).expect("metrics");
    assert!(
        metrics.contains("dt_server_frames_rejected_total 3"),
        "{metrics}"
    );

    clean.close().expect("client close");
    let report = server.shutdown().expect("graceful shutdown");
    // Parse errors never degrade windows — the frames were rejected
    // at the door, not lost from runtime state.
    assert_eq!(report.windows_degraded, 0);
    assert_eq!(total_count(&report.reports[0], 0), 2.0);
}

/// An injected worker panic is confined: the supervisor restarts the
/// worker, the crashed window is emitted degraded with whatever
/// survived, and later windows are clean.
#[test]
fn worker_panic_recovers_into_a_degraded_window() {
    quiet_injected_panics();
    let mut catalog = Catalog::new();
    catalog.add_stream("R", Schema::from_pairs(&[("a", DataType::Int)]));
    let mut cfg = ServerConfig::new("SELECT a, COUNT(*) FROM R GROUP BY a", catalog);
    cfg.window = Some(VDuration::from_secs(1));
    cfg.synopsis = SynopsisConfig::Sparse { cell_width: 1 };
    cfg.metrics = MetricsRegistry::new();
    cfg.fault = FaultPlan::disabled().inject_worker_panic(0, 3);

    let clock = Arc::new(VirtualClock::new());
    let server = Server::start(&cfg, Some("127.0.0.1:0"), clock.clone()).expect("server starts");
    let addr = server.addr().expect("bound address");
    let mut client = Client::connect(addr).expect("client connects");

    clock.set(Timestamp::from_micros(600_000));
    for i in 0..5u64 {
        let ts = Timestamp::from_micros(100_000 + i * 100_000);
        client
            .send("R", &Row::from_ints(&[1]), Some(ts))
            .expect("send");
    }
    // The worker panics after its 3rd consumed tuple; wait until the
    // restarted incarnation has drained the rest.
    poll("worker restarted and caught up", || {
        let m = fetch_metrics(addr).unwrap();
        m.contains("dt_server_worker_restarts_total{stream=\"R\"} 1")
            && m.contains("dt_server_queue_depth{stream=\"R\"} 0")
    });

    clock.set(Timestamp::from_micros(1_200_000));
    poll("window 0 emitted", || {
        fetch_stats(addr).unwrap().windows_emitted >= 1
    });
    assert_eq!(fetch_stats(addr).unwrap().windows_degraded, 1);
    let metrics = fetch_metrics(addr).expect("metrics");
    assert!(
        metrics.contains("dt_server_faults_injected_total{kind=\"panic\"} 1"),
        "{metrics}"
    );

    // Window 1 after the crash is clean.
    for i in 0..4u64 {
        let ts = Timestamp::from_micros(1_100_000 + i * 20_000);
        client
            .send("R", &Row::from_ints(&[2]), Some(ts))
            .expect("send");
    }
    poll("post-crash ingest", || {
        fetch_stats(addr).unwrap().stream("R").unwrap().offered == 9
    });

    client.close().expect("client close");
    let report = server.shutdown().expect("graceful shutdown");
    let run = &report.reports[0];
    assert_eq!(report.windows_degraded, 1);
    assert!(run.windows[0].degraded, "crashed window flagged");
    assert_eq!(
        total_count(run, 0),
        2.0,
        "tuples consumed after the restart survive; the crashed ones are lost"
    );
    assert!(!run.windows[1].degraded, "recovery is complete, not sticky");
    assert_eq!(total_count(run, 1), 4.0);
}

/// A server that accepts but never answers costs a deadline, not a
/// hang: reads surface as the typed [`DtError::Timeout`].
#[test]
fn client_reads_time_out_on_a_silent_server() {
    // Bound but never accepted: the OS completes the handshake into
    // the backlog and the socket then stays silent forever.
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");

    let err = fetch_stats_with(addr, Some(Duration::from_millis(150)))
        .expect_err("a silent server must not yield stats");
    assert!(err.is_timeout(), "typed timeout, got: {err}");

    let mut client = Client::connect_with(
        addr,
        ClientConfig {
            read_timeout: Some(Duration::from_millis(150)),
            retry: RetryPolicy::none(),
        },
    )
    .expect("connect");
    let err = client.recv_line().expect_err("read must hit the deadline");
    assert!(err.is_timeout(), "typed timeout, got: {err}");
    drop(listener);
}

// ---------------------------------------------------------------
// Connection churn under readiness-layer faults (event-loop plane)
// ---------------------------------------------------------------

/// Churn-soak shape: short-lived producer connections, each sending a
/// few frames and vanishing.
const CHURN_WINDOWS: usize = 3;
const CHURN_CLIENTS: usize = 80;
const CHURN_LINES: usize = 3;

/// The frame script every churn run (wire or in-process) replays:
/// `CHURN_WINDOWS` windows of `CHURN_CLIENTS * CHURN_LINES` frames.
fn churn_frames() -> Vec<Vec<String>> {
    (0..CHURN_WINDOWS as u64)
        .map(|w| {
            (0..(CHURN_CLIENTS * CHURN_LINES) as u64)
                .map(|i| {
                    let ts = Timestamp::from_micros(w * 1_000_000 + 10_000 + i * 4_000);
                    let a = ((i * 7 + w) % 5) as i64;
                    render_frame("R", &Row::from_ints(&[a]), Some(ts)).expect("render")
                })
                .collect()
        })
        .collect()
}

fn churn_config(ingest: IngestPlane) -> ServerConfig {
    let mut catalog = Catalog::new();
    catalog.add_stream("R", Schema::from_pairs(&[("a", DataType::Int)]));
    let mut cfg = ServerConfig::new("SELECT a, COUNT(*) FROM R GROUP BY a", catalog);
    cfg.window = Some(VDuration::from_secs(1));
    cfg.synopsis = SynopsisConfig::Sparse { cell_width: 1 };
    // Above the whole script: these tests pin plane equivalence, so
    // triage must never shed — an in-process run offers a window's
    // batch in microseconds while the wire runs take milliseconds,
    // and a bounded queue would shed differently in each.
    cfg.channel_capacity = 2 * CHURN_WINDOWS * CHURN_CLIENTS * CHURN_LINES;
    cfg.metrics = MetricsRegistry::new();
    cfg.ingest = ingest;
    cfg
}

/// The in-process reference: the same frame script offered straight
/// to the handle — no sockets, no faults. Ground truth for what every
/// wire run must seal.
fn churn_reference() -> ServerReport {
    let cfg = churn_config(IngestPlane::default());
    let clock = Arc::new(VirtualClock::new());
    let server = Server::start(&cfg, None, clock.clone()).expect("reference server");
    let handle = server.handle();
    for (w, lines) in churn_frames().iter().enumerate() {
        clock.set(Timestamp::from_micros((w as u64 + 1) * 1_000_000));
        for line in lines {
            handle.offer_frame(line).expect("reference offer");
        }
    }
    server.shutdown().expect("reference shutdown")
}

fn churn_client(addr: SocketAddr) -> Client {
    Client::connect_with(
        addr,
        ClientConfig {
            read_timeout: Some(Duration::from_millis(40)),
            retry: RetryPolicy::none(),
        },
    )
    .expect("churn client connects")
}

/// `processed` through a fault plan that also chops and tears stats
/// probes: a dead probe connection just gets retried.
fn churn_processed(addr: SocketAddr) -> u64 {
    for _ in 0..200 {
        if let Ok(s) = fetch_stats_with(addr, Some(Duration::from_millis(250))) {
            return s.stream("R").expect("stream R").offered + s.parse_errors;
        }
    }
    panic!("stats endpoint unreachable through the fault plan");
}

/// Deliver one line with at-least-once intent and exactly-once
/// effect: send, await the server's processed count, and on a dead
/// connection (injected tear or clean disconnect) resend on a fresh
/// one. Safe precisely because of the readiness-layer contract the
/// unit tests pin: a torn mid-frame fragment is dropped *uncounted*,
/// so a resent line can never double-process.
fn send_churn_line(addr: SocketAddr, client: &mut Option<Client>, line: &str, expect: u64) {
    let overall = Instant::now();
    let mut sent = false;
    loop {
        assert!(
            overall.elapsed() < Duration::from_secs(30),
            "churn line {expect} never acknowledged"
        );
        if client.is_none() {
            *client = Some(churn_client(addr));
            sent = false;
        }
        if !sent {
            let _ = client.as_mut().expect("client").send_line(line);
            sent = true;
        }
        let deadline = Instant::now() + Duration::from_millis(200);
        while Instant::now() < deadline {
            if churn_processed(addr) >= expect {
                return;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        if churn_processed(addr) >= expect {
            return;
        }
        // No ack: probe liveness. EOF means the server dropped the
        // connection — retire it and resend. A read timeout means
        // it's alive and the ack is just slow; never resend on a
        // live connection.
        if matches!(client.as_mut().expect("client").recv_line(), Ok(None)) {
            *client = None;
        }
    }
}

/// The churn soak: hundreds of short-lived producers on the
/// event-loop plane under readiness-layer faults — chopped reads,
/// injected mid-frame disconnects, clean after-line disconnects —
/// with the harness resending unacknowledged lines. The sealed
/// windows must come out bit-identical to the in-process reference
/// run, and nothing may count against the error budget (chops are
/// lossless, torn fragments uncounted).
#[test]
fn connection_churn_with_readiness_faults_matches_the_reference() {
    let reference = churn_reference();

    let plan = {
        let mut p = FaultPlan::disabled().with_seed(7);
        p.read_chop_rate = 0.2; // lossless: only the chunking changes
        p.read_disconnect_rate = 0.006; // abrupt tears, fragment dropped
        p.disconnect_rate = 0.004; // clean close after a line
        p
    }
    // Two guaranteed tears early in the accept order.
    .inject_read_disconnect(4, 1)
    .inject_read_disconnect(9, 2);

    let mut cfg = churn_config(IngestPlane::EventLoop { reactors: 2 });
    cfg.fault = plan;
    let clock = Arc::new(VirtualClock::new());
    let server = Server::start(&cfg, Some("127.0.0.1:0"), clock.clone()).expect("server starts");
    let addr = server.addr().expect("bound address");

    let mut target = 0u64;
    for (w, lines) in churn_frames().iter().enumerate() {
        clock.set(Timestamp::from_micros((w as u64 + 1) * 1_000_000));
        let mut client: Option<Client> = None;
        for (i, line) in lines.iter().enumerate() {
            if i % CHURN_LINES == 0 {
                // Next short-lived producer: churn the connection.
                if let Some(c) = client.take() {
                    let _ = c.close();
                }
            }
            target += 1;
            send_churn_line(addr, &mut client, line, target);
        }
        if let Some(c) = client.take() {
            let _ = c.close();
        }
    }

    // The wire was genuinely hostile, and the reactor series are live.
    let metrics = {
        let mut m = None;
        for _ in 0..50 {
            if let Ok(text) = fetch_metrics(addr) {
                m = Some(text);
                break;
            }
        }
        m.expect("metrics scrape through the fault plan")
    };
    assert!(
        series_sum(
            &metrics,
            "dt_server_faults_injected_total{kind=\"read_chop\"}"
        ) > 0,
        "no chopped read ever fired"
    );
    assert!(
        series_sum(
            &metrics,
            "dt_server_faults_injected_total{kind=\"read_disconnect\"}"
        ) > 0,
        "no injected tear ever fired"
    );
    assert!(
        series_sum(&metrics, "dt_server_readiness_wakeups_total") > 0,
        "{metrics}"
    );
    assert!(metrics.contains("dt_server_reactor_conns"), "{metrics}");
    assert!(
        metrics.contains("dt_server_ingest_read_burst_bytes"),
        "{metrics}"
    );

    let stats = fetch_stats_with(addr, Some(Duration::from_secs(5))).expect("final stats");
    assert_eq!(stats.parse_errors, 0, "readiness faults must be lossless");
    assert_eq!(stats.stream("R").expect("stream R").offered, target);

    let report = server.shutdown().expect("graceful shutdown");
    let run = &report.reports[0];
    let ref_run = &reference.reports[0];
    assert_eq!(run.windows.len(), CHURN_WINDOWS);
    assert_eq!(ref_run.windows.len(), CHURN_WINDOWS);
    for w in 0..CHURN_WINDOWS {
        let (a, b) = (&run.windows[w], &ref_run.windows[w]);
        assert_eq!(a.window, b.window);
        assert!(!a.degraded && !b.degraded, "window {w} degraded");
        assert_eq!(a.arrived, b.arrived, "window {w}");
        assert_eq!(a.arrived, (CHURN_CLIENTS * CHURN_LINES) as u64);
        assert_eq!(a.kept, b.kept, "window {w}");
        assert_eq!(a.dropped, 0, "capacity rules out shedding");
        assert_eq!(
            a.groups(),
            b.groups(),
            "window {w}: churn run diverged from the in-process reference"
        );
    }
}

/// Fault-free A/B: the threaded and event-loop planes serve the same
/// wire workload and seal bit-identical windows — the shared
/// [`IngestSession`] makes the plane an implementation detail.
#[test]
fn ingest_planes_seal_identical_windows() {
    let mut reports = Vec::new();
    for ingest in [
        IngestPlane::Threaded,
        IngestPlane::EventLoop { reactors: 2 },
    ] {
        let cfg = churn_config(ingest);
        let clock = Arc::new(VirtualClock::new());
        let server =
            Server::start(&cfg, Some("127.0.0.1:0"), clock.clone()).expect("server starts");
        let addr = server.addr().expect("bound address");
        let mut clients: Vec<Client> = (0..3).map(|_| harness_client(addr)).collect();
        let mut sent = 0u64;
        for (w, lines) in churn_frames().iter().enumerate() {
            clock.set(Timestamp::from_micros((w as u64 + 1) * 1_000_000));
            for (i, line) in lines.iter().enumerate() {
                let k = i % clients.len();
                clients[k].send_line(line).expect("send");
                sent += 1;
            }
            poll("plane ingest", || processed(addr) >= sent);
        }
        for c in clients {
            let _ = c.close();
        }
        reports.push(server.shutdown().expect("graceful shutdown"));
    }
    let (t, e) = (&reports[0].reports[0], &reports[1].reports[0]);
    assert_eq!(t.windows.len(), e.windows.len());
    for (wt, we) in t.windows.iter().zip(&e.windows) {
        assert_eq!(wt.window, we.window);
        assert_eq!(wt.arrived, we.arrived, "window {}", wt.window);
        assert_eq!(wt.kept, we.kept, "window {}", wt.window);
        assert_eq!(wt.dropped, we.dropped, "window {}", wt.window);
        assert_eq!(wt.degraded, we.degraded, "window {}", wt.window);
        assert_eq!(
            wt.groups(),
            we.groups(),
            "planes diverged at window {}",
            wt.window
        );
    }
}

/// Sends retry with bounded reconnect-and-resend: when the server is
/// really gone the client performs exactly `max_retries` attempts,
/// counts them, and surfaces the final failure instead of hanging.
#[test]
fn client_retries_with_backoff_then_surfaces_the_failure() {
    let mut catalog = Catalog::new();
    catalog.add_stream("R", Schema::from_pairs(&[("a", DataType::Int)]));
    let mut cfg = ServerConfig::new("SELECT a, COUNT(*) FROM R GROUP BY a", catalog);
    cfg.window = Some(VDuration::from_secs(1));
    cfg.synopsis = SynopsisConfig::Sparse { cell_width: 1 };

    let clock = Arc::new(VirtualClock::new());
    let server = Server::start(&cfg, Some("127.0.0.1:0"), clock.clone()).expect("server starts");
    let addr = server.addr().expect("bound address");

    let reg = MetricsRegistry::new();
    let mut client = Client::connect_with(
        addr,
        ClientConfig {
            read_timeout: Some(Duration::from_secs(1)),
            retry: RetryPolicy {
                max_retries: 2,
                base_backoff: Duration::from_millis(5),
                max_backoff: Duration::from_millis(20),
                jitter_seed: 3,
            },
        },
    )
    .expect("connect")
    .with_metrics(&reg);
    client
        .send(
            "R",
            &Row::from_ints(&[1]),
            Some(Timestamp::from_micros(100_000)),
        )
        .expect("send while the server lives");

    server.shutdown().expect("server shuts down");

    // Writes to the dead socket may drain into OS buffers for a few
    // rounds; keep sending until the failure surfaces.
    let line = render_frame(
        "R",
        &Row::from_ints(&[1]),
        Some(Timestamp::from_micros(200_000)),
    )
    .expect("render");
    let mut failure = None;
    for _ in 0..200 {
        match client.send_line(&line) {
            Ok(()) => std::thread::sleep(Duration::from_millis(5)),
            Err(e) => {
                failure = Some(e);
                break;
            }
        }
    }
    let err = failure.expect("sends to a dead server must fail");
    assert!(
        !err.is_timeout(),
        "a refused connect is not a timeout: {err}"
    );
    assert_eq!(
        client.retries(),
        2,
        "exactly max_retries reconnect attempts"
    );
    assert!(
        reg.render_prometheus()
            .contains("dt_client_retries_total 2"),
        "{}",
        reg.render_prometheus()
    );
}
