//! Acceptance tests for the runtime query registry (ISSUE 6): queries
//! registered over the wire, fan-out correctness against single-query
//! baselines, the shared-triage invariant, register/unregister churn
//! while windows seal, and the HTTP 404/405 surface.
//!
//! Everything runs under a frozen [`VirtualClock`]: the runtime never
//! advances time on its own, so the tests decide exactly when windows
//! close and the tuple → window assignment is deterministic.

use dt_query::Catalog;
use dt_server::{
    fetch_metrics, fetch_stats, Client, MetricsRegistry, QuerySpec, Server, ServerConfig,
    VirtualClock,
};
use dt_synopsis::SynopsisConfig;
use dt_triage::{RunReport, ShedMode};
use dt_types::{DataType, Row, Schema, Timestamp, VDuration};
use std::io::{Read, Write};
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn poll(what: &str, mut ready: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while Instant::now() < deadline {
        if ready() {
            return;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    panic!("timed out waiting for {what}");
}

fn two_stream_catalog() -> Catalog {
    let mut c = Catalog::new();
    c.add_stream("R", Schema::from_pairs(&[("a", DataType::Int)]));
    c.add_stream("S", Schema::from_pairs(&[("b", DataType::Int)]));
    c
}

/// The deterministic two-window tuple schedule every comparison run
/// replays: values are skewed so coarse-synopsis estimates are
/// non-trivial, timestamps pace both windows.
fn feed_two_windows(client: &mut Client, clock: &Arc<VirtualClock>, addr: SocketAddr) {
    // Window 0: 12 tuples on R, 9 on S.
    for i in 0..12u64 {
        let ts = Timestamp::from_micros(100_000 + i * 50_000);
        let v = [0, 0, 0, 1, 1, 2, 3, 7][i as usize % 8];
        client
            .send("R", &Row::from_ints(&[v]), Some(ts))
            .expect("send R");
    }
    for i in 0..9u64 {
        let ts = Timestamp::from_micros(120_000 + i * 60_000);
        let v = [5, 5, 6, 8, 5, 6, 5, 9][i as usize % 8];
        client
            .send("S", &Row::from_ints(&[v]), Some(ts))
            .expect("send S");
    }
    poll("window 0 ingest", || {
        let s = fetch_stats(addr).unwrap();
        s.stream("R").unwrap().offered == 12 && s.stream("S").unwrap().offered == 9
    });
    clock.set(Timestamp::from_micros(1_200_000));
    poll("window 0 emitted", || {
        fetch_stats(addr).unwrap().windows_emitted >= 1
    });

    // Window 1: 8 tuples on R, 6 on S.
    for i in 0..8u64 {
        let ts = Timestamp::from_micros(1_300_000 + i * 60_000);
        let v = [2, 2, 3, 0, 2, 1, 9, 2][i as usize % 8];
        client
            .send("R", &Row::from_ints(&[v]), Some(ts))
            .expect("send R");
    }
    for i in 0..6u64 {
        let ts = Timestamp::from_micros(1_350_000 + i * 80_000);
        let v = [6, 7, 7, 5, 7, 6][i as usize % 6];
        client
            .send("S", &Row::from_ints(&[v]), Some(ts))
            .expect("send S");
    }
    poll("window 1 ingest", || {
        let s = fetch_stats(addr).unwrap();
        s.stream("R").unwrap().offered == 20 && s.stream("S").unwrap().offered == 15
    });
    clock.set(Timestamp::from_micros(2_200_000));
    poll("window 1 emitted", || {
        fetch_stats(addr).unwrap().windows_emitted >= 2
    });
}

fn base_config(sql: &str, mode: ShedMode) -> ServerConfig {
    let mut cfg = ServerConfig::new(sql, two_stream_catalog());
    cfg.window = Some(VDuration::from_secs(1));
    cfg.synopsis = SynopsisConfig::Sparse { cell_width: 5 };
    cfg.mode = mode;
    cfg
}

/// A window's merged groups as a canonical, bit-exact form: rows
/// (debug-printed) sorted, aggregate floats as raw bits.
fn canonical_groups(run: &RunReport, w: usize) -> Vec<(String, Vec<u64>)> {
    let mut out: Vec<(String, Vec<u64>)> = run.windows[w]
        .groups()
        .expect("aggregating query")
        .iter()
        .map(|(row, aggs)| {
            (
                format!("{row:?}"),
                aggs.iter().map(|a| a.to_bits()).collect(),
            )
        })
        .collect();
    out.sort();
    out
}

/// The three statements registered over the wire, spanning both
/// streams.
const WIRE_SQL: [&str; 3] = [
    "SELECT a, COUNT(*) FROM R GROUP BY a",
    "SELECT a, SUM(a) FROM R GROUP BY a",
    "SELECT b, SUM(b) FROM S GROUP BY b",
];

/// Run the multi-query server: one startup query plus [`WIRE_SQL`]
/// registered through the wire protocol; returns the per-query runs
/// for the wire-registered ids.
fn multi_query_run(mode: ShedMode) -> Vec<RunReport> {
    let cfg = base_config("SELECT a, COUNT(*) FROM R GROUP BY a", mode);
    let clock = Arc::new(VirtualClock::new());
    let server = Server::start(&cfg, Some("127.0.0.1:0"), clock.clone()).expect("server starts");
    let addr = server.addr().expect("bound address");
    let mut client = Client::connect(addr).expect("client connects");

    let mut ids = Vec::new();
    for sql in WIRE_SQL {
        ids.push(
            client
                .register_query(sql, None, None, None)
                .expect("wire registration"),
        );
    }
    assert_eq!(ids, vec![1, 2, 3], "dense ids after the startup query");
    let listed = client.list_queries().expect("list");
    assert_eq!(listed.len(), 4);
    assert!(listed.iter().all(|q| q.active));
    assert_eq!(listed[2].sql, WIRE_SQL[1]);

    feed_two_windows(&mut client, &clock, addr);
    client.close().expect("close");
    let mut report = server.shutdown().expect("shutdown");
    assert_eq!(report.reports.len(), 4);
    report.reports.drain(..1); // drop the startup query
    report.reports
}

/// Run one statement alone, in its own single-query server, over the
/// identical tuple schedule.
fn single_query_run(sql: &str, mode: ShedMode) -> RunReport {
    let cfg = base_config(sql, mode);
    let clock = Arc::new(VirtualClock::new());
    let server = Server::start(&cfg, Some("127.0.0.1:0"), clock.clone()).expect("server starts");
    let addr = server.addr().expect("bound address");
    let mut client = Client::connect(addr).expect("client connects");
    feed_two_windows(&mut client, &clock, addr);
    client.close().expect("close");
    let mut report = server.shutdown().expect("shutdown");
    report.reports.remove(0)
}

/// Acceptance (a): every wire-registered query's merged output is
/// bit-identical to running the same statement alone at the same
/// input — on the exact path (no shedding) *and* on the estimate
/// path (summarize-only sheds every tuple into the shared synopses
/// deterministically).
#[test]
fn wire_registered_queries_match_single_query_runs() {
    for mode in [ShedMode::DataTriage, ShedMode::SummarizeOnly] {
        let multi = multi_query_run(mode);
        for (run, sql) in multi.iter().zip(WIRE_SQL) {
            let solo = single_query_run(sql, mode);
            let ids: Vec<u64> = run.windows.iter().map(|w| w.window).collect();
            assert_eq!(ids, vec![0, 1], "{mode:?} {sql}: both windows, in order");
            assert_eq!(solo.windows.len(), run.windows.len());
            for w in 0..run.windows.len() {
                assert_eq!(
                    canonical_groups(run, w),
                    canonical_groups(&solo, w),
                    "{mode:?} window {w} of {sql}: shared-pipeline output \
                     must be bit-identical to the single-query run"
                );
            }
        }
    }
}

fn synopsis_inserts(metrics_text: &str, stream: &str) -> u64 {
    let needle = format!("dt_triage_synopsis_inserts_total{{stream=\"{stream}\"}} ");
    metrics_text
        .lines()
        .find_map(|l| l.strip_prefix(&needle))
        .unwrap_or_else(|| panic!("no synopsis-insert series for {stream}:\n{metrics_text}"))
        .trim()
        .parse()
        .expect("counter value")
}

/// Acceptance (b): per-stream synopsis-insert work is independent of
/// how many queries are attached — triage is paid once per stream.
#[test]
fn synopsis_insert_work_is_independent_of_query_count() {
    let run = |extra_queries: usize| -> u64 {
        let mut cfg = base_config(
            "SELECT a, COUNT(*) FROM R GROUP BY a",
            ShedMode::SummarizeOnly,
        );
        cfg.metrics = MetricsRegistry::new();
        let clock = Arc::new(VirtualClock::new());
        let server =
            Server::start(&cfg, Some("127.0.0.1:0"), clock.clone()).expect("server starts");
        let addr = server.addr().expect("bound address");
        let handle = server.handle();
        for _ in 0..extra_queries {
            handle
                .register(QuerySpec::new("SELECT a, SUM(a) FROM R GROUP BY a"))
                .expect("register");
        }
        let mut client = Client::connect(addr).expect("client connects");
        feed_two_windows(&mut client, &clock, addr);
        let inserts = synopsis_inserts(&fetch_metrics(addr).expect("scrape"), "R");
        client.close().expect("close");
        server.shutdown().expect("shutdown");
        inserts
    };
    let alone = run(0);
    let crowded = run(3);
    assert!(alone > 0, "summarize-only folds every tuple into synopses");
    assert_eq!(
        alone, crowded,
        "synopsis inserts per stream must not scale with attached queries"
    );
}

/// Satellite: registering and unregistering concurrently with window
/// sealing neither deadlocks nor loses windows, and a removed query's
/// results stop cleanly at a window boundary.
#[test]
fn concurrent_churn_while_windows_seal() {
    let mut cfg = base_config("SELECT a, COUNT(*) FROM R GROUP BY a", ShedMode::DataTriage);
    cfg.window = Some(VDuration::from_secs(1));
    let clock = Arc::new(VirtualClock::new());
    let server = Server::start(&cfg, Some("127.0.0.1:0"), clock.clone()).expect("server starts");
    let addr = server.addr().expect("bound address");

    const WINDOWS: u64 = 5;
    const CYCLES: usize = 8;
    let churners: Vec<_> = (0..2)
        .map(|_| {
            std::thread::spawn(move || {
                let mut c = Client::connect(addr).expect("churn client connects");
                for _ in 0..CYCLES {
                    let id = c
                        .register_query("SELECT a, SUM(a) FROM R GROUP BY a", None, None, None)
                        .expect("churn register");
                    std::thread::sleep(Duration::from_millis(1));
                    c.unregister_query(id).expect("churn unregister");
                }
            })
        })
        .collect();

    let mut client = Client::connect(addr).expect("client connects");
    for w in 0..WINDOWS {
        for i in 0..10u64 {
            let ts = Timestamp::from_micros(w * 1_000_000 + 100_000 + i * 50_000);
            client
                .send("R", &Row::from_ints(&[(i % 3) as i64]), Some(ts))
                .expect("send");
        }
        let offered = (w + 1) * 10;
        poll("ingest", || {
            fetch_stats(addr).unwrap().stream("R").unwrap().offered == offered
        });
        clock.set(Timestamp::from_micros((w + 1) * 1_000_000 + 200_000));
        poll("window sealed", || {
            fetch_stats(addr).unwrap().windows_emitted > w
        });
    }
    for t in churners {
        t.join().expect("churn thread panicked");
    }
    let report = server.shutdown().expect("shutdown");

    // The long-lived startup query saw every window, in order — churn
    // lost nothing.
    let ids: Vec<u64> = report.reports[0].windows.iter().map(|w| w.window).collect();
    assert_eq!(ids, (0..WINDOWS).collect::<Vec<_>>());
    assert_eq!(report.queries.len(), 1 + 2 * CYCLES);

    // Every churned query's results stop cleanly at its boundaries:
    // contiguous window ids inside [active_from, active_to).
    for q in &report.queries[1..] {
        let to = q.active_to.expect("churned queries all unregistered");
        assert!(q.active_from <= to);
        let run = &report.reports[q.id as usize];
        let got: Vec<u64> = run.windows.iter().map(|w| w.window).collect();
        let expect: Vec<u64> = (q.active_from..to.min(WINDOWS)).collect();
        assert_eq!(
            got, expect,
            "query {} must cover exactly its registered span",
            q.id
        );
        assert_eq!(q.windows_emitted, expect.len() as u64);
    }
}

/// Compile and command errors come back over the wire as structured
/// error replies — actionable (line/column) and non-fatal to the
/// connection.
#[test]
fn wire_errors_are_structured_and_nonfatal() {
    let cfg = base_config("SELECT a, COUNT(*) FROM R GROUP BY a", ShedMode::DataTriage);
    let clock = Arc::new(VirtualClock::new());
    let server = Server::start(&cfg, Some("127.0.0.1:0"), clock).expect("server starts");
    let addr = server.addr().expect("bound address");
    let mut client = Client::connect(addr).expect("client connects");

    let err = client
        .register_query("SELECT a,\n COUNT( FROM R GROUP BY a", None, None, None)
        .expect_err("bad SQL must fail");
    assert!(err.to_string().contains("line 2"), "{err}");
    let err = client
        .register_query("SELECT z, COUNT(*) FROM R GROUP BY z", None, None, None)
        .expect_err("unknown column must fail");
    assert!(err.to_string().contains('z'), "{err}");
    let err = client.unregister_query(99).expect_err("unknown id");
    assert!(err.to_string().contains("99"), "{err}");

    // The connection survived all three rejections, and none of them
    // burned the frame-parse error budget.
    let listed = client.list_queries().expect("list still works");
    assert_eq!(listed.len(), 1);
    assert_eq!(fetch_stats(addr).unwrap().parse_errors, 0);
    client.close().expect("close");
    server.shutdown().expect("shutdown");
}

fn raw_request(addr: SocketAddr, first_line: &str) -> String {
    let mut s = std::net::TcpStream::connect(addr).expect("connect");
    s.write_all(format!("{first_line}\r\n\r\n").as_bytes())
        .expect("request");
    s.shutdown(std::net::Shutdown::Write).expect("shutdown");
    let mut reply = String::new();
    s.read_to_string(&mut reply).expect("reply");
    reply
}

/// Satellite: the HTTP-ish probe surface answers unknown paths with
/// 404 and non-GET methods with 405 instead of treating them as
/// broken tuple frames.
#[test]
fn http_probe_answers_404_and_405() {
    let cfg = base_config("SELECT a, COUNT(*) FROM R GROUP BY a", ShedMode::DataTriage);
    let clock = Arc::new(VirtualClock::new());
    let server = Server::start(&cfg, Some("127.0.0.1:0"), clock).expect("server starts");
    let addr = server.addr().expect("bound address");

    let reply = raw_request(addr, "GET /nope HTTP/1.0");
    assert!(reply.starts_with("HTTP/1.0 404 Not Found\r\n"), "{reply}");
    for method in [
        "POST /stats HTTP/1.0",
        "PUT /metrics HTTP/1.0",
        "DELETE / HTTP/1.0",
    ] {
        let reply = raw_request(addr, method);
        assert!(
            reply.starts_with("HTTP/1.0 405 Method Not Allowed\r\n"),
            "{method}: {reply}"
        );
        assert!(reply.contains("only GET"), "{reply}");
    }
    // HTTP rejections never count against frame parsing.
    assert_eq!(fetch_stats(addr).unwrap().parse_errors, 0);
    server.shutdown().expect("shutdown");
}
