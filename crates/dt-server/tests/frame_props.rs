//! Property tests for the NDJSON frame codec and the incremental
//! line assembler.
//!
//! The ingest boundary is the one place the server touches bytes it
//! does not control, so the codec's contract is checked adversarially:
//! `parse ∘ render` is the identity on every well-formed frame,
//! `parse_frame` never panics on arbitrary input (including every
//! prefix of a valid frame — the torn-write shapes the fault injector
//! produces), and the [`FrameAssembler`] yields the same line stream
//! no matter how reads split the bytes.

use dt_server::{parse_frame, render_frame, FrameAssembler};
use dt_types::{Row, Timestamp};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Rendering a frame and parsing it back reproduces the frame.
    /// Values stay inside ±2^53: JSON numbers travel as doubles, so
    /// that is the codec's documented exact-integer range.
    #[test]
    fn render_parse_roundtrip(
        name_sel in 0usize..4,
        values in prop::collection::vec(-(1i64 << 53)..(1i64 << 53), 1..6),
        ts in prop::option::of(0u64..10_000_000_000),
    ) {
        let stream = ["R", "S", "packets", "a_long_stream_name"][name_sel];
        let row = Row::from_ints(&values);
        let ts = ts.map(Timestamp::from_micros);
        let line = render_frame(stream, &row, ts).unwrap();
        let frame = parse_frame(&line).unwrap();
        prop_assert_eq!(frame.stream.as_str(), stream);
        prop_assert_eq!(frame.row, row);
        prop_assert_eq!(frame.ts, ts);
    }

    /// `parse_frame` returns Ok or Err but never panics, on fully
    /// arbitrary byte soup fed through the same lossy UTF-8 path the
    /// server uses.
    #[test]
    fn parse_never_panics_on_garbage(bytes in prop::collection::vec(any::<u8>(), 0..200)) {
        let text = String::from_utf8_lossy(&bytes);
        let _ = parse_frame(&text);
    }

    /// Every proper prefix of a valid frame is rejected without a
    /// panic — exactly the torn-write corruption the fault plan
    /// injects.
    #[test]
    fn truncated_frames_error_cleanly(
        values in prop::collection::vec(any::<i64>(), 1..4),
        ts in 0u64..1_000_000_000,
        cut_frac in 0.0f64..1.0,
    ) {
        let row = Row::from_ints(&values);
        let line = render_frame("R", &row, Some(Timestamp::from_micros(ts))).unwrap();
        let cut = ((line.len() as f64) * cut_frac) as usize;
        let prefix = &line[..cut.min(line.len().saturating_sub(1))];
        prop_assert!(parse_frame(prefix).is_err(), "prefix parsed: {:?}", prefix);
    }

    /// The assembler is split-invariant: any chunking of the same
    /// bytes yields the same lines and the same trailing fragment.
    #[test]
    fn assembler_is_split_invariant(
        lines in prop::collection::vec(
            prop::collection::vec(32u8..127, 0..20),
            0..10,
        ),
        trailing in prop::collection::vec(32u8..127, 0..10),
        split_seed in any::<u64>(),
    ) {
        let mut bytes: Vec<u8> = Vec::new();
        for l in &lines {
            // Interior newlines can't occur (range excludes b'\n').
            bytes.extend_from_slice(l);
            bytes.push(b'\n');
        }
        bytes.extend_from_slice(&trailing);

        // Reference: one giant push.
        let mut whole = FrameAssembler::new();
        whole.push(&bytes);
        let mut want = Vec::new();
        while let Some(l) = whole.next_line() {
            want.push(l);
        }
        let want_partial = whole.take_partial();

        // Candidate: pseudo-random splits derived from the seed.
        let mut asm = FrameAssembler::new();
        let mut got = Vec::new();
        let mut rest = &bytes[..];
        let mut state = split_seed | 1;
        while !rest.is_empty() {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let take = 1 + (state as usize) % rest.len().min(7);
            let (chunk, tail) = rest.split_at(take.min(rest.len()));
            asm.push(chunk);
            while let Some(l) = asm.next_line() {
                got.push(l);
            }
            rest = tail;
        }
        let got_partial = asm.take_partial();

        prop_assert_eq!(&got, &want);
        prop_assert_eq!(got_partial, want_partial);
        prop_assert_eq!(want.len(), lines.len());
    }

    /// A stream of rendered frames split at arbitrary read boundaries
    /// — including zero-length chunks, which a readiness-layer read
    /// may legally deliver — reassembles and decodes bit-identically
    /// to a one-shot decode of the whole stream. This is the
    /// event-loop plane's core invariant: chopped reads
    /// (`FaultPlan::read_chop`) change only the chunking, never the
    /// decoded frames.
    #[test]
    fn chopped_frame_stream_decodes_identically(
        frames in prop::collection::vec(
            (prop::collection::vec(-(1i64 << 53)..(1i64 << 53), 1..4), 0u64..1_000_000),
            1..12,
        ),
        cuts in prop::collection::vec(any::<usize>(), 0..40),
        zeros in prop::collection::vec(0usize..40, 0..6),
    ) {
        let mut bytes = Vec::new();
        let mut rendered = Vec::new();
        for (values, ts) in &frames {
            let row = Row::from_ints(values);
            let ts = Timestamp::from_micros(*ts);
            let line = render_frame("R", &row, Some(ts)).unwrap();
            bytes.extend_from_slice(line.as_bytes());
            bytes.push(b'\n');
            rendered.push((row, ts));
        }

        // Reference: one-shot decode of the whole byte stream.
        let mut whole = FrameAssembler::new();
        whole.push(&bytes);
        let mut want = Vec::new();
        while let Some(l) = whole.next_line() {
            want.push(l);
        }
        prop_assert!(whole.take_partial().is_none());

        // Candidate: cut the stream anywhere (1..=n chunks), and
        // sprinkle zero-length reads between chunks.
        let mut points: Vec<usize> = cuts.iter().map(|i| i % (bytes.len() + 1)).collect();
        points.push(0);
        points.push(bytes.len());
        points.sort_unstable();
        points.dedup();
        let mut asm = FrameAssembler::new();
        let mut got = Vec::new();
        for (k, pair) in points.windows(2).enumerate() {
            if zeros.contains(&k) {
                asm.push(&[]); // a read that returned no bytes
            }
            asm.push(&bytes[pair[0]..pair[1]]);
            while let Some(l) = asm.next_line() {
                got.push(l);
            }
        }
        prop_assert_eq!(&got, &want);
        prop_assert!(asm.take_partial().is_none());
        // And the decoded frames match the rendered inputs exactly.
        prop_assert_eq!(got.len(), rendered.len());
        for (line, (row, ts)) in got.iter().zip(&rendered) {
            let f = parse_frame(line).unwrap();
            prop_assert_eq!(&f.row, row);
            prop_assert_eq!(f.ts, Some(*ts));
        }
    }
}
