//! The adaptive delay controller inside the live server (DESIGN.md
//! §11): a frozen [`VirtualClock`] makes the run deterministic — the
//! paced worker cannot consume, so ingest depth grows monotonically
//! and the controller's seeded threshold is the only thing deciding
//! who gets shed.
//!
//! The channel is deliberately much larger than the derived threshold:
//! without the controller this burst would not shed a single tuple
//! (compare the pre-burst phase of the loopback test), so every shed
//! observed here is the controller's doing.

use dt_query::Catalog;
use dt_server::{fetch_metrics, MetricsRegistry, Server, ServerConfig, VirtualClock};
use dt_synopsis::SynopsisConfig;
use dt_triage::DelayConstraint;
use dt_types::{DataType, Row, Schema, Timestamp, Tuple, VDuration};
use std::io::{Read, Write};
use std::sync::Arc;

const BURST: u64 = 40;
const CHANNEL: usize = 64;
/// 10 ms constraint against the default 1.02 ms/tuple cost hint:
/// threshold = floor((10_000 − 20)/1_020) − 1 = 8.
const SEEDED_THRESHOLD: u64 = 8;

fn raw_get(addr: std::net::SocketAddr, path: &str) -> String {
    let mut s = std::net::TcpStream::connect(addr).expect("connect");
    s.write_all(format!("GET {path} HTTP/1.0\r\n\r\n").as_bytes())
        .expect("request");
    s.shutdown(std::net::Shutdown::Write).expect("shutdown");
    let mut reply = String::new();
    s.read_to_string(&mut reply).expect("reply");
    reply
}

#[test]
fn delay_constraint_sheds_below_channel_capacity() {
    let mut catalog = Catalog::new();
    catalog.add_stream("R", Schema::from_pairs(&[("a", DataType::Int)]));
    let mut cfg = ServerConfig::new("SELECT a, COUNT(*) FROM R GROUP BY a", catalog);
    cfg.window = Some(VDuration::from_secs(1));
    cfg.synopsis = SynopsisConfig::Sparse { cell_width: 1 };
    cfg.channel_capacity = CHANNEL;
    cfg.metrics = MetricsRegistry::new();
    cfg.delay = Some(DelayConstraint::from_millis(10).expect("constraint"));

    let clock = Arc::new(VirtualClock::new());
    let server = Server::start(&cfg, Some("127.0.0.1:0"), clock).expect("server starts");
    let addr = server.addr().expect("bound address");
    let handle = server.handle();
    let r = handle.stream_index("R").expect("stream R");

    // The controller's gauges exist from startup, seeded from the cost
    // hint — before a single tuple arrives.
    let idle = fetch_metrics(addr).expect("idle scrape");
    assert!(
        idle.contains(&format!(
            "dt_triage_threshold{{stream=\"R\"}} {SEEDED_THRESHOLD}"
        )),
        "{idle}"
    );
    assert!(idle.contains("dt_triage_estimated_delay_ms"), "{idle}");
    assert!(idle.contains("dt_triage_shed_fraction"), "{idle}");

    // Offer a burst timestamped far ahead of the frozen clock: the
    // worker stays parked, depth only grows, and the outcome of every
    // offer is a pure function of the depth at that instant.
    for i in 0..BURST {
        let t = Tuple::new(
            Row::from_ints(&[(i % 3) as i64]),
            Timestamp::from_micros(100_000 + i * 1_000),
        );
        handle.offer(r, t).expect("offer");
    }

    let stats = raw_get(addr, "/stats");
    // /stats now carries a controllers block with the live state.
    assert!(stats.contains("\"controllers\""), "{stats}");
    assert!(stats.contains("\"threshold\""), "{stats}");
    assert!(stats.contains("\"estimated_delay_ms\""), "{stats}");
    assert!(stats.contains("\"shed_fraction\""), "{stats}");

    let report = server.shutdown().expect("graceful shutdown");
    let s = &report.streams[0];
    assert_eq!(s.offered, BURST);
    assert_eq!(s.kept + s.shed, BURST, "every tuple kept or shed");
    // The channel (64 slots) never filled; the controller did all the
    // shedding at its 8-tuple threshold. The 25% headroom ramp may
    // keep one extra tuple around the boundary, never more.
    assert!(
        s.kept <= SEEDED_THRESHOLD + 1,
        "kept {} exceeds the controller threshold",
        s.kept
    );
    assert!(
        s.shed >= BURST - SEEDED_THRESHOLD - 1,
        "controller shed too little ({})",
        s.shed
    );
    // Shed tuples still land in the dropped synopsis: the single
    // drained window accounts for all forty.
    let run = &report.reports[0];
    assert_eq!(run.totals.arrived, BURST);
    assert_eq!(run.totals.dropped, s.shed);
    let total: f64 = run.windows[0]
        .groups()
        .expect("aggregating query")
        .values()
        .map(|aggs| aggs[0])
        .sum();
    assert_eq!(total, BURST as f64, "estimate still counts shed tuples");
}

#[test]
fn no_delay_constraint_means_no_controller_surface() {
    let mut catalog = Catalog::new();
    catalog.add_stream("R", Schema::from_pairs(&[("a", DataType::Int)]));
    let mut cfg = ServerConfig::new("SELECT a, COUNT(*) FROM R GROUP BY a", catalog);
    cfg.window = Some(VDuration::from_secs(1));
    cfg.synopsis = SynopsisConfig::Sparse { cell_width: 1 };
    cfg.metrics = MetricsRegistry::new();

    let clock = Arc::new(VirtualClock::new());
    let server = Server::start(&cfg, Some("127.0.0.1:0"), clock).expect("server starts");
    let addr = server.addr().expect("bound address");

    let metrics = fetch_metrics(addr).expect("scrape");
    assert!(
        !metrics.contains("dt_triage_threshold"),
        "controller gauges must not exist without a constraint"
    );
    assert!(
        !raw_get(addr, "/stats").contains("\"controllers\""),
        "/stats must not grow a controllers block without a constraint"
    );
    server.shutdown().expect("shutdown");
}
