//! The acceptance test: a full server on a loopback socket, driven
//! deterministically by a virtual clock.
//!
//! A real multi-threaded server, a real TCP client, and yet a
//! reproducible run: nothing in the runtime advances a
//! [`VirtualClock`], so the test decides when windows close and when
//! the engine is allowed to consume. Freezing the clock during the
//! burst stops the paced worker cold, which makes channel overflow —
//! i.e. triage shedding — a certainty rather than a race.

use dt_query::Catalog;
use dt_server::{
    fetch_metrics, fetch_stats, Client, MetricsRegistry, Server, ServerConfig, VirtualClock,
};
use dt_synopsis::SynopsisConfig;
use dt_triage::RunReport;
use dt_types::{DataType, Row, Schema, Timestamp, VDuration};
use std::io::{Read, Write};
use std::sync::Arc;
use std::time::{Duration, Instant};

const CAPACITY: usize = 64;
const BURST: usize = 300;

fn poll(what: &str, mut ready: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while Instant::now() < deadline {
        if ready() {
            return;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    panic!("timed out waiting for {what}");
}

/// Sum of the first aggregate (COUNT(*)) across a window's groups.
fn total_count(report: &RunReport, w: usize) -> f64 {
    report.windows[w]
        .groups()
        .expect("aggregating query")
        .values()
        .map(|aggs| aggs[0])
        .sum()
}

#[test]
fn loopback_burst_sheds_then_drains_gracefully() {
    let mut catalog = Catalog::new();
    catalog.add_stream("R", Schema::from_pairs(&[("a", DataType::Int)]));
    let mut cfg = ServerConfig::new("SELECT a, COUNT(*) FROM R GROUP BY a", catalog);
    cfg.window = Some(VDuration::from_secs(1));
    cfg.channel_capacity = CAPACITY;
    cfg.synopsis = SynopsisConfig::Sparse { cell_width: 1 };
    cfg.grace = VDuration::from_millis(100);

    let clock = Arc::new(VirtualClock::new());
    let server = Server::start(&cfg, Some("127.0.0.1:0"), clock.clone()).expect("server starts");
    let addr = server.addr().expect("bound address");
    let mut client = Client::connect(addr).expect("client connects");

    // Phase 1 — pre-burst: 10 tuples inside window 0, well under the
    // channel capacity. Nothing may be shed.
    for i in 0..10u64 {
        let ts = Timestamp::from_micros(100_000 + i * 40_000);
        client
            .send("R", &Row::from_ints(&[(i % 3) as i64]), Some(ts))
            .expect("send");
    }
    poll("pre-burst ingest", || {
        fetch_stats(addr).unwrap().stream("R").unwrap().offered == 10
    });
    let s = fetch_stats(addr).unwrap();
    assert_eq!(
        s.stream("R").unwrap().shed,
        0,
        "no shedding before the burst"
    );
    assert_eq!(s.stream("R").unwrap().kept, 10);

    // Close window 0: move the clock past its end plus the grace
    // period and wait for the merger to emit it.
    clock.set(Timestamp::from_micros(1_200_000));
    poll("window 0 emitted", || {
        fetch_stats(addr).unwrap().windows_emitted >= 1
    });

    // Phase 2 — burst: 300 tuples inside window 1, all timestamped
    // ahead of the (now frozen) clock. The paced worker cannot consume
    // them, so at most `capacity` fit in the channel plus one parked
    // tuple — everything else overflows into triage shedding.
    for i in 0..BURST as u64 {
        let ts = Timestamp::from_micros(1_300_000 + i * 1_990);
        client
            .send("R", &Row::from_ints(&[(i % 3) as i64]), Some(ts))
            .expect("send");
    }
    poll("burst ingest", || {
        fetch_stats(addr).unwrap().stream("R").unwrap().offered == 10 + BURST as u64
    });
    let s = fetch_stats(addr).unwrap().stream("R").unwrap().clone();
    assert!(
        s.shed >= (BURST - CAPACITY - 1) as u64,
        "burst must overflow the bounded channel (shed {})",
        s.shed
    );
    assert_eq!(
        s.kept + s.shed,
        10 + BURST as u64,
        "every tuple kept or shed"
    );

    // Close window 1.
    clock.set(Timestamp::from_micros(2_200_000));
    poll("window 1 emitted", || {
        fetch_stats(addr).unwrap().windows_emitted >= 2
    });

    // Phase 3 — tail: 5 tuples in window 2, plus two bad lines the
    // server must count (not crash on). The clock never advances past
    // window 2; only graceful shutdown may emit it.
    client.send_line("this is not a frame").expect("send");
    client
        .send_line(r#"{"stream":"NOPE","row":[1]}"#)
        .expect("send");
    for i in 0..5u64 {
        let ts = Timestamp::from_micros(2_300_000 + i * 50_000);
        client
            .send("R", &Row::from_ints(&[7]), Some(ts))
            .expect("send");
    }
    poll("tail ingest", || {
        fetch_stats(addr).unwrap().stream("R").unwrap().offered == 15 + BURST as u64
    });
    assert_eq!(fetch_stats(addr).unwrap().parse_errors, 2);

    client.close().expect("client close");
    let report = server.shutdown().expect("graceful shutdown");

    // (a) Every window emitted, strictly in order, exact + estimate
    // merged. The cell-width-1 sparse synopsis loses nothing for
    // COUNT, so the burst window's merged total must be exact even
    // though most of its tuples were shed.
    assert_eq!(report.reports.len(), 1);
    let run = &report.reports[0];
    let ids: Vec<u64> = run.windows.iter().map(|w| w.window).collect();
    assert_eq!(ids, vec![0, 1, 2], "windows in order, none missing");
    assert_eq!(total_count(run, 0), 10.0);
    assert_eq!(total_count(run, 1), BURST as f64);
    assert_eq!(total_count(run, 2), 5.0);

    // (b) Shedding happened exactly where the burst was.
    assert_eq!(run.windows[0].dropped, 0);
    assert!(run.windows[1].dropped > 0, "burst window must shed");
    assert_eq!(run.windows[2].dropped, 0);
    assert_eq!(
        run.windows[1].kept + run.windows[1].dropped,
        BURST as u64,
        "burst tuples all accounted for"
    );

    // (c) Graceful shutdown drained the in-flight window without any
    // clock help, and the final counters line up.
    assert_eq!(report.windows_emitted, 3);
    let r = &report.streams[0];
    assert_eq!(r.name, "R");
    assert_eq!(r.offered, 315);
    assert_eq!(r.offered, r.kept + r.shed);
    assert_eq!(run.totals.arrived, 315);
    assert_eq!(run.totals.dropped, r.shed);
}

/// One raw HTTP-ish GET, headers included.
fn raw_get(addr: std::net::SocketAddr, path: &str) -> String {
    let mut s = std::net::TcpStream::connect(addr).expect("connect");
    s.write_all(format!("GET {path} HTTP/1.0\r\n\r\n").as_bytes())
        .expect("request");
    s.shutdown(std::net::Shutdown::Write).expect("shutdown");
    let mut reply = String::new();
    s.read_to_string(&mut reply).expect("reply");
    reply
}

#[test]
fn metrics_endpoint_serves_prometheus_exposition() {
    let mut catalog = Catalog::new();
    catalog.add_stream("R", Schema::from_pairs(&[("a", DataType::Int)]));
    let mut cfg = ServerConfig::new("SELECT a, COUNT(*) FROM R GROUP BY a", catalog);
    cfg.window = Some(VDuration::from_secs(1));
    cfg.synopsis = SynopsisConfig::Sparse { cell_width: 1 };
    cfg.metrics = MetricsRegistry::new();

    let clock = Arc::new(VirtualClock::new());
    let server = Server::start(&cfg, Some("127.0.0.1:0"), clock.clone()).expect("server starts");
    let addr = server.addr().expect("bound address");

    // An idle server already exposes the full series set, zero-valued.
    let idle = fetch_metrics(addr).expect("idle scrape");
    assert!(idle.contains("dt_server_ingest_frames_total 0"), "{idle}");
    assert!(
        idle.contains("dt_server_queue_depth{stream=\"R\"} 0"),
        "{idle}"
    );

    let mut client = Client::connect(addr).expect("client connects");
    for i in 0..20u64 {
        let ts = Timestamp::from_micros(100_000 + i * 10_000);
        client
            .send("R", &Row::from_ints(&[(i % 3) as i64]), Some(ts))
            .expect("send");
    }
    poll("ingest", || {
        fetch_stats(addr).unwrap().stream("R").unwrap().offered == 20
    });
    clock.set(Timestamp::from_micros(1_200_000));
    poll("window 0 emitted", || {
        fetch_stats(addr).unwrap().windows_emitted >= 1
    });

    let text = fetch_metrics(addr).expect("scrape");
    // Acceptance surface: queue-depth gauges, per-mode shed counters,
    // and a window-execution latency histogram with quantiles.
    assert!(
        text.contains("# TYPE dt_server_queue_depth gauge"),
        "{text}"
    );
    assert!(
        text.contains("dt_server_queue_depth{stream=\"R\"}"),
        "{text}"
    );
    assert!(
        text.contains(
            "dt_triage_stream_tuples_total{stream=\"R\",mode=\"data-triage\",outcome=\"kept\"} 20"
        ),
        "{text}"
    );
    assert!(
        text.contains("# TYPE dt_engine_window_exec_us histogram"),
        "{text}"
    );
    assert!(
        text.contains("dt_engine_window_exec_us_bucket{le=\"+Inf\"} 1"),
        "{text}"
    );
    assert!(text.contains("dt_engine_window_exec_us_p99"), "{text}");
    assert!(text.contains("dt_server_windows_emitted_total 1"), "{text}");
    assert!(text.contains("dt_server_ingest_frames_total 20"), "{text}");

    // Satellite: explicit Content-Type headers on both endpoints.
    let stats_raw = raw_get(addr, "/stats");
    assert!(stats_raw.starts_with("HTTP/1.0 200 OK\r\n"), "{stats_raw}");
    assert!(
        stats_raw.contains("Content-Type: application/json\r\n"),
        "{stats_raw}"
    );
    let metrics_raw = raw_get(addr, "/metrics");
    assert!(
        metrics_raw.contains("Content-Type: text/plain; version=0.0.4\r\n"),
        "{metrics_raw}"
    );
    assert!(
        raw_get(addr, "/nope").starts_with("HTTP/1.0 404"),
        "unknown path 404s"
    );

    client.close().expect("client close");
    let report = server.shutdown().expect("graceful shutdown");
    // Satellite: the drain-time snapshot survives shutdown.
    let snap = report.obs.as_ref().expect("snapshot flushed at drain");
    assert!(snap
        .find("dt_server_ingest_frames_total", &[])
        .is_some_and(|m| m.value == dt_obs::MetricValue::Counter(20)));
    assert!(snap.find("dt_server_window_latency_us", &[]).is_some());
}

#[test]
fn summarize_only_sheds_everything_but_still_answers() {
    let mut catalog = Catalog::new();
    catalog.add_stream("R", Schema::from_pairs(&[("a", DataType::Int)]));
    let mut cfg = ServerConfig::new("SELECT a, COUNT(*) FROM R GROUP BY a", catalog);
    cfg.window = Some(VDuration::from_secs(1));
    cfg.synopsis = SynopsisConfig::Sparse { cell_width: 1 };
    cfg.mode = dt_triage::ShedMode::SummarizeOnly;

    let clock = Arc::new(VirtualClock::new());
    let server = Server::start(&cfg, None, clock.clone()).expect("server starts");
    let handle = server.handle();
    let r = handle.stream_index("R").expect("stream R");
    for i in 0..8u64 {
        let t = dt_types::Tuple::new(
            Row::from_ints(&[(i % 2) as i64]),
            Timestamp::from_micros(i * 1_000),
        );
        handle.offer(r, t).expect("offer");
    }
    let report = server.shutdown().expect("shutdown");
    let run = &report.reports[0];
    assert_eq!(report.streams[0].shed, 8, "summarize-only sheds everything");
    assert_eq!(report.streams[0].kept, 0);
    assert_eq!(
        total_count(run, 0),
        8.0,
        "…but the estimate still counts them"
    );
}
