//! The sharded server plane (DESIGN.md §15): a `--shards k` worker
//! group must produce **bit-identical** reports to the classic
//! single-worker plane, and under adversarial single-key skew the
//! idle workers must steal batches without losing or duplicating a
//! single tuple.

use dt_query::Catalog;
use dt_server::{MetricsRegistry, Server, ServerConfig, VirtualClock};
use dt_synopsis::SynopsisConfig;
use dt_types::{DataType, Row, Schema, Timestamp, ToJson, Tuple, VDuration};
use std::sync::Arc;
use std::time::{Duration, Instant};

const QUERY: &str = "SELECT a, COUNT(*) FROM R GROUP BY a";

fn catalog() -> Catalog {
    let mut c = Catalog::new();
    c.add_stream("R", Schema::from_pairs(&[("a", DataType::Int)]));
    c
}

fn config(shards: usize) -> ServerConfig {
    let mut cfg = ServerConfig::new(QUERY, catalog());
    cfg.window = Some(VDuration::from_secs(1));
    cfg.synopsis = SynopsisConfig::Sparse { cell_width: 5 };
    cfg.channel_capacity = 4096;
    cfg.shards = shards;
    // Unpaced, with the virtual clock parked at zero: workers consume
    // immediately, the watermark never advances, so nothing is ever
    // late and every window seals in the shutdown drain — the run is
    // deterministic end to end.
    cfg.pace_by_timestamp = false;
    cfg
}

/// Run the same in-process workload through a `shards`-wide worker
/// group and render the final report.
fn run_report(shards: usize) -> String {
    let cfg = config(shards);
    let clock = Arc::new(VirtualClock::new());
    let server = Server::start(&cfg, None, clock).expect("server starts");
    let handle = server.handle();
    let r = handle.stream_index("R").expect("stream R");
    // 600 tuples over three windows, keys spread over 7 groups —
    // keyed routing spreads them across the group's shards.
    for i in 0..600u64 {
        let t = Tuple::new(
            Row::from_ints(&[(i % 7) as i64]),
            Timestamp::from_micros(i * 5_000),
        );
        handle.offer(r, t).expect("offer");
    }
    let report = server.shutdown().expect("graceful shutdown");
    let run = &report.reports[0];
    assert_eq!(run.totals.arrived, 600);
    assert_eq!(run.totals.kept, 600, "capacity holds the whole run");
    assert_eq!(run.totals.dropped, 0);
    assert!(run.windows.iter().all(|w| !w.degraded));
    report.to_json().render_pretty()
}

/// A 4-shard group's report — windows, per-group aggregates, synopsis
/// masses, counters — is byte-identical to the single-worker plane's.
#[test]
fn sharded_report_is_bit_identical_to_single_worker() {
    let single = run_report(1);
    let sharded = run_report(4);
    assert_eq!(single, sharded, "shards=4 diverged from shards=1");
}

/// Adversarial single-key skew routes every tuple to one shard; the
/// three idle workers steal batches off it. Whatever the steal
/// schedule, nothing is lost or duplicated: every offered tuple is
/// either kept (and lands in exactly one window's rows) or shed into
/// a dropped synopsis, and the per-window counts partition arrivals.
#[test]
fn steals_under_skew_conserve_every_tuple() {
    const N: u64 = 30_000;
    let mut cfg = config(4);
    cfg.metrics = MetricsRegistry::new();
    let clock = Arc::new(VirtualClock::new());
    let server = Server::start(&cfg, Some("127.0.0.1:0"), clock).expect("server starts");
    let addr = server.addr().expect("bound address");
    let handle = server.handle();
    let r = handle.stream_index("R").expect("stream R");
    for i in 0..N {
        // One hot key: every tuple hashes to the same shard.
        let t = Tuple::new(Row::from_ints(&[42]), Timestamp::from_micros(i * 100));
        handle.offer(r, t).expect("offer");
    }
    // The thieves poll every 500µs; with a deep hot queue they steal
    // long before the burst ends, but give CI scheduling a margin.
    let deadline = Instant::now() + Duration::from_secs(30);
    while !steal_happened(addr) {
        assert!(Instant::now() < deadline, "no steal observed under skew");
        std::thread::sleep(Duration::from_millis(2));
    }
    let report = server.shutdown().expect("graceful shutdown");
    let s = &report.streams[0];
    assert_eq!(s.offered, N);
    assert_eq!(s.kept + s.shed, N, "every tuple kept or shed, never both");
    let run = &report.reports[0];
    let (mut kept, mut dropped, mut rows) = (0u64, 0u64, 0u64);
    for w in &run.windows {
        assert_eq!(w.arrived, w.kept + w.dropped, "window {}", w.window);
        assert!(!w.degraded);
        kept += w.kept;
        dropped += w.dropped;
        rows += w
            .groups()
            .expect("aggregating query")
            .values()
            .map(|aggs| aggs[0] as u64)
            .sum::<u64>();
    }
    assert_eq!(kept, s.kept, "no window lost or duplicated a batch");
    assert_eq!(dropped, s.shed);
    // COUNT(*) over the estimates still accounts for every arrival —
    // kept rows exactly, shed mass through the dropped synopses.
    assert_eq!(rows, N, "aggregate mass accounts for every tuple");
}

/// Did any worker record a nonzero steal counter yet?
fn steal_happened(addr: std::net::SocketAddr) -> bool {
    dt_server::fetch_metrics(addr)
        .expect("metrics scrape")
        .lines()
        .filter(|l| l.starts_with("dt_server_steal_items_total"))
        .filter_map(|l| l.rsplit(' ').next()?.parse::<u64>().ok())
        .sum::<u64>()
        > 0
}
