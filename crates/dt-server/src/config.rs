//! Server configuration.

use crate::fault::FaultPlan;
use dt_engine::CostModel;
use dt_obs::MetricsRegistry;
use dt_query::{parse_select, Catalog, Planner, QueryPlan};
use dt_synopsis::SynopsisConfig;
use dt_triage::{DelayConstraint, QueryExecutor, ShedMode};
use dt_types::{DtError, DtResult, VDuration, WindowSpec};

/// Which socket plane serves TCP ingest connections (in-process
/// [`crate::Source`] ingest is unaffected — it calls the handle
/// directly).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IngestPlane {
    /// One blocking OS thread per connection. The original plane,
    /// kept for A/B comparison (`--ingest threaded`); degrades past a
    /// few thousand clients because every idle connection wakes on
    /// its 50 ms read timeout.
    Threaded,
    /// Readiness-driven nonblocking event loop: connections are
    /// hashed to a fixed pool of reactor threads at accept, each
    /// running an edge-triggered epoll loop over per-connection frame
    /// assemblers (see DESIGN.md §14). `reactors: 0` sizes the pool
    /// from the machine (`min(available_parallelism, 4)`).
    ///
    /// Requires Linux; on other targets the server silently falls
    /// back to [`IngestPlane::Threaded`].
    EventLoop {
        /// Reactor-thread pool size; `0` = auto.
        reactors: usize,
    },
}

impl Default for IngestPlane {
    fn default() -> Self {
        IngestPlane::EventLoop { reactors: 0 }
    }
}

impl IngestPlane {
    /// Parse the `--ingest` flag value.
    pub fn parse(s: &str) -> DtResult<IngestPlane> {
        match s {
            "threaded" => Ok(IngestPlane::Threaded),
            "eventloop" => Ok(IngestPlane::EventLoop { reactors: 0 }),
            other => Err(DtError::config(format!(
                "unknown ingest plane '{other}' (want threaded | eventloop)"
            ))),
        }
    }

    /// The concrete reactor-pool size this plane resolves to
    /// (`0` for the threaded plane).
    pub fn resolved_reactors(&self) -> usize {
        match *self {
            IngestPlane::Threaded => 0,
            IngestPlane::EventLoop { reactors: 0 } => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
                .min(4),
            IngestPlane::EventLoop { reactors } => reactors,
        }
    }
}

/// Everything a [`crate::Server`] needs to start.
///
/// The triage queue of the paper's Fig. 1 is realized as each
/// stream's *bounded ingest channel*: `channel_capacity` plays the
/// role of the queue capacity, and a full channel is the overflow
/// signal. Victim selection is necessarily the incoming tuple (the
/// channel's interior is owned by the worker), i.e. the `Newest` drop
/// policy; the simulation pipeline remains the place to study
/// alternative policies.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// The continuous queries to serve (at least one). All must share
    /// one window width.
    pub queries: Vec<String>,
    /// Stream catalog the queries are planned against.
    pub catalog: Catalog,
    /// Shedding methodology (`DataTriage` by default).
    pub mode: ShedMode,
    /// Synopsis structure for kept/dropped summaries.
    pub synopsis: SynopsisConfig,
    /// When set, overrides every stream's window width (the same knob
    /// the rate sweeps use).
    pub window: Option<VDuration>,
    /// Per-stream bounded channel capacity — the triage queue bound.
    pub channel_capacity: usize,
    /// How far behind `Clock::now()` the seal watermark trails, so
    /// stragglers still land in their window.
    pub grace: VDuration,
    /// Gate worker processing on tuple timestamps: a worker does not
    /// consume a tuple before `Clock::now()` reaches its timestamp.
    /// With a monotonic clock and live arrivals this is a no-op (the
    /// timestamp just passed); with replayed traces it makes the
    /// engine lag — and therefore shed — exactly as the recorded
    /// rates demand, and with a virtual clock it lets tests freeze
    /// the engine to force overflow deterministically.
    pub pace_by_timestamp: bool,
    /// Observability registry. Disabled by default; pass
    /// [`MetricsRegistry::new`] to record and expose `/metrics`.
    pub metrics: MetricsRegistry,
    /// Deterministic fault-injection schedule. Disabled by default;
    /// the chaos suite passes [`FaultPlan::seeded`] plans.
    pub fault: FaultPlan,
    /// How many rejected frames an ingest connection tolerates before
    /// the server answers with a structured error frame and closes it.
    /// Each bad line still increments `parse_errors` and skips only
    /// that line; the budget bounds how long an evidently-broken
    /// sender can spam the parser.
    pub conn_error_budget: u64,
    /// The merger's sealer watchdog: when a window stays unsealed this
    /// long (virtual time) past its end plus `grace`, the merger
    /// force-seals it from whatever contributions have arrived and
    /// flags the result degraded. `None` disables the watchdog (a
    /// stalled worker then stalls emission indefinitely).
    pub seal_watchdog: Option<VDuration>,
    /// Optional delay constraint driving per-stream adaptive
    /// controllers ([`dt_triage::SharedController`]): ingest sheds
    /// once the channel backlog could no longer drain within the
    /// constraint, *before* the hard channel bound is hit. `None`
    /// (the default) keeps channel overflow as the only shed signal.
    pub delay: Option<DelayConstraint>,
    /// Cost model priming the controllers' EWMA cost estimates before
    /// real per-tuple measurements arrive (the workers feed measured
    /// costs in as they process). Only read when `delay` is set.
    pub cost_hint: CostModel,
    /// Which socket plane serves TCP connections (event loop by
    /// default; `Threaded` keeps the original thread-per-connection
    /// path for A/B runs).
    pub ingest: IngestPlane,
    /// Worker-group size per stream (DESIGN.md §15): each stream's
    /// triage is partitioned across this many shard workers, each
    /// with its own bounded queue and synopsis pair, with batch
    /// work-stealing under skew. `1` (the default) is the classic
    /// single-worker plane; sealed output is bit-identical at every
    /// shard count. Values above 1 require a synopsis kind that
    /// supports partition merging (everything except `Wavelet` and
    /// `AdaptiveSparse`).
    pub shards: usize,
}

impl ServerConfig {
    /// A Data Triage server for one query with the paper's defaults:
    /// sparse cell-width-10 synopses, channel capacity 100, 100 ms
    /// grace, timestamp pacing on.
    pub fn new(sql: impl Into<String>, catalog: Catalog) -> Self {
        ServerConfig {
            queries: vec![sql.into()],
            catalog,
            mode: ShedMode::DataTriage,
            synopsis: SynopsisConfig::default_sparse(),
            window: None,
            channel_capacity: 100,
            grace: VDuration::from_millis(100),
            pace_by_timestamp: true,
            metrics: MetricsRegistry::disabled(),
            fault: FaultPlan::disabled(),
            conn_error_budget: 32,
            seal_watchdog: Some(VDuration::from_secs(5)),
            delay: None,
            cost_hint: CostModel::default(),
            ingest: IngestPlane::default(),
            shards: 1,
        }
    }

    /// Parse and plan every query, apply the window override, and
    /// compile the shared window-close executor.
    pub fn compile(&self) -> DtResult<QueryExecutor> {
        if self.queries.is_empty() {
            return Err(DtError::config("server needs at least one query"));
        }
        if self.channel_capacity == 0 {
            return Err(DtError::config(
                "channel capacity must be >= 1 (a zero-capacity channel would shed everything)",
            ));
        }
        if self.conn_error_budget == 0 {
            return Err(DtError::config(
                "connection error budget must be >= 1 (a zero budget closes every connection \
                 on its first frame)",
            ));
        }
        if self.shards == 0 {
            return Err(DtError::config(
                "shards must be >= 1 (one worker per stream is the minimum)",
            ));
        }
        if self.shards > 1 && self.mode.uses_synopses() && !self.synopsis.supports_merge() {
            return Err(DtError::config(format!(
                "synopsis kind {:?} does not support sharded merging; use shards = 1 \
                 or a mergeable synopsis (sparse, mhist, reservoir)",
                self.synopsis
            )));
        }
        let plans: Vec<QueryPlan> = self
            .queries
            .iter()
            .map(|sql| {
                let stmt = parse_select(sql)?;
                let mut plan = Planner::new(&self.catalog).plan(&stmt)?;
                if let Some(width) = self.window {
                    let spec = WindowSpec::new(width)?;
                    for s in &mut plan.streams {
                        s.window = spec;
                    }
                }
                Ok(plan)
            })
            .collect::<DtResult<_>>()?;
        Ok(QueryExecutor::new(plans, self.mode)?.with_metrics(&self.metrics))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dt_types::{DataType, Schema};

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.add_stream("R", Schema::from_pairs(&[("a", DataType::Int)]));
        c
    }

    #[test]
    fn compiles_with_window_override() {
        let mut cfg = ServerConfig::new("SELECT a, COUNT(*) FROM R GROUP BY a", catalog());
        cfg.window = Some(VDuration::from_secs(2));
        let exec = cfg.compile().unwrap();
        assert_eq!(exec.spec().width(), VDuration::from_secs(2));
        assert_eq!(exec.streams().len(), 1);
    }

    #[test]
    fn rejects_zero_capacity_and_empty_queries() {
        let mut cfg = ServerConfig::new("SELECT a, COUNT(*) FROM R GROUP BY a", catalog());
        cfg.channel_capacity = 0;
        assert!(cfg.compile().is_err());
        let mut cfg = ServerConfig::new("x", catalog());
        cfg.queries.clear();
        assert!(cfg.compile().is_err());
    }

    #[test]
    fn rejects_zero_error_budget() {
        let mut cfg = ServerConfig::new("SELECT a, COUNT(*) FROM R GROUP BY a", catalog());
        cfg.conn_error_budget = 0;
        assert!(cfg.compile().is_err());
    }

    #[test]
    fn defaults_are_fault_free() {
        let cfg = ServerConfig::new("SELECT a, COUNT(*) FROM R GROUP BY a", catalog());
        assert!(cfg.fault.is_disabled());
        assert_eq!(cfg.conn_error_budget, 32);
        assert!(cfg.seal_watchdog.is_some());
        assert_eq!(cfg.ingest, IngestPlane::EventLoop { reactors: 0 });
    }

    #[test]
    fn ingest_plane_parses_and_resolves() {
        assert_eq!(
            IngestPlane::parse("threaded").unwrap(),
            IngestPlane::Threaded
        );
        assert_eq!(
            IngestPlane::parse("eventloop").unwrap(),
            IngestPlane::EventLoop { reactors: 0 }
        );
        assert!(IngestPlane::parse("fibers").is_err());
        assert_eq!(IngestPlane::Threaded.resolved_reactors(), 0);
        assert_eq!(
            IngestPlane::EventLoop { reactors: 3 }.resolved_reactors(),
            3
        );
        let auto = IngestPlane::EventLoop { reactors: 0 }.resolved_reactors();
        assert!((1..=4).contains(&auto), "auto pool size {auto}");
    }

    #[test]
    fn shard_validation_gates_count_and_synopsis_kind() {
        let mut cfg = ServerConfig::new("SELECT a, COUNT(*) FROM R GROUP BY a", catalog());
        assert_eq!(cfg.shards, 1, "single worker per stream by default");
        cfg.shards = 0;
        assert!(cfg.compile().is_err());
        cfg.shards = 4;
        assert!(cfg.compile().is_ok(), "sparse synopses merge");
        cfg.synopsis = SynopsisConfig::Wavelet {
            budget: 16,
            domain: 64,
        };
        assert!(cfg.compile().is_err(), "wavelets cannot merge partitions");
        cfg.shards = 1;
        assert!(cfg.compile().is_ok(), "unsharded wavelets still run");
    }

    #[test]
    fn rejects_bad_sql() {
        let cfg = ServerConfig::new("SELECT FROM nowhere", catalog());
        assert!(cfg.compile().is_err());
    }
}
