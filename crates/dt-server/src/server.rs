//! The runtime: ingest, workers, merger, control plane.
//!
//! [`Server::start`] compiles the configured queries, spawns one
//! triage worker per physical stream, a window merger, and (when an
//! address is given) a TCP acceptor for NDJSON tuple frames. The
//! [`ServerHandle`] is the cheap, cloneable ingest facade shared by
//! connection threads and in-process [`crate::Source`]s;
//! [`Server::shutdown`] runs the graceful drain and returns the final
//! [`ServerReport`].

use crate::config::ServerConfig;
use crate::fault::FaultPlan;
use crate::frame::{parse_frame, parse_incoming, Command, FrameAssembler, Incoming};
use crate::ingest::{IngestSession, LineVerdict};
use crate::obs::{ServerObs, WorkerObs, FAULT_PANIC, FAULT_STALL};
use crate::stats::query_info_json;
use crate::stats::{ServerReport, ServerStats};
use crate::worker::{run_worker, Ctl, SeqTuple, TriageFactory, WorkerCtx};
use crossbeam::channel::{unbounded, Receiver, Sender};
use dt_obs::MetricsRegistry;
use dt_registry::{QueryId, QueryInfo, QueryRegistry, QuerySpec, RegistryConfig};
use dt_synopsis::SynopsisConfig;
use dt_triage::{
    merge_sealed, ControllerGauges, DelayConstraint, FairController, RunReport, RunTotals,
    SealedWindow, ShardQueues, ShardRouter, SharedController, ShedDecision, ShedMode, SynPair,
    WindowResult,
};
use dt_types::{json, Json, ToJson};
use dt_types::{Clock, DtError, DtResult, Timestamp, Tuple, VDuration, WindowId, WindowSpec};
use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// How often the merger wakes to check the clock, and how often
/// blocked connection reads re-check the stop flag.
const MERGER_POLL: Duration = Duration::from_millis(2);
const CONN_READ_TIMEOUT: Duration = Duration::from_millis(50);

/// Real time the watchdog waits after a watermark broadcast before it
/// may force-seal. A healthy worker answers a watermark in
/// microseconds; under a virtual clock a single `set` can make the
/// (virtual) watchdog deadline pass in the same instant the watermark
/// first goes out, and this guard keeps the watchdog from racing the
/// healthy seal already in flight.
const WATCHDOG_REAL_GRACE: Duration = Duration::from_millis(200);

enum MergerMsg {
    Stop,
}

/// State shared by every ingest path.
struct Inner {
    /// The query registry: the physical stream table and every
    /// registered query's compiled plan (see `dt-registry`).
    registry: Arc<QueryRegistry>,
    stats: Arc<ServerStats>,
    clock: Arc<dyn Clock>,
    mode: ShedMode,
    metrics: MetricsRegistry,
    obs: ServerObs,
    /// One shard-queue group per stream — the bounded triage queues
    /// the worker group pops (and steals) from. With `shards == 1`
    /// this is the classic single bounded queue.
    queues: Vec<Arc<ShardQueues<SeqTuple>>>,
    /// Per-stream shard routers: hash on the query's group key, or
    /// round-robin for keyless plans.
    routers: Vec<ShardRouter>,
    /// Per-stream ingest sequence counters. Every offered tuple —
    /// kept or shed — is stamped *before* shard routing, so the merge
    /// step can restore arrival order deterministically regardless of
    /// partitioning or stealing (DESIGN.md §15).
    seqs: Vec<AtomicU64>,
    /// Worker-group size per stream.
    shards: usize,
    /// Control lanes, one per (stream, shard), flat-indexed
    /// `stream * shards + shard`.
    ctl_tx: Vec<Sender<Ctl>>,
    /// One admission controller per stream, always present. Without a
    /// server-wide [`ServerConfig::delay`] and without tenant lanes
    /// the base controller is unconstrained — it keeps everything and
    /// channel overflow stays the only shed signal. Runtime
    /// registrations tighten it and add weighted-fair lanes.
    admission: Vec<FairController>,
    stop: AtomicBool,
    /// The active fault-injection schedule (disabled in production).
    fault: FaultPlan,
    /// Rejected frames tolerated per ingest connection before it is
    /// closed with a structured error frame.
    error_budget: u64,
    /// Ingest-connection ids, drawn lazily at a connection's first
    /// data line (HTTP probes never draw one, keeping the ids — and
    /// thus the fault schedule — deterministic for test harnesses).
    conn_seq: AtomicU64,
}

/// Cloneable ingest facade onto a running server.
#[derive(Clone)]
pub struct ServerHandle {
    inner: Arc<Inner>,
}

impl ServerHandle {
    /// The physical stream index for a catalog stream name.
    pub fn stream_index(&self, name: &str) -> Option<usize> {
        self.inner
            .registry
            .streams()
            .iter()
            .position(|s| s.name == name)
    }

    /// Live counters.
    pub fn stats(&self) -> &Arc<ServerStats> {
        &self.inner.stats
    }

    /// The server's clock.
    pub fn clock(&self) -> &Arc<dyn Clock> {
        &self.inner.clock
    }

    /// The (single) window spec every query shares.
    pub fn spec(&self) -> WindowSpec {
        self.inner.registry.spec()
    }

    /// Register a continuous query at runtime; it first appears in
    /// the next emitted window. Rebuilds the affected streams'
    /// fair-shedding lanes before returning.
    pub fn register(&self, spec: QuerySpec) -> DtResult<QueryId> {
        let id = self.inner.registry.register(spec)?;
        self.sync_lanes();
        Ok(id)
    }

    /// Detach query `id` at the next window boundary, returning the
    /// first window it no longer covers.
    pub fn unregister(&self, id: QueryId) -> DtResult<WindowId> {
        let boundary = self.inner.registry.unregister(id)?;
        self.sync_lanes();
        Ok(boundary)
    }

    /// Frozen views of every query ever registered, in id order.
    pub fn queries(&self) -> Vec<QueryInfo> {
        self.inner.registry.list()
    }

    /// Re-derive each stream's tenant lanes from the active query
    /// set. Lanes are derived state, so a failure here is impossible
    /// by construction (names are unique, weights validated at
    /// registration); `expect` documents that invariant.
    fn sync_lanes(&self) {
        for (p, fc) in self.inner.admission.iter().enumerate() {
            fc.set_lanes(&self.inner.registry.lanes_for_stream(p))
                .expect("registry-derived lanes are valid");
        }
    }

    /// Offer one tuple to a stream. This is the triage step: the
    /// tuple either enters the stream's bounded channel (kept) or,
    /// when the channel is full, is rerouted to the worker's control
    /// lane as a shed victim — it still reaches the window's dropped
    /// synopsis, it just skips exact processing.
    pub fn offer(&self, stream: usize, tuple: Tuple) -> DtResult<()> {
        self.offer_tagged(stream, tuple, None)
    }

    /// [`ServerHandle::offer`] with a tenant lane tag: the stream's
    /// [`FairController`] charges the shed decision to the tenant's
    /// lane (untagged tuples land in the catch-all lane).
    pub fn offer_tagged(&self, stream: usize, tuple: Tuple, tenant: Option<&str>) -> DtResult<()> {
        let inner = &*self.inner;
        let shared = inner
            .registry
            .streams()
            .get(stream)
            .ok_or_else(|| DtError::config(format!("no stream with index {stream}")))?;
        if tuple.arity() != shared.schema.arity() {
            return Err(DtError::schema(format!(
                "tuple arity {} does not match stream '{}' arity {}",
                tuple.arity(),
                shared.name,
                shared.schema.arity()
            )));
        }
        let counters = inner.stats.stream(stream);
        counters.offered.fetch_add(1, Ordering::SeqCst);
        // Stamp the per-stream ingest sequence *before* routing: kept
        // and shed tuples alike carry it, so the seal-time merge can
        // re-sort rows into arrival order whatever shard they landed
        // on (or were stolen to).
        let seq = inner.seqs[stream].fetch_add(1, Ordering::SeqCst);
        let shard = inner.routers[stream].route(&tuple.row);
        let ctl = &inner.ctl_tx[stream * inner.shards + shard];
        let shed = |t: Tuple| -> DtResult<()> {
            ctl.send(Ctl::Shed(t, seq))
                .map_err(|_| DtError::engine("stream worker is gone"))?;
            counters.shed.fetch_add(1, Ordering::SeqCst);
            Ok(())
        };
        match inner.mode {
            // Summarize-only never touches the engine at all.
            ShedMode::SummarizeOnly => shed(tuple),
            ShedMode::DropOnly | ShedMode::DataTriage => {
                // The adaptive controller sheds *before* the hard
                // channel bound: once the backlog could no longer
                // drain within the delay constraint, the tuple goes
                // straight to the control lane as a victim. The fair
                // controller charges the decision to the tenant's
                // lane when lanes are configured.
                let fc = &inner.admission[stream];
                if fc.decide(tenant) == ShedDecision::Shed {
                    return shed(tuple);
                }
                // The gauge is bumped *before* the push so a worker's
                // decrement can never observe a tuple whose increment
                // hasn't landed yet.
                let depth = &inner.obs.queue_depth[stream];
                depth.add(1);
                match inner.queues[stream].push(shard, (tuple, seq)) {
                    Ok(()) => {
                        fc.base().on_enqueue();
                        counters.kept.fetch_add(1, Ordering::SeqCst);
                        Ok(())
                    }
                    Err((t, _)) => {
                        // The shard's queue is full — this tuple is the
                        // overflow victim (`Newest` policy, as ever).
                        depth.sub(1);
                        shed(t)
                    }
                }
            }
        }
    }

    /// Offer a frame line exactly as the TCP path does: resolve the
    /// stream by name, stamp a missing timestamp with `Clock::now()`.
    pub fn offer_frame(&self, line: &str) -> DtResult<()> {
        self.inner.obs.ingest_frames.inc();
        self.inner.obs.ingest_bytes.add(line.len() as u64);
        let frame = parse_frame(line)?;
        self.offer_parsed(frame)
    }

    fn offer_parsed(&self, frame: crate::frame::Frame) -> DtResult<()> {
        let stream = self
            .stream_index(&frame.stream)
            .ok_or_else(|| DtError::config(format!("unknown stream '{}'", frame.stream)))?;
        let tenant = frame.tenant.clone();
        let tuple = frame.into_tuple(self.inner.clock.now());
        self.offer_tagged(stream, tuple, tenant.as_deref())
    }

    /// Ingest one wire line: a tuple frame (no reply) or a control
    /// command (`Ok(Some(reply))` — the caller writes the reply line
    /// back on the connection). An `Err` means the line was
    /// malformed or unroutable and counts against the connection's
    /// error budget; a well-formed command that *fails* (bad SQL,
    /// unknown id) is still answered, as `{"error":…}`.
    pub fn ingest_line(&self, line: &str) -> DtResult<Option<String>> {
        self.inner.obs.ingest_frames.inc();
        self.inner.obs.ingest_bytes.add(line.len() as u64);
        match parse_incoming(line)? {
            Incoming::Tuple(frame) => self.offer_parsed(frame).map(|()| None),
            Incoming::Control(cmd) => Ok(Some(self.control(cmd).render())),
        }
    }

    /// Execute one control command, producing the reply document.
    fn control(&self, cmd: Command) -> Json {
        let err = |e: DtError| json::obj(vec![("error", Json::Str(e.to_string()))]);
        match cmd {
            Command::Register {
                sql,
                tenant,
                delay_ms,
                weight,
            } => {
                let delay = match delay_ms.map(DelayConstraint::from_millis).transpose() {
                    Ok(d) => d,
                    Err(e) => return err(e),
                };
                let mut spec = QuerySpec::new(sql);
                spec.tenant = tenant;
                spec.delay = delay;
                if let Some(w) = weight {
                    spec = spec.weight(w);
                }
                match self.register(spec) {
                    Ok(id) => json::obj(vec![
                        ("registered", (id as i64).to_json()),
                        (
                            "active_from",
                            (self.inner.registry.emit_cursor() as i64).to_json(),
                        ),
                    ]),
                    Err(e) => err(e),
                }
            }
            Command::Unregister { id } => match self.unregister(id) {
                Ok(boundary) => json::obj(vec![
                    ("unregistered", (id as i64).to_json()),
                    ("active_to", (boundary as i64).to_json()),
                ]),
                Err(e) => err(e),
            },
            Command::List => json::obj(vec![(
                "queries",
                Json::Arr(self.queries().iter().map(query_info_json).collect()),
            )]),
        }
    }

    // ---- crate-internal accessors for the ingest planes ----------

    /// Server-side instruments.
    pub(crate) fn obs(&self) -> &ServerObs {
        &self.inner.obs
    }

    /// The active fault-injection schedule.
    pub(crate) fn fault_plan(&self) -> &FaultPlan {
        &self.inner.fault
    }

    /// Rejected frames tolerated per connection.
    pub(crate) fn error_budget(&self) -> u64 {
        self.inner.error_budget
    }

    /// Draw the next ingest-connection id (lazily, at a connection's
    /// first data line, so HTTP probes never consume one).
    pub(crate) fn next_conn_id(&self) -> u64 {
        self.inner.conn_seq.fetch_add(1, Ordering::SeqCst)
    }

    /// True once shutdown has begun.
    pub(crate) fn stopping(&self) -> bool {
        self.inner.stop.load(Ordering::SeqCst)
    }

    /// The `/stats` JSON body (newline-terminated).
    pub(crate) fn stats_body(&self) -> String {
        format!("{}\n", render_stats(&self.inner).render())
    }

    /// The `/metrics` Prometheus text exposition.
    pub(crate) fn metrics_body(&self) -> String {
        self.inner.metrics.render_prometheus()
    }

    /// Account one rejected ingest frame (malformed or unroutable).
    pub(crate) fn note_rejected_frame(&self) {
        let inner = &*self.inner;
        inner.obs.ingest_errors.inc();
        inner.obs.frames_rejected.inc();
        inner.stats.parse_errors.fetch_add(1, Ordering::SeqCst);
    }
}

/// A running server. Dropping it without [`Server::shutdown`] detaches
/// the threads; call `shutdown` to drain and collect the report.
pub struct Server {
    handle: ServerHandle,
    addr: Option<SocketAddr>,
    workers: Vec<JoinHandle<DtResult<()>>>,
    merger: Option<JoinHandle<DtResult<ServerReport>>>,
    merger_tx: Sender<MergerMsg>,
    acceptor: Option<JoinHandle<()>>,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
    /// The event-loop plane's reactor pool (empty under `Threaded` or
    /// when serving no socket).
    #[cfg(target_os = "linux")]
    reactors: Arc<Vec<crate::reactor::Reactor>>,
}

impl Server {
    /// Compile `cfg` and start the runtime on `clock`. With
    /// `addr = Some("127.0.0.1:0")` an NDJSON TCP listener is bound
    /// (port 0 picks a free port — read it back with
    /// [`Server::addr`]); with `None` the server is in-process only.
    pub fn start(
        cfg: &ServerConfig,
        addr: Option<&str>,
        clock: Arc<dyn Clock>,
    ) -> DtResult<Server> {
        // Compile the configured queries the classic way first: this
        // validates the whole config (capacity, budget, SQL) and
        // discovers the shared window spec the registry enforces.
        let exec = cfg.compile()?;
        let spec = exec.spec();
        drop(exec);
        let registry = Arc::new(QueryRegistry::new(
            RegistryConfig {
                catalog: cfg.catalog.clone(),
                mode: cfg.mode,
                spec,
                override_windows: cfg.window.is_some(),
            },
            cfg.metrics.clone(),
        )?);
        // The configured queries become registrations 0..n, so their
        // results keep their positions in the final report.
        for sql in &cfg.queries {
            registry.register(QuerySpec::new(sql.clone()))?;
        }
        let names: Vec<String> = registry.streams().iter().map(|s| s.name.clone()).collect();
        let stats = Arc::new(ServerStats::new(&names));
        // Register every instrument up front: a scrape against an idle
        // server still returns the full (zero-valued) series set.
        let shards = cfg.shards.max(1);
        let obs = ServerObs::register(&cfg.metrics, &names, shards);

        // One admission controller per stream, unconditionally — a
        // runtime registration may tighten the constraint later. The
        // EWMAs are primed from the cost hint so the threshold is
        // meaningful from the first tuple; the workers replace the
        // hint with measured costs as they process. Without a
        // constraint the base controller keeps everything.
        let constraint = cfg.delay.filter(|_| cfg.mode.uses_engine());
        let syn_us = cfg.cost_hint.synopsis_insert_time.micros() as f64;
        let main_us = cfg.cost_hint.service_time.micros() as f64
            + if cfg.mode == ShedMode::DataTriage {
                syn_us
            } else {
                0.0
            };
        let triage_us = if cfg.mode.uses_synopses() {
            syn_us
        } else {
            0.0
        };
        let admission: Vec<FairController> = names
            .iter()
            .map(|name| {
                let mut base = SharedController::with_constraint(constraint, main_us, triage_us);
                // The Prometheus gauge surface stays keyed to the
                // configured constraint: an unconstrained server
                // exports no dt_triage_* series (runtime-registered
                // constraints still run and report through /stats).
                if constraint.is_some() {
                    base = base.with_gauges(ControllerGauges::register(&cfg.metrics, name));
                }
                FairController::new(Arc::new(base), constraint)
            })
            .collect();

        let mut queues = Vec::new();
        let mut routers = Vec::new();
        let mut ctl_tx = Vec::new();
        let mut workers = Vec::new();
        let (sealed_tx, sealed_rx) = unbounded::<SealedWindow>();
        for (i, s) in registry.streams().iter().enumerate() {
            // The whole group drains one backlog: the controller's
            // threshold scales with the number of drains.
            admission[i].base().set_drains(shards);
            // Partition on the active queries' group key when there is
            // exactly one; round-robin otherwise (DESIGN.md §15).
            routers.push(ShardRouter::new(shards, registry.group_key_col(i)));
            let q = Arc::new(
                ShardQueues::new(shards, cfg.channel_capacity)
                    .with_gauges(obs.shard_depth[i].clone()),
            );
            for k in 0..shards {
                let (ctx_tx, crx) = unbounded::<Ctl>();
                let factory = TriageFactory {
                    stream: i,
                    shard: k,
                    arity: s.schema.arity(),
                    mode: cfg.mode,
                    synopsis: cfg.synopsis,
                    spec,
                    metrics: cfg.metrics.clone(),
                    name: s.name.clone(),
                };
                let wctx = WorkerCtx {
                    stream: i,
                    shard: k,
                    factory,
                    queues: Arc::clone(&q),
                    ctl_rx: crx,
                    sealed_tx: sealed_tx.clone(),
                    clock: Arc::clone(&clock),
                    pace: cfg.pace_by_timestamp,
                    spec,
                    stats: Arc::clone(&stats),
                    obs: WorkerObs::register(
                        &cfg.metrics,
                        &s.name,
                        k,
                        shards,
                        obs.queue_depth[i].clone(),
                    ),
                    controller: Some(Arc::clone(admission[i].base())),
                    fault: cfg.fault.clone(),
                    fault_panic_ctr: obs.faults_injected[FAULT_PANIC].clone(),
                    fault_stall_ctr: obs.faults_injected[FAULT_STALL].clone(),
                };
                // Single-shard groups keep the classic thread name.
                let tname = if shards == 1 {
                    format!("dt-worker-{}", s.name)
                } else {
                    format!("dt-worker-{}-{k}", s.name)
                };
                workers.push(
                    std::thread::Builder::new()
                        .name(tname)
                        .spawn(move || run_worker(wctx))
                        .map_err(|e| DtError::engine(format!("spawn worker: {e}")))?,
                );
                ctl_tx.push(ctx_tx);
            }
            queues.push(q);
        }
        drop(sealed_tx);

        let inner = Arc::new(Inner {
            registry,
            stats: Arc::clone(&stats),
            clock: Arc::clone(&clock),
            mode: cfg.mode,
            metrics: cfg.metrics.clone(),
            obs,
            queues,
            routers,
            seqs: names.iter().map(|_| AtomicU64::new(0)).collect(),
            shards,
            ctl_tx,
            admission,
            stop: AtomicBool::new(false),
            fault: cfg.fault.clone(),
            error_budget: cfg.conn_error_budget,
            conn_seq: AtomicU64::new(0),
        });
        let handle = ServerHandle {
            inner: Arc::clone(&inner),
        };

        let (merger_tx, merger_rx) = unbounded::<MergerMsg>();
        let merger_inner = Arc::clone(&inner);
        let synopsis = cfg.synopsis;
        let grace = cfg.grace;
        let watchdog = cfg.seal_watchdog;
        let merger = std::thread::Builder::new()
            .name("dt-merger".to_string())
            .spawn(move || {
                run_merger(
                    merger_inner,
                    synopsis,
                    grace,
                    watchdog,
                    sealed_rx,
                    merger_rx,
                )
            })
            .map_err(|e| DtError::engine(format!("spawn merger: {e}")))?;

        let conns: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        #[cfg(target_os = "linux")]
        let mut reactor_pool: Arc<Vec<crate::reactor::Reactor>> = Arc::new(Vec::new());
        let (bound, acceptor) = match addr {
            None => (None, None),
            Some(spec_addr) => {
                let listener = TcpListener::bind(spec_addr)
                    .map_err(|e| DtError::config(format!("bind {spec_addr}: {e}")))?;
                let local = listener
                    .local_addr()
                    .map_err(|e| DtError::config(format!("local_addr: {e}")))?;
                // Pick the socket plane. The event loop needs epoll,
                // so non-Linux targets silently fall back to the
                // threaded plane; both planes drive the same
                // [`IngestSession`], so sealed output is identical.
                let sink;
                #[cfg(target_os = "linux")]
                {
                    let pool = cfg.ingest.resolved_reactors();
                    if pool > 0 {
                        let mut reactors = Vec::with_capacity(pool);
                        for i in 0..pool {
                            reactors.push(crate::reactor::Reactor::spawn(
                                i,
                                handle.clone(),
                                crate::obs::ReactorObs::register(&cfg.metrics, i),
                            )?);
                        }
                        reactor_pool = Arc::new(reactors);
                        sink = ConnSink::Reactors(Arc::clone(&reactor_pool));
                    } else {
                        sink = ConnSink::Threaded(Arc::clone(&conns));
                    }
                }
                #[cfg(not(target_os = "linux"))]
                {
                    let _ = cfg.ingest;
                    sink = ConnSink::Threaded(Arc::clone(&conns));
                }
                let acc_handle = handle.clone();
                let acc = std::thread::Builder::new()
                    .name("dt-acceptor".to_string())
                    .spawn(move || run_acceptor(listener, acc_handle, sink))
                    .map_err(|e| DtError::engine(format!("spawn acceptor: {e}")))?;
                (Some(local), Some(acc))
            }
        };

        Ok(Server {
            handle,
            addr: bound,
            workers,
            merger: Some(merger),
            merger_tx,
            acceptor,
            conns,
            #[cfg(target_os = "linux")]
            reactors: reactor_pool,
        })
    }

    /// The ingest facade (clone it freely).
    pub fn handle(&self) -> ServerHandle {
        self.handle.clone()
    }

    /// The bound TCP address, when serving a socket.
    pub fn addr(&self) -> Option<SocketAddr> {
        self.addr
    }

    /// Live counters.
    pub fn stats(&self) -> &Arc<ServerStats> {
        self.handle.stats()
    }

    /// Graceful shutdown: stop accepting, drain every worker (all
    /// queued tuples are consumed, all open windows sealed), merge
    /// the remaining windows, and return the final report.
    pub fn shutdown(mut self) -> DtResult<ServerReport> {
        let inner = &self.handle.inner;
        inner.stop.store(true, Ordering::SeqCst);
        if let Some(addr) = self.addr {
            // Unblock the acceptor with a throwaway connection.
            let _ = TcpStream::connect(addr);
        }
        if let Some(acc) = self.acceptor.take() {
            let _ = acc.join();
        }
        let conns = std::mem::take(&mut *self.conns.lock().expect("conns lock"));
        for c in conns {
            let _ = c.join();
        }
        // Reactors observe the stop flag at their next wakeup, drain
        // every connection (holdbacks flushed), and exit.
        #[cfg(target_os = "linux")]
        {
            for r in self.reactors.iter() {
                r.wake();
            }
            for r in self.reactors.iter() {
                r.join();
            }
        }
        for tx in &inner.ctl_tx {
            let _ = tx.send(Ctl::Stop);
        }
        let mut first_err = None;
        for w in self.workers.drain(..) {
            match w.join() {
                Ok(Ok(())) => {}
                Ok(Err(e)) => first_err = first_err.or(Some(e)),
                Err(_) => {
                    first_err =
                        first_err.or_else(|| Some(DtError::engine("worker thread panicked")))
                }
            }
        }
        let _ = self.merger_tx.send(MergerMsg::Stop);
        let report = match self.merger.take().expect("merger running").join() {
            Ok(r) => r,
            Err(_) => Err(DtError::engine("merger thread panicked")),
        };
        match first_err {
            Some(e) => Err(e),
            None => report,
        }
    }
}

/// How a window's missing per-stream slots are treated at emission.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Fill {
    /// Every stream must have sealed the window (normal emission).
    Strict,
    /// Synthesize clean empty seals — the stream was simply idle
    /// (shutdown drain, where workers have already sealed everything
    /// they ever opened).
    Idle,
    /// Synthesize *degraded* empty seals — the stream's worker is
    /// stalled and the watchdog is sealing past it.
    Forced,
}

/// The merger loop: collect sealed per-stream windows, emit each
/// window (strictly in id order) once every stream has sealed it,
/// drive the seal watermark off the clock, and force-seal past
/// stalled workers once the watchdog deadline passes.
fn run_merger(
    inner: Arc<Inner>,
    synopsis: SynopsisConfig,
    grace: VDuration,
    watchdog: Option<VDuration>,
    sealed_rx: Receiver<SealedWindow>,
    merger_rx: Receiver<MergerMsg>,
) -> DtResult<ServerReport> {
    let registry = &inner.registry;
    let spec = registry.spec();
    let n_streams = registry.streams().len();
    let shards = inner.shards;
    // One slot per (stream, shard) partial, flat-indexed
    // `stream * shards + shard`; `emit_window` folds each stream's
    // group of partials in ascending shard order.
    let n_slots = n_streams * shards;
    let mut pending: BTreeMap<WindowId, Vec<Option<SealedWindow>>> = BTreeMap::new();
    let mut results: BTreeMap<QueryId, Vec<WindowResult>> = BTreeMap::new();
    let mut peak_units: usize = 0;
    let mut next_emit: WindowId = 0;
    let mut last_seal: Option<WindowId> = None;
    let mut last_seal_sent = std::time::Instant::now();

    // Seals for windows below `next_emit` are *stale*: the watchdog
    // already force-sealed them, and a late contribution must not
    // resurrect an emitted window.
    let collect = |pending: &mut BTreeMap<WindowId, Vec<Option<SealedWindow>>>,
                   next_emit: WindowId| {
        for s in sealed_rx.try_iter() {
            if s.window < next_emit {
                continue;
            }
            let (win, slot) = (s.window, s.stream * shards + s.shard);
            pending.entry(win).or_insert_with(|| vec![None; n_slots])[slot] = Some(s);
        }
    };

    loop {
        let stop = match merger_rx.recv_timeout(MERGER_POLL) {
            Ok(MergerMsg::Stop) => true,
            Err(crossbeam::channel::RecvTimeoutError::Timeout) => false,
            Err(crossbeam::channel::RecvTimeoutError::Disconnected) => true,
        };
        collect(&mut pending, next_emit);

        if stop {
            // Workers have drained and joined; every sealed window is
            // in hand. Streams seal independently, so a stream with no
            // traffic near the end may be missing windows other
            // streams emitted — synthesize its empty seals.
            let windows: Vec<WindowId> = pending.keys().copied().collect();
            for w in windows {
                emit_window(
                    &inner,
                    &synopsis,
                    &mut pending,
                    &mut results,
                    &mut peak_units,
                    w,
                    Fill::Idle,
                )?;
                next_emit = next_emit.max(w + 1);
            }
            break;
        }

        // Emit every window all streams have sealed. Workers seal
        // contiguously from window 0, so completeness is monotone and
        // emission order == id order.
        while let Some((&w, slots)) = pending.iter().next() {
            if w != next_emit || !slots.iter().all(Option::is_some) {
                break;
            }
            emit_window(
                &inner,
                &synopsis,
                &mut pending,
                &mut results,
                &mut peak_units,
                w,
                Fill::Strict,
            )?;
            next_emit = w + 1;
        }

        let now = inner.clock.now();

        // The sealer watchdog: the watermark has covered `next_emit`
        // (a healthy worker seals promptly on the watermark message),
        // yet some stream still hasn't sealed it well past the
        // deadline — force-seal from whatever contributions exist and
        // flag the result degraded, so one wedged worker degrades its
        // own windows instead of stalling every query's emission.
        if let Some(wd) = watchdog {
            while last_seal.is_some_and(|s| s >= next_emit)
                && last_seal_sent.elapsed() >= WATCHDOG_REAL_GRACE
                && now.micros()
                    >= spec.window_end(next_emit).micros() + grace.micros() + wd.micros()
            {
                inner.obs.windows_force_sealed.inc();
                // A force-seal means the measured costs understate
                // reality (a worker is wedged); double the controllers'
                // main-cost estimate so they shed harder until honest
                // measurements pull the EWMA back down.
                for fc in &inner.admission {
                    fc.base().penalize();
                }
                emit_window(
                    &inner,
                    &synopsis,
                    &mut pending,
                    &mut results,
                    &mut peak_units,
                    next_emit,
                    Fill::Forced,
                )?;
                next_emit += 1;
            }
        }

        // Advance the seal watermark: every window whose end (plus
        // grace) has passed gets sealed on all streams.
        let lag = (spec.width() + grace).micros();
        if now.micros() >= lag {
            let upto = (now.micros() - lag) / spec.slide().micros();
            if last_seal.is_none_or(|s| upto > s) {
                inner
                    .obs
                    .sealer_lag_us
                    .set(now.micros().saturating_sub(spec.window_end(upto).micros()) as i64);
                for tx in &inner.ctl_tx {
                    let _ = tx.send(Ctl::Seal(upto));
                }
                last_seal = Some(upto);
                last_seal_sent = std::time::Instant::now();
            }
        }
    }

    let snaps = inner.stats.snapshot();
    let totals = RunTotals {
        arrived: snaps.iter().map(|s| s.offered).sum(),
        kept: snaps.iter().map(|s| s.kept).sum(),
        dropped: snaps.iter().map(|s| s.shed).sum(),
        peak_synopsis_units: peak_units,
    };
    // One report slot per query id ever registered — ids are dense
    // and never reused, so the report index *is* the id. Queries that
    // never saw a window (registered late, or unregistered before the
    // first emission) report empty window lists.
    let queries = registry.list();
    let mut reports: Vec<RunReport> = queries
        .iter()
        .map(|_| RunReport {
            windows: Vec::new(),
            totals: totals.clone(),
            window_spec: spec,
        })
        .collect();
    for (id, windows) in results {
        reports[id as usize].windows = windows;
    }
    Ok(ServerReport {
        reports,
        queries,
        streams: snaps,
        windows_emitted: inner.stats.windows_emitted.load(Ordering::SeqCst),
        windows_degraded: inner.stats.windows_degraded.load(Ordering::SeqCst),
        // The drain-time snapshot: short-lived runs keep whatever the
        // last scrape interval would have shown.
        obs: inner.metrics.is_enabled().then(|| inner.metrics.snapshot()),
    })
}

/// Join one window across streams and fan it out through the
/// registry to every query active for it.
fn emit_window(
    inner: &Inner,
    synopsis: &SynopsisConfig,
    pending: &mut BTreeMap<WindowId, Vec<Option<SealedWindow>>>,
    results: &mut BTreeMap<QueryId, Vec<WindowResult>>,
    peak_units: &mut usize,
    w: WindowId,
    fill: Fill,
) -> DtResult<()> {
    let registry = &inner.registry;
    let spec = registry.spec();
    let n_streams = registry.streams().len();
    let shards = inner.shards;
    // A watchdog force-seal may fire before *any* shard sealed the
    // window; start from an all-missing row in that case.
    let mut slots = match pending.remove(&w) {
        Some(slots) => slots,
        None if fill == Fill::Forced => vec![None; n_streams * shards],
        None => return Err(DtError::engine("emitting an absent window")),
    };
    let mut shared_rows: Vec<Vec<dt_types::Row>> = Vec::with_capacity(n_streams);
    let mut pairs: Vec<SynPair> = Vec::new();
    let mut counts: Vec<(u64, u64)> = Vec::with_capacity(n_streams);
    let (mut arrived, mut kept, mut dropped) = (0u64, 0u64, 0u64);
    let mut degraded = false;
    for i in 0..n_streams {
        // Fold this stream's shard partials (ascending shard order —
        // `merge_sealed` sorts) into one per-stream seal. With
        // `shards == 1` a single complete part passes straight
        // through.
        let parts: Vec<SealedWindow> = slots[i * shards..(i + 1) * shards]
            .iter_mut()
            .filter_map(Option::take)
            .collect();
        let missing = shards - parts.len();
        let sw = if parts.is_empty() {
            if fill == Fill::Strict {
                return Err(DtError::engine("emitting an incomplete window"));
            }
            // Synthesize the missing seal: empty rows plus freshly
            // sealed empty synopses. Under `Fill::Idle` the stream
            // was genuinely idle (clean); under `Fill::Forced` its
            // worker group is stalled and whatever it held for this
            // window is lost — degraded.
            let syn = if inner.mode.uses_synopses() {
                let arity = registry.streams()[i].schema.arity();
                let mut kept_syn = synopsis.build(arity)?;
                let mut dropped_syn = synopsis.build(arity)?;
                kept_syn.seal();
                dropped_syn.seal();
                Some(SynPair {
                    kept: kept_syn,
                    dropped: dropped_syn,
                })
            } else {
                None
            };
            SealedWindow {
                stream: i,
                shard: 0,
                window: w,
                rows: Vec::new(),
                seqs: Vec::new(),
                syn,
                arrived: 0,
                kept: 0,
                dropped: 0,
                degraded: fill == Fill::Forced,
            }
        } else {
            if missing > 0 && fill == Fill::Strict {
                return Err(DtError::engine("emitting an incomplete window"));
            }
            let mut sw = merge_sealed(parts)?;
            // A force-seal with shard partials still absent lost
            // whatever those shards held for this window.
            if missing > 0 && fill == Fill::Forced {
                sw.degraded = true;
            }
            sw
        };
        arrived += sw.arrived;
        kept += sw.kept;
        dropped += sw.dropped;
        degraded |= sw.degraded;
        counts.push((sw.kept, sw.dropped));
        shared_rows.push(sw.rows);
        if let Some(p) = sw.syn {
            pairs.push(p);
        }
    }
    let pairs = if inner.mode.uses_synopses() {
        if pairs.len() != shared_rows.len() {
            return Err(DtError::engine("sealed window missing synopses"));
        }
        let units: usize = pairs
            .iter()
            .map(|p| p.kept.memory_units() + p.dropped.memory_units())
            .sum();
        *peak_units = (*peak_units).max(units);
        Some(pairs)
    } else {
        None
    };
    let closes = registry.close_window(
        w,
        dt_registry::WindowInputs {
            rows: &shared_rows,
            pairs: pairs.as_deref(),
            counts: &counts,
        },
    )?;
    let emitted_at: Timestamp = inner.clock.now().max(spec.window_end(w));
    inner.obs.window_latency_us.observe(
        emitted_at
            .micros()
            .saturating_sub(spec.window_end(w).micros()),
    );
    inner.obs.windows_emitted.inc();
    for (id, close) in closes {
        results.entry(id).or_default().push(WindowResult {
            window: w,
            payload: close.payload,
            emitted_at,
            arrived,
            kept,
            dropped,
            degraded,
        });
    }
    inner.stats.windows_emitted.fetch_add(1, Ordering::SeqCst);
    if degraded {
        inner.stats.windows_degraded.fetch_add(1, Ordering::SeqCst);
    }
    Ok(())
}

/// The `/stats` document: the live counters, a `queries` array with
/// every registered query's state, plus — when delay constraints are
/// active (configured at startup or registered at runtime) — a
/// `controllers` array with each stream's current threshold (`null`
/// while unbounded), estimated worst-case delay, shed fraction, and
/// tenant lanes.
fn render_stats(inner: &Inner) -> Json {
    let mut doc = inner.stats.render_json();
    let queries: Vec<Json> = inner.registry.list().iter().map(query_info_json).collect();
    // The controllers block appears only once a constraint exists
    // somewhere — an unconstrained server's `/stats` stays the shape
    // it always had.
    let active = inner
        .admission
        .iter()
        .any(|fc| fc.base().constraint().is_some() || fc.has_lanes());
    let ctls: Vec<Json> = if !active {
        Vec::new()
    } else {
        inner
            .registry
            .streams()
            .iter()
            .zip(&inner.admission)
            .map(|(s, fc)| {
                let st = fc.base().state();
                let mut fields = vec![
                    ("stream", Json::Str(s.name.clone())),
                    (
                        "threshold",
                        if st.threshold == u64::MAX {
                            Json::Null
                        } else {
                            Json::Num(st.threshold as f64)
                        },
                    ),
                    (
                        "estimated_delay_ms",
                        Json::Num(st.estimated_delay.micros() as f64 / 1000.0),
                    ),
                    ("shed_fraction", Json::Num(st.shed_fraction)),
                ];
                let lanes: Vec<Json> = fc
                    .lane_states()
                    .into_iter()
                    .map(|l| {
                        json::obj(vec![
                            ("tenant", Json::Str(l.name)),
                            ("weight", Json::Num(l.weight)),
                            (
                                "delay_ms",
                                match l.constraint {
                                    Some(d) => Json::Num(d.micros() as f64 / 1000.0),
                                    None => Json::Null,
                                },
                            ),
                            ("rate", Json::Num(l.rate)),
                            ("shed_fraction", Json::Num(l.shed_fraction)),
                            ("kept", l.kept.to_json()),
                            ("shed", l.shed.to_json()),
                        ])
                    })
                    .collect();
                if !lanes.is_empty() {
                    fields.push(("lanes", Json::Arr(lanes)));
                }
                json::obj(fields)
            })
            .collect()
    };
    if let Json::Obj(fields) = &mut doc {
        fields.push(("queries".to_string(), Json::Arr(queries)));
        if !ctls.is_empty() {
            fields.push(("controllers".to_string(), Json::Arr(ctls)));
        }
    }
    doc
}

/// Where the acceptor routes a fresh connection: a per-connection
/// blocking thread (the original plane), or the event-loop plane's
/// reactor pool (round-robin by accept order, so a connection's
/// reactor — and the readiness-layer fault schedule keyed by accept
/// index — is deterministic).
enum ConnSink {
    Threaded(Arc<Mutex<Vec<JoinHandle<()>>>>),
    #[cfg(target_os = "linux")]
    Reactors(Arc<Vec<crate::reactor::Reactor>>),
}

/// Accept loop. A throwaway connection made by `shutdown` (after the
/// stop flag is set) unblocks `accept`.
fn run_acceptor(listener: TcpListener, handle: ServerHandle, sink: ConnSink) {
    let mut accept_idx: u64 = 0;
    loop {
        let (stream, _) = match listener.accept() {
            Ok(s) => s,
            Err(_) => continue,
        };
        if handle.inner.stop.load(Ordering::SeqCst) {
            return;
        }
        let idx = accept_idx;
        accept_idx += 1;
        match &sink {
            ConnSink::Threaded(conns) => {
                let conn_handle = handle.clone();
                if let Ok(h) = std::thread::Builder::new()
                    .name("dt-conn".to_string())
                    .spawn(move || serve_conn(stream, conn_handle))
                {
                    conns.lock().expect("conns lock").push(h);
                }
            }
            #[cfg(target_os = "linux")]
            ConnSink::Reactors(reactors) => {
                reactors[(idx % reactors.len() as u64) as usize].register(idx, stream);
            }
        }
    }
}

/// One client connection on the threaded plane: a blocking read loop
/// feeding the shared [`IngestSession`] state machine (HTTP probes,
/// control replies, fault injection, the error budget — see
/// `crate::ingest`). Replies accumulate in `out` and are written
/// after every completed line; the 50 ms read timeout doubles as the
/// idle tick that flushes fault-plan holdbacks and notices shutdown.
fn serve_conn(stream: TcpStream, handle: ServerHandle) {
    fn flush(writer: &mut TcpStream, out: &mut Vec<u8>) {
        if !out.is_empty() {
            let _ = writer.write_all(out);
            out.clear();
        }
    }
    let _ = stream.set_read_timeout(Some(CONN_READ_TIMEOUT));
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = stream;
    let mut asm = FrameAssembler::new();
    let mut buf = [0u8; 16 * 1024];
    let mut session = IngestSession::new(handle.fault_plan().clone());
    let mut out: Vec<u8> = Vec::new();
    loop {
        match reader.read(&mut buf) {
            Ok(0) => {
                session.on_eof(&handle, asm.take_partial(), &mut out);
                flush(&mut writer, &mut out);
                return;
            }
            Ok(n) => {
                asm.push(&buf[..n]);
                while let Some(line) = asm.next_line() {
                    let verdict = session.on_line(&handle, &line, &mut out);
                    flush(&mut writer, &mut out);
                    if verdict == LineVerdict::Close {
                        return;
                    }
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                let verdict = session.on_idle(&handle, &mut out);
                flush(&mut writer, &mut out);
                if verdict == LineVerdict::Close || handle.stopping() {
                    return;
                }
            }
            Err(_) => {
                session.on_error(&handle, &mut out);
                flush(&mut writer, &mut out);
                return;
            }
        }
    }
}
