//! The wire format: newline-delimited JSON tuple frames.
//!
//! One frame per line:
//!
//! ```json
//! {"stream":"R","row":[17,4],"ts":1500000}
//! ```
//!
//! `stream` names a catalog stream, `row` is the tuple's integer
//! values in schema order, and `ts` (optional) is the arrival
//! timestamp in microseconds on the server's clock — omitted, the
//! server stamps the tuple with `Clock::now()` at ingest.

use dt_types::{DtError, DtResult, Json, Row, Timestamp, ToJson, Tuple};

/// One parsed ingest frame.
#[derive(Debug, Clone, PartialEq)]
pub struct Frame {
    /// Catalog stream name.
    pub stream: String,
    /// Tuple values in schema order.
    pub row: Row,
    /// Arrival timestamp; `None` means "stamp at ingest".
    pub ts: Option<Timestamp>,
}

impl Frame {
    /// Stamp the frame into a [`Tuple`], defaulting to `now`.
    pub fn into_tuple(self, now: Timestamp) -> Tuple {
        Tuple::new(self.row, self.ts.unwrap_or(now))
    }
}

/// Parse one frame line.
pub fn parse_frame(line: &str) -> DtResult<Frame> {
    let bad = |what: &str| DtError::Parse {
        message: format!("{what} (tuple frame)"),
        position: 0,
    };
    let json = Json::parse(line)?;
    let stream = json
        .get("stream")
        .and_then(Json::as_str)
        .ok_or_else(|| bad("missing string field 'stream'"))?
        .to_string();
    let row = json
        .get("row")
        .and_then(Json::as_arr)
        .ok_or_else(|| bad("missing array field 'row'"))?;
    let values: Vec<i64> = row
        .iter()
        .map(|v| v.as_i64().ok_or_else(|| bad("row values must be integers")))
        .collect::<DtResult<_>>()?;
    if values.is_empty() {
        return Err(bad("row must not be empty"));
    }
    let ts = match json.get("ts") {
        None => None,
        Some(t) => Some(
            t.as_i64()
                .filter(|&us| us >= 0)
                .map(|us| Timestamp::from_micros(us as u64))
                .ok_or_else(|| bad("'ts' must be a non-negative integer"))?,
        ),
    };
    Ok(Frame {
        stream,
        row: Row::from_ints(&values),
        ts,
    })
}

/// Render one frame line (no trailing newline). Errors if a value is
/// not an integer.
pub fn render_frame(stream: &str, row: &Row, ts: Option<Timestamp>) -> DtResult<String> {
    let values: Vec<Json> = row
        .values()
        .iter()
        .map(|v| {
            v.as_i64()
                .map(|i| i.to_json())
                .ok_or_else(|| DtError::config(format!("frame values must be integers, got {v}")))
        })
        .collect::<DtResult<_>>()?;
    let mut fields = vec![("stream", stream.to_json()), ("row", Json::Arr(values))];
    if let Some(t) = ts {
        fields.push(("ts", (t.micros() as i64).to_json()));
    }
    Ok(dt_types::json::obj(fields).render())
}

/// Incremental NDJSON line splitter over raw socket reads.
///
/// The ingest loop feeds whatever byte chunks the socket yields —
/// which may split a frame mid-line or pack several frames per read —
/// and pulls complete lines out one at a time. Invalid UTF-8 is
/// replaced (the replacement characters then fail frame parsing and
/// count against the connection's error budget rather than killing
/// the read loop).
#[derive(Debug, Default)]
pub struct FrameAssembler {
    buf: Vec<u8>,
    /// Read cursor into `buf`; consumed bytes are compacted lazily.
    pos: usize,
}

impl FrameAssembler {
    pub fn new() -> Self {
        FrameAssembler::default()
    }

    /// Append a chunk of raw bytes from the socket.
    pub fn push(&mut self, chunk: &[u8]) {
        // Compact once the consumed prefix dominates, so a long-lived
        // connection doesn't grow the buffer without bound.
        if self.pos > 4096 && self.pos * 2 > self.buf.len() {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        self.buf.extend_from_slice(chunk);
    }

    /// Pull the next complete line (without its newline), if any.
    pub fn next_line(&mut self) -> Option<String> {
        let rest = &self.buf[self.pos..];
        let nl = rest.iter().position(|&b| b == b'\n')?;
        let mut line = &rest[..nl];
        if line.last() == Some(&b'\r') {
            line = &line[..line.len() - 1];
        }
        let text = String::from_utf8_lossy(line).into_owned();
        self.pos += nl + 1;
        Some(text)
    }

    /// Take whatever trailing partial line remains (no newline seen).
    /// Used at EOF: a sender that died mid-frame leaves a fragment the
    /// connection still wants to count as a parse error.
    pub fn take_partial(&mut self) -> Option<String> {
        let rest = &self.buf[self.pos..];
        let out = if rest.is_empty() {
            None
        } else {
            Some(String::from_utf8_lossy(rest).into_owned())
        };
        self.buf.clear();
        self.pos = 0;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips() {
        let row = Row::from_ints(&[17, 4]);
        let line = render_frame("R", &row, Some(Timestamp::from_micros(1_500_000))).unwrap();
        let f = parse_frame(&line).unwrap();
        assert_eq!(f.stream, "R");
        assert_eq!(f.row, row);
        assert_eq!(f.ts, Some(Timestamp::from_micros(1_500_000)));
        // Without a timestamp, stamping falls back to `now`.
        let line = render_frame("R", &row, None).unwrap();
        let f = parse_frame(&line).unwrap();
        assert_eq!(f.ts, None);
        let t = f.into_tuple(Timestamp::from_secs(9));
        assert_eq!(t.ts, Timestamp::from_secs(9));
    }

    #[test]
    fn rejects_malformed_frames() {
        assert!(parse_frame("not json").is_err());
        assert!(parse_frame("{}").is_err());
        assert!(parse_frame(r#"{"stream":"R"}"#).is_err());
        assert!(parse_frame(r#"{"stream":"R","row":[]}"#).is_err());
        assert!(parse_frame(r#"{"stream":"R","row":[1.5]}"#).is_err());
        assert!(parse_frame(r#"{"stream":"R","row":[1],"ts":-4}"#).is_err());
        assert!(parse_frame(r#"{"stream":7,"row":[1]}"#).is_err());
    }

    #[test]
    fn render_rejects_non_integer_values() {
        use dt_types::Value;
        let row = Row::new(vec![Value::Str("x".into())]);
        assert!(render_frame("R", &row, None).is_err());
    }

    #[test]
    fn assembler_reassembles_lines_across_arbitrary_splits() {
        let text = "alpha\nbeta\r\ngamma\n";
        // Feed the same text one byte at a time, three bytes at a
        // time, and all at once — identical line streams.
        for step in [1usize, 3, text.len()] {
            let mut asm = FrameAssembler::new();
            let mut lines = Vec::new();
            for chunk in text.as_bytes().chunks(step) {
                asm.push(chunk);
                while let Some(l) = asm.next_line() {
                    lines.push(l);
                }
            }
            assert_eq!(lines, vec!["alpha", "beta", "gamma"], "step {step}");
            assert_eq!(asm.take_partial(), None);
        }
    }

    #[test]
    fn assembler_surfaces_trailing_fragment_at_eof() {
        let mut asm = FrameAssembler::new();
        asm.push(b"whole\n{\"stream\":\"R\",\"ro");
        assert_eq!(asm.next_line().as_deref(), Some("whole"));
        assert_eq!(asm.next_line(), None);
        assert_eq!(
            asm.take_partial().as_deref(),
            Some("{\"stream\":\"R\",\"ro")
        );
        // Taking the partial resets the buffer entirely.
        assert_eq!(asm.take_partial(), None);
    }

    #[test]
    fn assembler_replaces_invalid_utf8_instead_of_failing() {
        let mut asm = FrameAssembler::new();
        asm.push(&[0xff, 0xfe, b'\n']);
        let line = asm.next_line().unwrap();
        assert!(!line.is_empty());
        assert!(parse_frame(&line).is_err());
    }

    #[test]
    fn assembler_compacts_long_lived_buffers() {
        let mut asm = FrameAssembler::new();
        for i in 0..10_000 {
            asm.push(format!("line-{i}\n").as_bytes());
            assert!(asm.next_line().is_some());
        }
        // After 10k consumed lines the retained buffer must be far
        // smaller than the ~80 KiB that flowed through it.
        assert!(
            asm.buf.len() < 16 * 1024,
            "buffer grew to {}",
            asm.buf.len()
        );
    }
}
