//! The wire format: newline-delimited JSON tuple frames and control
//! commands.
//!
//! One frame per line:
//!
//! ```json
//! {"stream":"R","row":[17,4],"ts":1500000}
//! ```
//!
//! `stream` names a catalog stream, `row` is the tuple's integer
//! values in schema order, and `ts` (optional) is the arrival
//! timestamp in microseconds on the server's clock — omitted, the
//! server stamps the tuple with `Clock::now()` at ingest. An optional
//! `tenant` string tags the tuple for the stream's weighted-fair
//! shedding lanes (untagged traffic lands in the catch-all lane).
//!
//! A line carrying a `cmd` field is a **control command** instead of
//! a tuple; the server answers each one with a single JSON reply line
//! on the same connection:
//!
//! ```json
//! {"cmd":"register","sql":"SELECT a, COUNT(*) FROM R GROUP BY a",
//!  "tenant":"acme","delay_ms":50,"weight":2.0}
//! {"cmd":"unregister","id":3}
//! {"cmd":"list"}
//! ```

use dt_types::{DtError, DtResult, Json, Row, Timestamp, ToJson, Tuple};

/// One parsed ingest frame.
#[derive(Debug, Clone, PartialEq)]
pub struct Frame {
    /// Catalog stream name.
    pub stream: String,
    /// Tuple values in schema order.
    pub row: Row,
    /// Arrival timestamp; `None` means "stamp at ingest".
    pub ts: Option<Timestamp>,
    /// Fair-shedding lane tag; `None` lands in the catch-all lane.
    pub tenant: Option<String>,
}

impl Frame {
    /// Stamp the frame into a [`Tuple`], defaulting to `now`.
    pub fn into_tuple(self, now: Timestamp) -> Tuple {
        Tuple::new(self.row, self.ts.unwrap_or(now))
    }
}

/// One parsed control command (a line with a `cmd` field).
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Register a continuous query at runtime.
    Register {
        /// The TCQ-dialect statement.
        sql: String,
        /// Owning tenant, if any.
        tenant: Option<String>,
        /// Per-tenant delay constraint in milliseconds, if any.
        delay_ms: Option<u64>,
        /// Fair-share weight (defaults to 1 server-side).
        weight: Option<f64>,
    },
    /// Detach a registered query at the next window boundary.
    Unregister {
        /// The id `register` returned.
        id: u64,
    },
    /// List every query ever registered (active and detached).
    List,
}

impl Command {
    /// Render the command as one wire line (no trailing newline).
    pub fn render(&self) -> String {
        match self {
            Command::Register {
                sql,
                tenant,
                delay_ms,
                weight,
            } => {
                let mut fields = vec![("cmd", "register".to_json()), ("sql", sql.to_json())];
                if let Some(t) = tenant {
                    fields.push(("tenant", t.to_json()));
                }
                if let Some(d) = delay_ms {
                    fields.push(("delay_ms", (*d as i64).to_json()));
                }
                if let Some(w) = weight {
                    fields.push(("weight", Json::Num(*w)));
                }
                dt_types::json::obj(fields).render()
            }
            Command::Unregister { id } => dt_types::json::obj(vec![
                ("cmd", "unregister".to_json()),
                ("id", (*id as i64).to_json()),
            ])
            .render(),
            Command::List => dt_types::json::obj(vec![("cmd", "list".to_json())]).render(),
        }
    }
}

/// One ingest line, classified: a tuple frame or a control command.
#[derive(Debug, Clone, PartialEq)]
pub enum Incoming {
    /// A data tuple for a stream.
    Tuple(Frame),
    /// A control-plane command expecting a reply line.
    Control(Command),
}

/// Parse one ingest line: a `cmd` field makes it a control command,
/// anything else is a tuple frame.
pub fn parse_incoming(line: &str) -> DtResult<Incoming> {
    let json = Json::parse(line)?;
    if json.get("cmd").is_none() {
        return frame_from(&json).map(Incoming::Tuple);
    }
    let bad = |what: &str| DtError::parse_at(format!("{what} (control command)"), 0);
    let cmd = json
        .get("cmd")
        .and_then(Json::as_str)
        .ok_or_else(|| bad("'cmd' must be a string"))?;
    let command = match cmd {
        "register" => Command::Register {
            sql: json
                .get("sql")
                .and_then(Json::as_str)
                .ok_or_else(|| bad("register needs a string field 'sql'"))?
                .to_string(),
            tenant: match json.get("tenant") {
                None => None,
                Some(t) => Some(
                    t.as_str()
                        .ok_or_else(|| bad("'tenant' must be a string"))?
                        .to_string(),
                ),
            },
            delay_ms: match json.get("delay_ms") {
                None => None,
                Some(d) => Some(
                    d.as_i64()
                        .filter(|&ms| ms >= 0)
                        .ok_or_else(|| bad("'delay_ms' must be a non-negative integer"))?
                        as u64,
                ),
            },
            weight: match json.get("weight") {
                None => None,
                Some(w) => Some(w.as_f64().ok_or_else(|| bad("'weight' must be a number"))?),
            },
        },
        "unregister" => Command::Unregister {
            id: json
                .get("id")
                .and_then(Json::as_i64)
                .filter(|&id| id >= 0)
                .ok_or_else(|| bad("unregister needs a non-negative integer field 'id'"))?
                as u64,
        },
        "list" => Command::List,
        other => return Err(bad(&format!("unknown command '{other}'"))),
    };
    Ok(Incoming::Control(command))
}

/// Parse one frame line.
pub fn parse_frame(line: &str) -> DtResult<Frame> {
    frame_from(&Json::parse(line)?)
}

fn frame_from(json: &Json) -> DtResult<Frame> {
    let bad = |what: &str| DtError::parse_at(format!("{what} (tuple frame)"), 0);
    let stream = json
        .get("stream")
        .and_then(Json::as_str)
        .ok_or_else(|| bad("missing string field 'stream'"))?
        .to_string();
    let row = json
        .get("row")
        .and_then(Json::as_arr)
        .ok_or_else(|| bad("missing array field 'row'"))?;
    let values: Vec<i64> = row
        .iter()
        .map(|v| v.as_i64().ok_or_else(|| bad("row values must be integers")))
        .collect::<DtResult<_>>()?;
    if values.is_empty() {
        return Err(bad("row must not be empty"));
    }
    let ts = match json.get("ts") {
        None => None,
        Some(t) => Some(
            t.as_i64()
                .filter(|&us| us >= 0)
                .map(|us| Timestamp::from_micros(us as u64))
                .ok_or_else(|| bad("'ts' must be a non-negative integer"))?,
        ),
    };
    let tenant = match json.get("tenant") {
        None => None,
        Some(t) => Some(
            t.as_str()
                .ok_or_else(|| bad("'tenant' must be a string"))?
                .to_string(),
        ),
    };
    Ok(Frame {
        stream,
        row: Row::from_ints(&values),
        ts,
        tenant,
    })
}

/// Render one frame line (no trailing newline). Errors if a value is
/// not an integer.
pub fn render_frame(stream: &str, row: &Row, ts: Option<Timestamp>) -> DtResult<String> {
    render_frame_tagged(stream, row, ts, None)
}

/// Render one frame line with an optional tenant lane tag.
pub fn render_frame_tagged(
    stream: &str,
    row: &Row,
    ts: Option<Timestamp>,
    tenant: Option<&str>,
) -> DtResult<String> {
    let values: Vec<Json> = row
        .values()
        .iter()
        .map(|v| {
            v.as_i64()
                .map(|i| i.to_json())
                .ok_or_else(|| DtError::config(format!("frame values must be integers, got {v}")))
        })
        .collect::<DtResult<_>>()?;
    let mut fields = vec![("stream", stream.to_json()), ("row", Json::Arr(values))];
    if let Some(t) = ts {
        fields.push(("ts", (t.micros() as i64).to_json()));
    }
    if let Some(t) = tenant {
        fields.push(("tenant", t.to_json()));
    }
    Ok(dt_types::json::obj(fields).render())
}

/// Incremental NDJSON line splitter over raw socket reads.
///
/// The ingest loop feeds whatever byte chunks the socket yields —
/// which may split a frame mid-line or pack several frames per read —
/// and pulls complete lines out one at a time. Invalid UTF-8 is
/// replaced (the replacement characters then fail frame parsing and
/// count against the connection's error budget rather than killing
/// the read loop).
#[derive(Debug, Default)]
pub struct FrameAssembler {
    buf: Vec<u8>,
    /// Read cursor into `buf`; consumed bytes are compacted lazily.
    pos: usize,
}

impl FrameAssembler {
    pub fn new() -> Self {
        FrameAssembler::default()
    }

    /// Append a chunk of raw bytes from the socket.
    pub fn push(&mut self, chunk: &[u8]) {
        // Compact once the consumed prefix dominates, so a long-lived
        // connection doesn't grow the buffer without bound.
        if self.pos > 4096 && self.pos * 2 > self.buf.len() {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        self.buf.extend_from_slice(chunk);
    }

    /// Pull the next complete line (without its newline), if any.
    pub fn next_line(&mut self) -> Option<String> {
        let rest = &self.buf[self.pos..];
        let nl = rest.iter().position(|&b| b == b'\n')?;
        let mut line = &rest[..nl];
        if line.last() == Some(&b'\r') {
            line = &line[..line.len() - 1];
        }
        let text = String::from_utf8_lossy(line).into_owned();
        self.pos += nl + 1;
        Some(text)
    }

    /// Take whatever trailing partial line remains (no newline seen).
    /// Used at EOF: a sender that died mid-frame leaves a fragment the
    /// connection still wants to count as a parse error.
    pub fn take_partial(&mut self) -> Option<String> {
        let rest = &self.buf[self.pos..];
        let out = if rest.is_empty() {
            None
        } else {
            Some(String::from_utf8_lossy(rest).into_owned())
        };
        self.buf.clear();
        self.pos = 0;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips() {
        let row = Row::from_ints(&[17, 4]);
        let line = render_frame("R", &row, Some(Timestamp::from_micros(1_500_000))).unwrap();
        let f = parse_frame(&line).unwrap();
        assert_eq!(f.stream, "R");
        assert_eq!(f.row, row);
        assert_eq!(f.ts, Some(Timestamp::from_micros(1_500_000)));
        // Without a timestamp, stamping falls back to `now`.
        let line = render_frame("R", &row, None).unwrap();
        let f = parse_frame(&line).unwrap();
        assert_eq!(f.ts, None);
        let t = f.into_tuple(Timestamp::from_secs(9));
        assert_eq!(t.ts, Timestamp::from_secs(9));
    }

    #[test]
    fn rejects_malformed_frames() {
        assert!(parse_frame("not json").is_err());
        assert!(parse_frame("{}").is_err());
        assert!(parse_frame(r#"{"stream":"R"}"#).is_err());
        assert!(parse_frame(r#"{"stream":"R","row":[]}"#).is_err());
        assert!(parse_frame(r#"{"stream":"R","row":[1.5]}"#).is_err());
        assert!(parse_frame(r#"{"stream":"R","row":[1],"ts":-4}"#).is_err());
        assert!(parse_frame(r#"{"stream":7,"row":[1]}"#).is_err());
    }

    #[test]
    fn tenant_tags_roundtrip() {
        let row = Row::from_ints(&[3]);
        let line = render_frame_tagged("R", &row, None, Some("acme")).unwrap();
        let f = parse_frame(&line).unwrap();
        assert_eq!(f.tenant.as_deref(), Some("acme"));
        assert_eq!(
            parse_frame(r#"{"stream":"R","row":[1]}"#).unwrap().tenant,
            None
        );
        assert!(parse_frame(r#"{"stream":"R","row":[1],"tenant":7}"#).is_err());
    }

    #[test]
    fn incoming_classifies_tuples_and_commands() {
        match parse_incoming(r#"{"stream":"R","row":[1]}"#).unwrap() {
            Incoming::Tuple(f) => assert_eq!(f.stream, "R"),
            other => panic!("{other:?}"),
        }
        let cmd = Command::Register {
            sql: "SELECT a, COUNT(*) FROM R GROUP BY a".into(),
            tenant: Some("acme".into()),
            delay_ms: Some(50),
            weight: Some(2.0),
        };
        match parse_incoming(&cmd.render()).unwrap() {
            Incoming::Control(c) => assert_eq!(c, cmd),
            other => panic!("{other:?}"),
        }
        for cmd in [Command::Unregister { id: 3 }, Command::List] {
            match parse_incoming(&cmd.render()).unwrap() {
                Incoming::Control(c) => assert_eq!(c, cmd),
                other => panic!("{other:?}"),
            }
        }
    }

    #[test]
    fn incoming_rejects_malformed_commands() {
        assert!(parse_incoming(r#"{"cmd":"register"}"#).is_err());
        assert!(parse_incoming(r#"{"cmd":"register","sql":7}"#).is_err());
        assert!(parse_incoming(r#"{"cmd":"unregister"}"#).is_err());
        assert!(parse_incoming(r#"{"cmd":"unregister","id":-1}"#).is_err());
        assert!(parse_incoming(r#"{"cmd":"selfdestruct"}"#).is_err());
        assert!(parse_incoming(r#"{"cmd":7}"#).is_err());
        let err = parse_incoming(r#"{"cmd":"register","sql":"x","weight":"heavy"}"#).unwrap_err();
        assert!(err.to_string().contains("weight"), "{err}");
    }

    #[test]
    fn render_rejects_non_integer_values() {
        use dt_types::Value;
        let row = Row::new(vec![Value::Str("x".into())]);
        assert!(render_frame("R", &row, None).is_err());
    }

    #[test]
    fn assembler_reassembles_lines_across_arbitrary_splits() {
        let text = "alpha\nbeta\r\ngamma\n";
        // Feed the same text one byte at a time, three bytes at a
        // time, and all at once — identical line streams.
        for step in [1usize, 3, text.len()] {
            let mut asm = FrameAssembler::new();
            let mut lines = Vec::new();
            for chunk in text.as_bytes().chunks(step) {
                asm.push(chunk);
                while let Some(l) = asm.next_line() {
                    lines.push(l);
                }
            }
            assert_eq!(lines, vec!["alpha", "beta", "gamma"], "step {step}");
            assert_eq!(asm.take_partial(), None);
        }
    }

    #[test]
    fn assembler_surfaces_trailing_fragment_at_eof() {
        let mut asm = FrameAssembler::new();
        asm.push(b"whole\n{\"stream\":\"R\",\"ro");
        assert_eq!(asm.next_line().as_deref(), Some("whole"));
        assert_eq!(asm.next_line(), None);
        assert_eq!(
            asm.take_partial().as_deref(),
            Some("{\"stream\":\"R\",\"ro")
        );
        // Taking the partial resets the buffer entirely.
        assert_eq!(asm.take_partial(), None);
    }

    #[test]
    fn assembler_replaces_invalid_utf8_instead_of_failing() {
        let mut asm = FrameAssembler::new();
        asm.push(&[0xff, 0xfe, b'\n']);
        let line = asm.next_line().unwrap();
        assert!(!line.is_empty());
        assert!(parse_frame(&line).is_err());
    }

    #[test]
    fn assembler_compacts_long_lived_buffers() {
        let mut asm = FrameAssembler::new();
        for i in 0..10_000 {
            asm.push(format!("line-{i}\n").as_bytes());
            assert!(asm.next_line().is_some());
        }
        // After 10k consumed lines the retained buffer must be far
        // smaller than the ~80 KiB that flowed through it.
        assert!(
            asm.buf.len() < 16 * 1024,
            "buffer grew to {}",
            asm.buf.len()
        );
    }
}
