//! The wire format: newline-delimited JSON tuple frames.
//!
//! One frame per line:
//!
//! ```json
//! {"stream":"R","row":[17,4],"ts":1500000}
//! ```
//!
//! `stream` names a catalog stream, `row` is the tuple's integer
//! values in schema order, and `ts` (optional) is the arrival
//! timestamp in microseconds on the server's clock — omitted, the
//! server stamps the tuple with `Clock::now()` at ingest.

use dt_types::{DtError, DtResult, Json, Row, Timestamp, ToJson, Tuple};

/// One parsed ingest frame.
#[derive(Debug, Clone, PartialEq)]
pub struct Frame {
    /// Catalog stream name.
    pub stream: String,
    /// Tuple values in schema order.
    pub row: Row,
    /// Arrival timestamp; `None` means "stamp at ingest".
    pub ts: Option<Timestamp>,
}

impl Frame {
    /// Stamp the frame into a [`Tuple`], defaulting to `now`.
    pub fn into_tuple(self, now: Timestamp) -> Tuple {
        Tuple::new(self.row, self.ts.unwrap_or(now))
    }
}

/// Parse one frame line.
pub fn parse_frame(line: &str) -> DtResult<Frame> {
    let bad = |what: &str| DtError::Parse {
        message: format!("{what} (tuple frame)"),
        position: 0,
    };
    let json = Json::parse(line)?;
    let stream = json
        .get("stream")
        .and_then(Json::as_str)
        .ok_or_else(|| bad("missing string field 'stream'"))?
        .to_string();
    let row = json
        .get("row")
        .and_then(Json::as_arr)
        .ok_or_else(|| bad("missing array field 'row'"))?;
    let values: Vec<i64> = row
        .iter()
        .map(|v| v.as_i64().ok_or_else(|| bad("row values must be integers")))
        .collect::<DtResult<_>>()?;
    if values.is_empty() {
        return Err(bad("row must not be empty"));
    }
    let ts = match json.get("ts") {
        None => None,
        Some(t) => Some(
            t.as_i64()
                .filter(|&us| us >= 0)
                .map(|us| Timestamp::from_micros(us as u64))
                .ok_or_else(|| bad("'ts' must be a non-negative integer"))?,
        ),
    };
    Ok(Frame {
        stream,
        row: Row::from_ints(&values),
        ts,
    })
}

/// Render one frame line (no trailing newline). Errors if a value is
/// not an integer.
pub fn render_frame(stream: &str, row: &Row, ts: Option<Timestamp>) -> DtResult<String> {
    let values: Vec<Json> = row
        .values()
        .iter()
        .map(|v| {
            v.as_i64()
                .map(|i| i.to_json())
                .ok_or_else(|| DtError::config(format!("frame values must be integers, got {v}")))
        })
        .collect::<DtResult<_>>()?;
    let mut fields = vec![("stream", stream.to_json()), ("row", Json::Arr(values))];
    if let Some(t) = ts {
        fields.push(("ts", (t.micros() as i64).to_json()));
    }
    Ok(dt_types::json::obj(fields).render())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips() {
        let row = Row::from_ints(&[17, 4]);
        let line = render_frame("R", &row, Some(Timestamp::from_micros(1_500_000))).unwrap();
        let f = parse_frame(&line).unwrap();
        assert_eq!(f.stream, "R");
        assert_eq!(f.row, row);
        assert_eq!(f.ts, Some(Timestamp::from_micros(1_500_000)));
        // Without a timestamp, stamping falls back to `now`.
        let line = render_frame("R", &row, None).unwrap();
        let f = parse_frame(&line).unwrap();
        assert_eq!(f.ts, None);
        let t = f.into_tuple(Timestamp::from_secs(9));
        assert_eq!(t.ts, Timestamp::from_secs(9));
    }

    #[test]
    fn rejects_malformed_frames() {
        assert!(parse_frame("not json").is_err());
        assert!(parse_frame("{}").is_err());
        assert!(parse_frame(r#"{"stream":"R"}"#).is_err());
        assert!(parse_frame(r#"{"stream":"R","row":[]}"#).is_err());
        assert!(parse_frame(r#"{"stream":"R","row":[1.5]}"#).is_err());
        assert!(parse_frame(r#"{"stream":"R","row":[1],"ts":-4}"#).is_err());
        assert!(parse_frame(r#"{"stream":7,"row":[1]}"#).is_err());
    }

    #[test]
    fn render_rejects_non_integer_values() {
        use dt_types::Value;
        let row = Row::new(vec![Value::Str("x".into())]);
        assert!(render_frame("R", &row, None).is_err());
    }
}
