//! The per-connection ingest state machine, shared by both socket
//! planes.
//!
//! The threaded plane (`serve_conn`) and the event-loop plane
//! ([`crate::reactor`]) differ only in how bytes arrive and leave; the
//! *semantics* of a connection — the first-line HTTP probe, lazy conn
//! id draw, fault-plan corruption/holdback/disconnect, the error
//! budget and its structured farewell frame, and the holdback-flush
//! guarantees on every close path — live here once. That shared state
//! machine is what makes sealed-window output bit-identical across
//! planes: both feed the same [`IngestSession`] the same line stream.
//!
//! Replies (command answers, HTTP bodies, the budget farewell) are
//! appended to a caller-owned `out` buffer: the threaded plane writes
//! it synchronously after each line, the reactor queues it behind its
//! write-side backpressure.

use crate::fault::FaultPlan;
use crate::obs::{
    http_method_not_allowed, http_not_found, http_response, FAULT_CORRUPT, FAULT_DELAY,
    FAULT_DISCONNECT,
};
use crate::server::ServerHandle;

/// What the session decided after consuming input: keep the
/// connection open, or close it once `out` has been flushed. On
/// `Close` the caller must not feed the session any further buffered
/// lines — they are discarded exactly as a closed socket would have
/// discarded them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum LineVerdict {
    /// Keep reading.
    Open,
    /// Flush `out` (best effort) and close the connection.
    Close,
}

/// Ingest-side state for one NDJSON connection: line accounting, the
/// error budget, and fault-plan holdbacks.
pub(crate) struct IngestSession {
    fault: FaultPlan,
    /// This connection's ingest id, drawn lazily at the first data
    /// line so HTTP probe connections never consume one.
    id: Option<u64>,
    /// Data lines seen so far (the fault plan's line index).
    lines: u64,
    /// Frames this connection had rejected.
    errors: u64,
    /// Lines the fault plan is holding back: `(release_after, text)`.
    held: Vec<(u64, String)>,
    /// Still waiting for the first line (HTTP probe sniffing window).
    first: bool,
}

impl IngestSession {
    pub(crate) fn new(fault: FaultPlan) -> IngestSession {
        IngestSession {
            fault,
            id: None,
            lines: 0,
            errors: 0,
            held: Vec::new(),
            first: true,
        }
    }

    /// Ingest one line — a tuple frame or a control command (whose
    /// reply is appended to `out`) — and account failures; `true`
    /// means the error budget is exhausted and the caller must close
    /// the connection (after flushing holdbacks).
    fn process(&mut self, handle: &ServerHandle, text: &str, out: &mut Vec<u8>) -> bool {
        match handle.ingest_line(text) {
            Ok(None) => false,
            Ok(Some(reply)) => {
                out.extend_from_slice(reply.as_bytes());
                out.push(b'\n');
                false
            }
            Err(_) => {
                handle.note_rejected_frame();
                self.errors += 1;
                self.errors >= handle.error_budget()
            }
        }
    }

    /// Release every held line due at or before line index `upto`
    /// (`u64::MAX` flushes all — done before any close or on idle, so
    /// a delayed frame is never outright lost).
    fn release_held(&mut self, handle: &ServerHandle, out: &mut Vec<u8>, upto: u64) -> bool {
        let mut exhausted = false;
        while let Some(pos) = self.held.iter().position(|(due, _)| *due <= upto) {
            let (_, text) = self.held.remove(pos);
            exhausted |= self.process(handle, &text, out);
        }
        exhausted
    }

    /// Flush all holdbacks and append the structured budget-exhausted
    /// farewell frame.
    fn farewell(&mut self, handle: &ServerHandle, out: &mut Vec<u8>) {
        let _ = self.release_held(handle, out, u64::MAX);
        let msg = format!(
            "{{\"error\":\"error budget exhausted\",\"rejected\":{},\"budget\":{}}}\n",
            self.errors,
            handle.error_budget()
        );
        out.extend_from_slice(msg.as_bytes());
    }

    /// One complete line off the wire. Replies accumulate in `out`.
    pub(crate) fn on_line(
        &mut self,
        handle: &ServerHandle,
        raw: &str,
        out: &mut Vec<u8>,
    ) -> LineVerdict {
        let trimmed = raw.trim();
        if self.first && trimmed.starts_with("GET ") {
            let path = trimmed.split_whitespace().nth(1).unwrap_or("/stats");
            let reply = if path.starts_with("/stats") {
                http_response("application/json", &handle.stats_body())
            } else if path.starts_with("/metrics") {
                http_response("text/plain; version=0.0.4", &handle.metrics_body())
            } else {
                http_not_found()
            };
            out.extend_from_slice(reply.as_bytes());
            return LineVerdict::Close;
        }
        if self.first && is_non_get_http(trimmed) {
            out.extend_from_slice(http_method_not_allowed().as_bytes());
            return LineVerdict::Close;
        }
        self.first = false;
        if trimmed.is_empty() {
            return LineVerdict::Open;
        }
        let id = *self.id.get_or_insert_with(|| handle.next_conn_id());
        let line_no = self.lines;
        self.lines += 1;
        let mut text = trimmed.to_string();
        if !self.fault.is_disabled() {
            if let Some(kind) = self.fault.corrupt(id, line_no) {
                handle.obs().faults_injected[FAULT_CORRUPT].inc();
                text = self.fault.corrupt_line(kind, id, line_no, &text);
            }
        }
        let mut exhausted = false;
        if let Some(k) = (!self.fault.is_disabled())
            .then(|| self.fault.delay(id, line_no))
            .flatten()
        {
            handle.obs().faults_injected[FAULT_DELAY].inc();
            self.held.push((line_no + k, text));
        } else {
            exhausted = self.process(handle, &text, out);
        }
        exhausted |= self.release_held(handle, out, line_no);
        if exhausted {
            self.farewell(handle, out);
            return LineVerdict::Close;
        }
        if !self.fault.is_disabled() && self.fault.disconnect_after(id, line_no) {
            // Mid-stream disconnect: drop the socket with no farewell
            // — any lines already buffered past this one are discarded
            // unread, exactly like a torn network path.
            handle.obs().faults_injected[FAULT_DISCONNECT].inc();
            let _ = self.release_held(handle, out, u64::MAX);
            return LineVerdict::Close;
        }
        LineVerdict::Open
    }

    /// The connection has gone quiet for one idle interval: release
    /// every holdback (delayed frames must not outlive the lull that
    /// would seal their window). A holdback that exhausts the budget
    /// still closes the connection with the farewell frame.
    pub(crate) fn on_idle(&mut self, handle: &ServerHandle, out: &mut Vec<u8>) -> LineVerdict {
        if self.release_held(handle, out, u64::MAX) {
            self.farewell(handle, out);
            return LineVerdict::Close;
        }
        LineVerdict::Open
    }

    /// Clean EOF. A trailing fragment is a torn frame: count it
    /// against the budget like any other bad line, then flush
    /// holdbacks. (Exhaustion is moot — the peer already left.)
    pub(crate) fn on_eof(
        &mut self,
        handle: &ServerHandle,
        partial: Option<String>,
        out: &mut Vec<u8>,
    ) {
        if let Some(partial) = partial {
            let trimmed = partial.trim();
            if !trimmed.is_empty() {
                let _ = self.process(handle, trimmed, out);
            }
        }
        let _ = self.release_held(handle, out, u64::MAX);
    }

    /// Abrupt teardown (socket error, readiness-layer injected
    /// disconnect): flush holdbacks so every *completed* line reached
    /// the engine; a torn trailing fragment is dropped uncounted —
    /// the bytes never finished arriving, so to the accounting they
    /// were never read.
    pub(crate) fn on_error(&mut self, handle: &ServerHandle, out: &mut Vec<u8>) {
        let _ = self.release_held(handle, out, u64::MAX);
    }
}

/// True when a connection's first line looks like an HTTP request for
/// a method the server does not serve (everything but GET): an
/// all-caps method token followed by a `/`-rooted path. Tuple and
/// control frames start with `{`, so they can never match.
fn is_non_get_http(line: &str) -> bool {
    let mut it = line.split_whitespace();
    match (it.next(), it.next()) {
        (Some(method), Some(path)) => {
            method != "GET"
                && !method.is_empty()
                && method.chars().all(|c| c.is_ascii_uppercase())
                && path.starts_with('/')
        }
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn http_method_sniffing() {
        assert!(is_non_get_http("POST /stats HTTP/1.1"));
        assert!(is_non_get_http("DELETE /x"));
        assert!(!is_non_get_http("GET /stats HTTP/1.1"));
        assert!(!is_non_get_http("{\"stream\":\"R\"}"));
        assert!(!is_non_get_http("post /stats"));
        assert!(!is_non_get_http(""));
    }
}
