//! The event-loop ingest plane: a small pool of reactor threads, each
//! multiplexing many nonblocking connections over epoll (DESIGN.md
//! §14).
//!
//! The plane splits in two so its logic is testable without sockets:
//!
//! * [`ReactorCore`] — the deterministic heart. Generic over a byte
//!   transport ([`ConnIo`]) and an interest registry ([`Interests`]),
//!   it owns every connection's [`FrameAssembler`] + [`IngestSession`]
//!   pair, applies readiness-layer faults (`read_chop` /
//!   `read_disconnect`), enforces the per-wakeup read-burst cap, and
//!   runs write-side backpressure (pending replies re-arm write
//!   interest; a drained buffer restores read-only interest). Unit
//!   tests drive it with scripted fake sockets and a logging interest
//!   registry — no epoll, no wall clock.
//! * [`Reactor`] (Linux only) — the thread around the core: an
//!   edge-triggered epoll loop with an eventfd wake channel the
//!   acceptor uses to hand over fresh connections.
//!
//! Invariants the tests pin:
//!
//! * **Teardown ordering**: pending output is flushed (best effort),
//!   then the token leaves the interest set, and only then does the
//!   socket drop — a readiness source never holds a token for a dead
//!   fd.
//! * **Burst fairness**: a connection that keeps producing bytes
//!   yields after [`READ_BURST_CAP`] and rejoins via the carryover
//!   ready list (edge-triggered epoll would otherwise never re-fire
//!   for bytes already buffered).
//! * **Idle parity**: holdbacks flush after [`IDLE_TICKS`] quiet
//!   ticks, mirroring the threaded plane's 50 ms read-timeout flush —
//!   counted in ticks, not wall time, so a frozen `VirtualClock`
//!   changes nothing.

use crate::frame::FrameAssembler;
use crate::ingest::{IngestSession, LineVerdict};
use crate::obs::{ReactorObs, FAULT_READ_CHOP, FAULT_READ_DISCONNECT};
use crate::server::ServerHandle;
use std::collections::HashMap;
use std::io;

/// One nonblocking read's buffer size (matches the threaded plane).
const READ_CHUNK: usize = 16 * 1024;
/// Per-connection read-burst cap per wakeup: a firehose peer yields
/// back to the loop after this many bytes so it cannot starve its
/// reactor's other connections; it keeps its turn via the carryover
/// ready list.
const READ_BURST_CAP: usize = 256 * 1024;
/// Reactor tick — the `epoll_wait` timeout, milliseconds.
#[cfg(target_os = "linux")]
const TICK_MS: i32 = 10;
/// Quiet ticks before a connection's fault-plan holdbacks flush
/// (≈ the threaded plane's 50 ms read timeout at 10 ms ticks).
const IDLE_TICKS: u32 = 5;

/// Nonblocking byte transport (a `TcpStream` in production; scripted
/// fakes in the unit tests).
pub(crate) trait ConnIo {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize>;
    fn write(&mut self, buf: &[u8]) -> io::Result<usize>;
}

impl ConnIo for std::net::TcpStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        io::Read::read(self, buf)
    }
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        io::Write::write(self, buf)
    }
}

/// The readiness registry the core re-arms interest against.
pub(crate) trait Interests {
    /// Re-arm `token` for read (always) plus write when `want_write`.
    fn rearm(&mut self, token: u64, want_write: bool);
    /// Remove `token` from the interest set (called strictly before
    /// the token's socket drops).
    fn deregister(&mut self, token: u64);
}

/// What a readable sweep left behind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ReadOutcome {
    /// The socket is drained (or the connection closed).
    Done,
    /// The burst cap fired with bytes likely still pending: the caller
    /// must re-run this token without waiting for a new edge.
    Yielded,
}

/// What one read sweep decided (internal to the core).
enum Step {
    /// No more bytes right now, or the session closed cleanly: flush
    /// output and settle interest.
    Settle,
    /// Burst cap hit mid-stream.
    Yield,
    /// Socket error or injected readiness disconnect: abrupt teardown.
    Torn,
}

/// Whether the out-buffer flush finished.
enum Flush {
    Drained,
    Blocked,
    Error,
}

/// One multiplexed connection: its transport, frame assembler, shared
/// ingest state machine, and pending output.
struct Conn<S> {
    sock: S,
    asm: FrameAssembler,
    session: IngestSession,
    /// Server-wide accept order — the readiness fault plan's key.
    accept_idx: u64,
    /// Read *attempts* so far (the fault plan's read index; a chopped
    /// or torn read is scheduled before the `read` call it afflicts).
    reads: u64,
    out: Vec<u8>,
    out_pos: usize,
    want_write: bool,
    closing: bool,
    idle_ticks: u32,
}

/// The deterministic reactor state machine: every connection owned by
/// one reactor thread, keyed by its readiness token.
pub(crate) struct ReactorCore<S> {
    handle: ServerHandle,
    obs: ReactorObs,
    conns: HashMap<u64, Conn<S>>,
    buf: Box<[u8]>,
}

impl<S: ConnIo> ReactorCore<S> {
    pub(crate) fn new(handle: ServerHandle, obs: ReactorObs) -> ReactorCore<S> {
        ReactorCore {
            handle,
            obs,
            conns: HashMap::new(),
            buf: vec![0u8; READ_CHUNK].into_boxed_slice(),
        }
    }

    /// Adopt a fresh connection under `token`.
    pub(crate) fn add(&mut self, token: u64, accept_idx: u64, sock: S) {
        let session = IngestSession::new(self.handle.fault_plan().clone());
        self.conns.insert(
            token,
            Conn {
                sock,
                asm: FrameAssembler::new(),
                session,
                accept_idx,
                reads: 0,
                out: Vec::new(),
                out_pos: 0,
                want_write: false,
                closing: false,
                idle_ticks: 0,
            },
        );
        self.obs.conns.add(1);
    }

    /// Connections currently owned (asserted by the unit tests; the
    /// live gauge is `dt_server_reactor_conns`).
    #[cfg(test)]
    pub(crate) fn conn_count(&self) -> usize {
        self.conns.len()
    }

    /// Drive `token` through short nonblocking reads until the socket
    /// runs dry, the session closes it, or the burst cap fires.
    pub(crate) fn on_readable<I: Interests>(
        &mut self,
        token: u64,
        interests: &mut I,
    ) -> ReadOutcome {
        let step = {
            let ReactorCore {
                handle,
                obs,
                conns,
                buf,
            } = self;
            let Some(conn) = conns.get_mut(&token) else {
                return ReadOutcome::Done;
            };
            conn.idle_ticks = 0;
            pump(handle, obs, conn, buf)
        };
        match step {
            Step::Torn => {
                self.teardown(token, interests, true);
                ReadOutcome::Done
            }
            Step::Yield => {
                self.settle(token, interests);
                ReadOutcome::Yielded
            }
            Step::Settle => {
                self.settle(token, interests);
                ReadOutcome::Done
            }
        }
    }

    /// The kernel says `token` is writable again: drain pending output
    /// and restore read-only interest once it empties.
    pub(crate) fn on_writable<I: Interests>(&mut self, token: u64, interests: &mut I) {
        self.settle(token, interests);
    }

    /// One reactor tick: age every connection's idle counter; those
    /// quiet for [`IDLE_TICKS`] flush their fault-plan holdbacks
    /// (delayed frames must not outlive the lull that would seal
    /// their window — same rule as the threaded plane's read timeout).
    pub(crate) fn on_tick<I: Interests>(&mut self, interests: &mut I) {
        let tokens: Vec<u64> = self.conns.keys().copied().collect();
        for token in tokens {
            {
                let ReactorCore { handle, conns, .. } = self;
                let Some(conn) = conns.get_mut(&token) else {
                    continue;
                };
                if conn.closing {
                    continue;
                }
                conn.idle_ticks += 1;
                if conn.idle_ticks < IDLE_TICKS {
                    continue;
                }
                conn.idle_ticks = 0;
                if conn.session.on_idle(handle, &mut conn.out) == LineVerdict::Close {
                    conn.closing = true;
                }
            }
            self.settle(token, interests);
        }
    }

    /// Graceful-drain sweep: flush every connection's holdbacks and
    /// close it *at this wakeup* — shutdown does not wait out idle
    /// timers or blocked writes beyond one best-effort flush.
    pub(crate) fn drain_all<I: Interests>(&mut self, interests: &mut I) {
        let tokens: Vec<u64> = self.conns.keys().copied().collect();
        for token in tokens {
            {
                let ReactorCore { handle, conns, .. } = self;
                let Some(conn) = conns.get_mut(&token) else {
                    continue;
                };
                let _ = conn.session.on_idle(handle, &mut conn.out);
            }
            self.teardown(token, interests, false);
        }
    }

    /// Flush pending output and settle `token`'s fate: re-arm write
    /// interest while blocked, restore read-only interest on drain,
    /// tear down once a closing connection has drained.
    fn settle<I: Interests>(&mut self, token: u64, interests: &mut I) {
        enum After {
            Keep,
            RearmRead,
            RearmWrite,
            Close,
            Torn,
        }
        let after = match self.conns.get_mut(&token) {
            None => return,
            Some(conn) => match flush_out(conn) {
                Flush::Drained => {
                    if conn.closing {
                        After::Close
                    } else if conn.want_write {
                        conn.want_write = false;
                        After::RearmRead
                    } else {
                        After::Keep
                    }
                }
                Flush::Blocked => {
                    if conn.want_write {
                        After::Keep
                    } else {
                        conn.want_write = true;
                        After::RearmWrite
                    }
                }
                Flush::Error => After::Torn,
            },
        };
        match after {
            After::Keep => {}
            After::RearmRead => interests.rearm(token, false),
            After::RearmWrite => interests.rearm(token, true),
            After::Close => self.teardown(token, interests, false),
            After::Torn => self.teardown(token, interests, true),
        }
    }

    /// Tear `token` down. On the abrupt path the session first flushes
    /// holdbacks into the engine (the torn trailing fragment stays
    /// uncounted — see [`IngestSession::on_error`]). Ordering is
    /// pinned by the unit tests: flush output (best effort), then
    /// deregister interest, then drop the socket.
    fn teardown<I: Interests>(&mut self, token: u64, interests: &mut I, abrupt: bool) {
        let Some(mut conn) = self.conns.remove(&token) else {
            return;
        };
        if abrupt {
            conn.session.on_error(&self.handle, &mut conn.out);
        }
        let _ = flush_out(&mut conn);
        interests.deregister(token);
        self.obs.conns.sub(1);
        drop(conn);
    }
}

/// The read sweep: nonblocking reads (fault-chopped when scheduled)
/// feeding the frame assembler, each completed line through the
/// shared session, until dry / close / burst cap / teardown.
fn pump<S: ConnIo>(
    handle: &ServerHandle,
    obs: &ReactorObs,
    conn: &mut Conn<S>,
    buf: &mut [u8],
) -> Step {
    let fault = handle.fault_plan();
    let mut burst = 0usize;
    loop {
        let read_idx = conn.reads;
        conn.reads += 1;
        let mut cap = buf.len();
        if !fault.is_disabled() {
            if fault.read_disconnect(conn.accept_idx, read_idx) {
                handle.obs().faults_injected[FAULT_READ_DISCONNECT].inc();
                return Step::Torn;
            }
            if let Some(chop) = fault.read_chop(conn.accept_idx, read_idx) {
                handle.obs().faults_injected[FAULT_READ_CHOP].inc();
                cap = chop.min(cap);
            }
        }
        match conn.sock.read(&mut buf[..cap]) {
            Ok(0) => {
                conn.session
                    .on_eof(handle, conn.asm.take_partial(), &mut conn.out);
                conn.closing = true;
                return Step::Settle;
            }
            Ok(n) => {
                obs.read_burst.observe(n as u64);
                burst += n;
                conn.asm.push(&buf[..n]);
                while let Some(line) = conn.asm.next_line() {
                    if conn.session.on_line(handle, &line, &mut conn.out) == LineVerdict::Close {
                        conn.closing = true;
                        return Step::Settle;
                    }
                }
                if burst >= READ_BURST_CAP {
                    return Step::Yield;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Step::Settle,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => return Step::Torn,
        }
    }
}

/// Write as much pending output as the socket accepts.
fn flush_out<S: ConnIo>(conn: &mut Conn<S>) -> Flush {
    while conn.out_pos < conn.out.len() {
        match conn.sock.write(&conn.out[conn.out_pos..]) {
            Ok(0) => return Flush::Error,
            Ok(n) => conn.out_pos += n,
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Flush::Blocked,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => return Flush::Error,
        }
    }
    conn.out.clear();
    conn.out_pos = 0;
    Flush::Drained
}

#[cfg(target_os = "linux")]
pub(crate) use real::Reactor;

/// The real epoll reactor thread (Linux; other targets fall back to
/// the threaded plane in `Server::start`).
#[cfg(target_os = "linux")]
mod real {
    use super::{Interests, ReactorCore, ReadOutcome, TICK_MS};
    use crate::obs::ReactorObs;
    use crate::server::ServerHandle;
    use crate::sys::{
        self, Epoll, EpollEvent, EventFd, EPOLLERR, EPOLLET, EPOLLHUP, EPOLLIN, EPOLLOUT,
        EPOLLRDHUP,
    };
    use dt_types::{DtError, DtResult};
    use std::collections::HashMap;
    use std::net::TcpStream;
    use std::os::unix::io::{AsRawFd, RawFd};
    use std::sync::{Arc, Mutex};
    use std::thread::JoinHandle;

    /// The wake eventfd's token; connection tokens start at 1.
    const WAKE: u64 = 0;
    /// Connection interest: edge-triggered read plus peer-close.
    const CONN_BASE: u32 = EPOLLIN | EPOLLRDHUP | EPOLLET;

    struct Shared {
        /// Connections the acceptor has handed over, waiting to be
        /// adopted into the epoll set: `(accept_idx, socket)`.
        inbox: Mutex<Vec<(u64, TcpStream)>>,
        wake: EventFd,
    }

    /// One reactor thread of the event-loop ingest plane. The
    /// acceptor round-robins fresh connections across the pool via
    /// [`Reactor::register`]; shutdown sets the server stop flag and
    /// [`Reactor::wake`]s each thread, which drains its connections
    /// and exits.
    pub(crate) struct Reactor {
        shared: Arc<Shared>,
        thread: Mutex<Option<JoinHandle<()>>>,
    }

    impl Reactor {
        pub(crate) fn spawn(
            idx: usize,
            handle: ServerHandle,
            obs: ReactorObs,
        ) -> DtResult<Reactor> {
            let shared = Arc::new(Shared {
                inbox: Mutex::new(Vec::new()),
                wake: EventFd::new().map_err(|e| DtError::engine(format!("eventfd: {e}")))?,
            });
            let run_shared = Arc::clone(&shared);
            let thread = std::thread::Builder::new()
                .name(format!("dt-reactor-{idx}"))
                .spawn(move || run_reactor(run_shared, handle, obs))
                .map_err(|e| DtError::engine(format!("spawn reactor: {e}")))?;
            Ok(Reactor {
                shared,
                thread: Mutex::new(Some(thread)),
            })
        }

        /// Hand a fresh connection to this reactor (acceptor side).
        pub(crate) fn register(&self, accept_idx: u64, sock: TcpStream) {
            self.shared
                .inbox
                .lock()
                .expect("reactor inbox")
                .push((accept_idx, sock));
            self.shared.wake.signal();
        }

        /// Force a wakeup (shutdown path — the loop re-checks the
        /// server stop flag on every wakeup).
        pub(crate) fn wake(&self) {
            self.shared.wake.signal();
        }

        /// Join the reactor thread (after the stop flag is set and
        /// [`Reactor::wake`] called).
        pub(crate) fn join(&self) {
            if let Some(t) = self.thread.lock().expect("reactor thread").take() {
                let _ = t.join();
            }
        }
    }

    /// [`Interests`] over the thread's real epoll set.
    struct EpollInterests<'a> {
        epoll: &'a Epoll,
        fds: HashMap<u64, RawFd>,
    }

    impl Interests for EpollInterests<'_> {
        fn rearm(&mut self, token: u64, want_write: bool) {
            if let Some(&fd) = self.fds.get(&token) {
                let mask = if want_write {
                    CONN_BASE | EPOLLOUT
                } else {
                    CONN_BASE
                };
                let _ = self.epoll.modify(fd, token, mask);
            }
        }
        fn deregister(&mut self, token: u64) {
            if let Some(fd) = self.fds.remove(&token) {
                let _ = self.epoll.delete(fd);
            }
        }
    }

    fn run_reactor(shared: Arc<Shared>, handle: ServerHandle, obs: ReactorObs) {
        let Ok(epoll) = Epoll::new() else { return };
        if epoll.add(shared.wake.raw(), WAKE, EPOLLIN).is_err() {
            return;
        }
        let mut interests = EpollInterests {
            epoll: &epoll,
            fds: HashMap::new(),
        };
        let wakeups = obs.wakeups.clone();
        let mut core: ReactorCore<TcpStream> = ReactorCore::new(handle.clone(), obs);
        let mut events = [EpollEvent::zeroed(); 128];
        let mut next_token: u64 = 1;
        // Tokens that must re-run without a fresh edge: burst-capped
        // connections keeping their turn, and adoptees whose bytes
        // may have landed before their epoll registration.
        let mut carry: Vec<u64> = Vec::new();
        let mut requeue: Vec<u64> = Vec::new();
        loop {
            let timeout = if carry.is_empty() { TICK_MS } else { 0 };
            let n = match epoll.wait(&mut events, timeout) {
                Ok(n) => n,
                Err(_) => {
                    // Should be unreachable (EINTR is retried inside
                    // `wait`); don't spin hot if it somehow isn't.
                    std::thread::sleep(std::time::Duration::from_millis(TICK_MS as u64));
                    0
                }
            };
            wakeups.inc();
            for ev in events.iter().take(n) {
                let (mask, token) = (ev.events, ev.data);
                if token == WAKE {
                    shared.wake.drain();
                    continue;
                }
                if mask & EPOLLOUT != 0 {
                    core.on_writable(token, &mut interests);
                }
                if mask & (EPOLLIN | EPOLLRDHUP | EPOLLHUP | EPOLLERR) != 0
                    && core.on_readable(token, &mut interests) == ReadOutcome::Yielded
                {
                    requeue.push(token);
                }
            }
            // Adopt newly accepted connections.
            let fresh: Vec<(u64, TcpStream)> = shared
                .inbox
                .lock()
                .expect("reactor inbox")
                .drain(..)
                .collect();
            for (accept_idx, sock) in fresh {
                let fd = sock.as_raw_fd();
                if sys::set_nonblocking(fd).is_err() {
                    continue;
                }
                let token = next_token;
                next_token += 1;
                if epoll.add(fd, token, CONN_BASE).is_ok() {
                    interests.fds.insert(token, fd);
                    core.add(token, accept_idx, sock);
                    requeue.push(token);
                }
            }
            for token in carry.drain(..) {
                if core.on_readable(token, &mut interests) == ReadOutcome::Yielded {
                    requeue.push(token);
                }
            }
            std::mem::swap(&mut carry, &mut requeue);
            core.on_tick(&mut interests);
            if handle.stopping() {
                core.drain_all(&mut interests);
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ServerConfig;
    use crate::fault::FaultPlan;
    use crate::server::Server;
    use dt_query::Catalog;
    use dt_types::{DataType, Schema, VirtualClock};
    use std::cell::RefCell;
    use std::collections::VecDeque;
    use std::rc::Rc;
    use std::sync::atomic::Ordering;
    use std::sync::Arc;

    const FRAME: &[u8] = b"{\"stream\":\"R\",\"row\":[1],\"ts\":1000}\n";

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.add_stream("R", Schema::from_pairs(&[("a", DataType::Int)]));
        c
    }

    /// A socketless server under a frozen `VirtualClock` — the core is
    /// driven entirely by hand, so nothing in these tests depends on
    /// wall time or real readiness.
    fn start_server(fault: FaultPlan, budget: u64) -> Server {
        let mut cfg = ServerConfig::new("SELECT a, COUNT(*) FROM R GROUP BY a", catalog());
        cfg.fault = fault;
        cfg.conn_error_budget = budget;
        Server::start(&cfg, None, Arc::new(VirtualClock::new())).unwrap()
    }

    type Log = Rc<RefCell<Vec<String>>>;

    /// A scripted fake socket. Reads pop from a queue (empty queue =
    /// `WouldBlock`, i.e. a quiet peer); writes follow a plan of
    /// accepted byte counts (empty plan = accept everything). `Drop`
    /// logs the close, so teardown ordering is observable.
    struct FakeSock {
        name: &'static str,
        reads: VecDeque<io::Result<Vec<u8>>>,
        writes: VecDeque<io::Result<usize>>,
        written: Rc<RefCell<Vec<u8>>>,
        log: Log,
    }

    impl FakeSock {
        fn new(name: &'static str, log: &Log) -> FakeSock {
            FakeSock {
                name,
                reads: VecDeque::new(),
                writes: VecDeque::new(),
                written: Rc::new(RefCell::new(Vec::new())),
                log: Rc::clone(log),
            }
        }
        fn push_read(&mut self, bytes: &[u8]) {
            self.reads.push_back(Ok(bytes.to_vec()));
        }
        fn push_eof(&mut self) {
            self.reads.push_back(Ok(Vec::new()));
        }
        fn push_write(&mut self, r: io::Result<usize>) {
            self.writes.push_back(r);
        }
        fn sink(&self) -> Rc<RefCell<Vec<u8>>> {
            Rc::clone(&self.written)
        }
    }

    impl ConnIo for FakeSock {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            match self.reads.pop_front() {
                Some(Ok(bytes)) => {
                    let n = bytes.len().min(buf.len());
                    buf[..n].copy_from_slice(&bytes[..n]);
                    // A chopped read leaves the rest "in the kernel
                    // buffer" for the next call.
                    if n < bytes.len() {
                        self.reads.push_front(Ok(bytes[n..].to_vec()));
                    }
                    Ok(n)
                }
                Some(Err(e)) => Err(e),
                None => Err(io::Error::new(io::ErrorKind::WouldBlock, "quiet")),
            }
        }
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            match self.writes.pop_front() {
                Some(Ok(cap)) => {
                    let n = cap.min(buf.len());
                    self.written.borrow_mut().extend_from_slice(&buf[..n]);
                    Ok(n)
                }
                Some(Err(e)) => Err(e),
                None => {
                    self.written.borrow_mut().extend_from_slice(buf);
                    Ok(buf.len())
                }
            }
        }
    }

    impl Drop for FakeSock {
        fn drop(&mut self) {
            self.log.borrow_mut().push(format!("close {}", self.name));
        }
    }

    /// A fake readiness source that records every interest change.
    struct FakeInterests {
        log: Log,
    }

    impl Interests for FakeInterests {
        fn rearm(&mut self, token: u64, want_write: bool) {
            let kind = if want_write { "rw" } else { "r" };
            self.log.borrow_mut().push(format!("rearm {token} {kind}"));
        }
        fn deregister(&mut self, token: u64) {
            self.log.borrow_mut().push(format!("deregister {token}"));
        }
    }

    fn rig(server: &Server, log: &Log) -> (ReactorCore<FakeSock>, FakeInterests) {
        (
            ReactorCore::new(server.handle(), ReactorObs::default()),
            FakeInterests {
                log: Rc::clone(log),
            },
        )
    }

    #[test]
    fn spurious_wakeup_is_a_no_op() {
        let server = start_server(FaultPlan::disabled(), 32);
        let log: Log = Rc::new(RefCell::new(Vec::new()));
        let (mut core, mut ints) = rig(&server, &log);
        core.add(1, 0, FakeSock::new("c1", &log));
        // The readiness source claims readable but the socket has
        // nothing: the sweep must not rearm, deregister, or close.
        assert_eq!(core.on_readable(1, &mut ints), ReadOutcome::Done);
        assert_eq!(core.conn_count(), 1);
        assert!(log.borrow().is_empty(), "log: {:?}", log.borrow());
        server.shutdown().unwrap();
    }

    #[test]
    fn write_backpressure_rearms_then_drains() {
        let server = start_server(FaultPlan::disabled(), 32);
        let log: Log = Rc::new(RefCell::new(Vec::new()));
        let (mut core, mut ints) = rig(&server, &log);
        let mut sock = FakeSock::new("c1", &log);
        sock.push_read(b"{\"cmd\":\"list\"}\n");
        sock.push_write(Ok(2)); // short write...
        sock.push_write(Err(io::Error::new(io::ErrorKind::WouldBlock, "full")));
        let sink = sock.sink();
        core.add(1, 0, sock);
        // The list reply doesn't fit: write interest joins the mask.
        assert_eq!(core.on_readable(1, &mut ints), ReadOutcome::Done);
        assert_eq!(log.borrow().last().unwrap(), "rearm 1 rw");
        // Writable again: the remainder drains, read-only restored.
        core.on_writable(1, &mut ints);
        assert_eq!(log.borrow().last().unwrap(), "rearm 1 r");
        assert_eq!(core.conn_count(), 1);
        let written = String::from_utf8(sink.borrow().clone()).unwrap();
        assert!(written.starts_with("{\"queries\":"), "reply: {written}");
        assert!(written.ends_with('\n'));
        server.shutdown().unwrap();
    }

    #[test]
    fn budget_teardown_orders_farewell_deregister_close() {
        let server = start_server(FaultPlan::disabled(), 2);
        let log: Log = Rc::new(RefCell::new(Vec::new()));
        let (mut core, mut ints) = rig(&server, &log);
        let mut sock = FakeSock::new("c1", &log);
        sock.push_read(b"not json\nstill not json\n");
        let sink = sock.sink();
        core.add(1, 0, sock);
        assert_eq!(core.on_readable(1, &mut ints), ReadOutcome::Done);
        assert_eq!(core.conn_count(), 0);
        let written = String::from_utf8(sink.borrow().clone()).unwrap();
        assert!(
            written.contains("error budget exhausted"),
            "farewell flushed before the socket dropped: {written}"
        );
        // Pinned teardown ordering: interest leaves the registry
        // strictly before the socket closes.
        assert_eq!(*log.borrow(), vec!["deregister 1", "close c1"]);
        assert_eq!(server.stats().parse_errors.load(Ordering::SeqCst), 2);
        server.shutdown().unwrap();
    }

    #[test]
    fn eof_counts_the_torn_trailing_frame() {
        let server = start_server(FaultPlan::disabled(), 32);
        let log: Log = Rc::new(RefCell::new(Vec::new()));
        let (mut core, mut ints) = rig(&server, &log);
        let mut sock = FakeSock::new("c1", &log);
        let mut bytes = FRAME.to_vec();
        bytes.extend_from_slice(b"{\"stream\":\"R\","); // torn mid-frame
        sock.push_read(&bytes);
        sock.push_eof();
        core.add(1, 0, sock);
        assert_eq!(core.on_readable(1, &mut ints), ReadOutcome::Done);
        // Clean EOF: the whole frame reached the engine; the torn
        // fragment counts against parse_errors like any bad line.
        assert_eq!(core.conn_count(), 0);
        let stats = server.stats();
        assert_eq!(stats.stream(0).offered.load(Ordering::SeqCst), 1);
        assert_eq!(stats.parse_errors.load(Ordering::SeqCst), 1);
        assert_eq!(*log.borrow(), vec!["deregister 1", "close c1"]);
        server.shutdown().unwrap();
    }

    #[test]
    fn injected_read_disconnect_drops_the_fragment_uncounted() {
        // Accept index 7, read attempt 1 tears: read 0 delivers one
        // whole frame plus a fragment, then the wire "breaks".
        let plan = FaultPlan::disabled().inject_read_disconnect(7, 1);
        let server = start_server(plan, 32);
        let log: Log = Rc::new(RefCell::new(Vec::new()));
        let (mut core, mut ints) = rig(&server, &log);
        let mut sock = FakeSock::new("c1", &log);
        let mut bytes = FRAME.to_vec();
        bytes.extend_from_slice(b"{\"stream\":\"R\",");
        sock.push_read(&bytes);
        core.add(1, 7, sock);
        assert_eq!(core.on_readable(1, &mut ints), ReadOutcome::Done);
        // Abrupt teardown: the completed frame was processed, but the
        // fragment's bytes never finished arriving — unlike the clean
        // EOF case it does NOT touch the error budget.
        assert_eq!(core.conn_count(), 0);
        let stats = server.stats();
        assert_eq!(stats.stream(0).offered.load(Ordering::SeqCst), 1);
        assert_eq!(stats.parse_errors.load(Ordering::SeqCst), 0);
        assert_eq!(*log.borrow(), vec!["deregister 1", "close c1"]);
        server.shutdown().unwrap();
    }

    #[test]
    fn injected_read_chop_shortens_reads_losslessly() {
        // Every read on accept index 0 is chopped to 1..=7 bytes; the
        // frame still reassembles bit-identically.
        let plan = FaultPlan::disabled().with_seed(3);
        let plan = {
            let mut p = plan;
            p.read_chop_rate = 1.0;
            p
        };
        let server = start_server(plan, 32);
        let log: Log = Rc::new(RefCell::new(Vec::new()));
        let (mut core, mut ints) = rig(&server, &log);
        let mut sock = FakeSock::new("c1", &log);
        sock.push_read(FRAME);
        core.add(1, 0, sock);
        assert_eq!(core.on_readable(1, &mut ints), ReadOutcome::Done);
        assert_eq!(core.conn_count(), 1);
        let stats = server.stats();
        assert_eq!(stats.stream(0).offered.load(Ordering::SeqCst), 1);
        assert_eq!(stats.parse_errors.load(Ordering::SeqCst), 0);
        server.shutdown().unwrap();
    }

    #[test]
    fn idle_ticks_flush_holdbacks_under_a_frozen_clock() {
        // Delay rate 1.0: the single data line is held back, so
        // nothing reaches the engine until the idle-tick flush.
        let plan = {
            let mut p = FaultPlan::disabled().with_seed(11);
            p.delay_rate = 1.0;
            p
        };
        let server = start_server(plan, 32);
        let log: Log = Rc::new(RefCell::new(Vec::new()));
        let (mut core, mut ints) = rig(&server, &log);
        let mut sock = FakeSock::new("c1", &log);
        sock.push_read(FRAME);
        core.add(1, 0, sock);
        assert_eq!(core.on_readable(1, &mut ints), ReadOutcome::Done);
        let offered = || server.stats().stream(0).offered.load(Ordering::SeqCst);
        assert_eq!(offered(), 0, "line held back by the fault plan");
        // IDLE_TICKS quiet ticks later the holdback flushes; the
        // connection itself stays open. VirtualClock never moves —
        // idleness is tick-counted, not wall-timed.
        for _ in 0..IDLE_TICKS {
            core.on_tick(&mut ints);
        }
        assert_eq!(offered(), 1);
        assert_eq!(core.conn_count(), 1);
        server.shutdown().unwrap();
    }

    #[test]
    fn reads_reset_the_idle_counter() {
        let plan = {
            let mut p = FaultPlan::disabled().with_seed(11);
            p.delay_rate = 1.0;
            p
        };
        let server = start_server(plan, 32);
        let log: Log = Rc::new(RefCell::new(Vec::new()));
        let (mut core, mut ints) = rig(&server, &log);
        let mut sock = FakeSock::new("c1", &log);
        sock.push_read(FRAME);
        core.add(1, 0, sock);
        core.on_readable(1, &mut ints);
        let offered = || server.stats().stream(0).offered.load(Ordering::SeqCst);
        // One tick short of the flush...
        for _ in 0..IDLE_TICKS - 1 {
            core.on_tick(&mut ints);
        }
        assert_eq!(offered(), 0);
        // ...then activity (even a spurious wakeup) resets the timer.
        core.on_readable(1, &mut ints);
        for _ in 0..IDLE_TICKS - 1 {
            core.on_tick(&mut ints);
        }
        assert_eq!(offered(), 0, "idle counter restarted after activity");
        core.on_tick(&mut ints);
        assert_eq!(offered(), 1);
        server.shutdown().unwrap();
    }

    #[test]
    fn drain_all_closes_every_connection_in_one_sweep() {
        let server = start_server(FaultPlan::disabled(), 32);
        let log: Log = Rc::new(RefCell::new(Vec::new()));
        let (mut core, mut ints) = rig(&server, &log);
        core.add(1, 0, FakeSock::new("c1", &log));
        core.add(2, 1, FakeSock::new("c2", &log));
        core.drain_all(&mut ints);
        assert_eq!(core.conn_count(), 0);
        let log = log.borrow();
        assert!(log.contains(&"close c1".to_string()), "log: {log:?}");
        assert!(log.contains(&"close c2".to_string()), "log: {log:?}");
        server.shutdown().unwrap();
    }

    #[test]
    fn burst_cap_yields_and_resumes_via_carry() {
        let server = start_server(FaultPlan::disabled(), 32);
        let log: Log = Rc::new(RefCell::new(Vec::new()));
        let (mut core, mut ints) = rig(&server, &log);
        let mut sock = FakeSock::new("c1", &log);
        // More than READ_BURST_CAP bytes of valid frames, in
        // READ_CHUNK-sized scripted reads.
        let frames_per_chunk = READ_CHUNK / FRAME.len();
        let chunk: Vec<u8> = FRAME.repeat(frames_per_chunk);
        let chunks = READ_BURST_CAP / chunk.len() + 2;
        for _ in 0..chunks {
            sock.push_read(&chunk);
        }
        core.add(1, 0, sock);
        // First sweep: the cap fires mid-stream.
        assert_eq!(core.on_readable(1, &mut ints), ReadOutcome::Yielded);
        let after_first = server.stats().stream(0).offered.load(Ordering::SeqCst);
        assert!(after_first < (frames_per_chunk * chunks) as u64);
        // The carry re-run finishes the backlog.
        assert_eq!(core.on_readable(1, &mut ints), ReadOutcome::Done);
        assert_eq!(
            server.stats().stream(0).offered.load(Ordering::SeqCst),
            (frames_per_chunk * chunks) as u64
        );
        assert_eq!(core.conn_count(), 1);
        server.shutdown().unwrap();
    }
}
