//! Deterministic fault injection for the streaming runtime.
//!
//! Overload is Data Triage's normal case; *faults* — garbage frames,
//! half-closed sockets, crashing workers, stalled sealers — are the
//! production reality layered on top. A [`FaultPlan`] is a seeded,
//! pure decision function the runtime consults at well-defined
//! injection points:
//!
//! * **Ingest** (both socket planes, via `IngestSession`): corrupt a
//!   frame line, hold a line back for a few frames (delayed/reordered
//!   delivery), or close the connection after a frame (mid-frame
//!   disconnect).
//! * **Readiness layer** (the event-loop plane's reactors): chop a
//!   nonblocking read short (a mid-frame partial read — the frame
//!   assembler must reassemble across the seam) or tear the
//!   connection down at a specific read. These are keyed by *accept
//!   order* and *read index*, not line numbers: they model the
//!   network delivering bytes in arbitrary pieces, below the framing
//!   layer, and only the event-loop plane consults them.
//! * **Workers** (`run_worker`): panic after consuming a specific
//!   tuple — exercised against the supervisor's restart path.
//! * **Sealing** (`run_worker`): swallow a seal watermark once, so a
//!   stream's windows stall until the next watermark (or the merger's
//!   watchdog force-seals them).
//!
//! Every decision is a hash of `(seed, domain, a, b)` — no interior
//! state, no RNG stream to keep in sync — so a test harness holding
//! the same plan can *predict* every injection from the indices it
//! already tracks (connection number, line number, window id). That
//! prediction is what lets the chaos suite assert fault-free windows
//! are bit-identical to a no-fault run.
//!
//! Rates express approximate per-event probabilities; explicit
//! `inject_*` entries fire regardless of rates, which is how targeted
//! tests schedule exactly one fault at exactly one place.

/// What to do to a frame line selected for corruption.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Corruption {
    /// Cut the line short at a seeded offset (a torn write).
    Truncate,
    /// Replace the line with bytes that are not a frame at all.
    Garbage,
}

/// A seeded, deterministic fault schedule. See the module docs.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    seed: u64,
    /// Per-line probability of corrupting an ingest frame.
    pub corrupt_rate: f64,
    /// Per-line probability of holding a frame back (reordering).
    pub delay_rate: f64,
    /// Per-line probability of closing the connection after the line.
    pub disconnect_rate: f64,
    /// Per-consumed-tuple probability of a worker panic.
    pub worker_panic_rate: f64,
    /// Per-watermark probability of a worker swallowing a seal.
    pub seal_stall_rate: f64,
    /// Per-read probability of chopping a readiness-layer read short
    /// (event-loop plane only; lossless — the bytes arrive on the
    /// next read).
    pub read_chop_rate: f64,
    /// Per-read probability of tearing a connection down at the
    /// readiness layer (event-loop plane only; abrupt — unread bytes
    /// and any torn trailing fragment are lost).
    pub read_disconnect_rate: f64,
    /// Explicit injections: corrupt line `line` of ingest connection
    /// `conn`.
    inject_corrupt: Vec<(u64, u64)>,
    /// Explicit injections: disconnect after line `line` of `conn`.
    inject_disconnect: Vec<(u64, u64)>,
    /// Explicit injections: panic worker `stream` after consuming its
    /// `consumed`-th tuple (1-based).
    inject_panic: Vec<(usize, u64)>,
    /// Explicit injections: worker `stream` swallows the watermark
    /// sealing through window `upto`.
    inject_stall: Vec<(usize, u64)>,
    /// Explicit injections: chop read `read` of accepted connection
    /// `conn` (accept order) short.
    inject_read_chop: Vec<(u64, u64)>,
    /// Explicit injections: tear connection `conn` (accept order)
    /// down at read `read`.
    inject_read_disconnect: Vec<(u64, u64)>,
}

/// Hash domains keep decision families independent of each other.
const D_CORRUPT: u64 = 1;
const D_CORRUPT_KIND: u64 = 2;
const D_DELAY: u64 = 3;
const D_DELAY_DEPTH: u64 = 4;
const D_DISCONNECT: u64 = 5;
const D_PANIC: u64 = 6;
const D_STALL: u64 = 7;
const D_TRUNCATE_AT: u64 = 8;
const D_READ_CHOP: u64 = 9;
const D_READ_CHOP_LEN: u64 = 10;
const D_READ_DISCONNECT: u64 = 11;

impl FaultPlan {
    /// The no-fault plan: every decision is "don't".
    pub fn disabled() -> Self {
        FaultPlan::default()
    }

    /// A plan with the default chaos-soak rates: faults are frequent
    /// enough to exercise every recovery path over a few hundred
    /// frames, rare enough that most windows stay fault-free.
    pub fn seeded(seed: u64) -> Self {
        FaultPlan {
            seed,
            corrupt_rate: 0.01,
            delay_rate: 0.05,
            disconnect_rate: 0.004,
            worker_panic_rate: 0.004,
            seal_stall_rate: 0.15,
            ..FaultPlan::default()
        }
    }

    /// True when no fault can ever fire (the hot paths skip their
    /// injection checks entirely).
    pub fn is_disabled(&self) -> bool {
        self.corrupt_rate == 0.0
            && self.delay_rate == 0.0
            && self.disconnect_rate == 0.0
            && self.worker_panic_rate == 0.0
            && self.seal_stall_rate == 0.0
            && self.read_chop_rate == 0.0
            && self.read_disconnect_rate == 0.0
            && self.inject_corrupt.is_empty()
            && self.inject_disconnect.is_empty()
            && self.inject_panic.is_empty()
            && self.inject_stall.is_empty()
            && self.inject_read_chop.is_empty()
            && self.inject_read_disconnect.is_empty()
    }

    /// Set the plan's seed without touching any rate — explicit
    /// `inject_*` schedules stay deterministic either way, but seeded
    /// rate decisions (and chop lengths) key off it.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Schedule one corruption of line `line` on ingest connection
    /// `conn` (both 0-based).
    pub fn inject_corrupt(mut self, conn: u64, line: u64) -> Self {
        self.inject_corrupt.push((conn, line));
        self
    }

    /// Schedule one disconnect after line `line` of connection `conn`.
    pub fn inject_disconnect(mut self, conn: u64, line: u64) -> Self {
        self.inject_disconnect.push((conn, line));
        self
    }

    /// Schedule one panic of worker `stream` after it consumes its
    /// `consumed`-th tuple (1-based, cumulative across restarts).
    pub fn inject_worker_panic(mut self, stream: usize, consumed: u64) -> Self {
        self.inject_panic.push((stream, consumed));
        self
    }

    /// Schedule worker `stream` to swallow the watermark that seals
    /// through window `upto`.
    pub fn inject_seal_stall(mut self, stream: usize, upto: u64) -> Self {
        self.inject_stall.push((stream, upto));
        self
    }

    /// Schedule one readiness-layer chop: read `read` (0-based) of
    /// the `conn`-th accepted connection is cut to a few bytes.
    pub fn inject_read_chop(mut self, conn: u64, read: u64) -> Self {
        self.inject_read_chop.push((conn, read));
        self
    }

    /// Schedule one readiness-layer teardown: the `conn`-th accepted
    /// connection is torn down at its `read`-th read (0-based).
    pub fn inject_read_disconnect(mut self, conn: u64, read: u64) -> Self {
        self.inject_read_disconnect.push((conn, read));
        self
    }

    /// splitmix64 over `(seed, domain, a, b)` — the one source of
    /// randomness, stateless and order-independent.
    fn roll(&self, domain: u64, a: u64, b: u64) -> u64 {
        let mut x = self
            .seed
            .wrapping_mul(0x9e3779b97f4a7c15)
            .wrapping_add(domain.wrapping_mul(0xbf58476d1ce4e5b9))
            .wrapping_add(a.wrapping_mul(0x94d049bb133111eb))
            .wrapping_add(b.wrapping_add(0x2545f4914f6cdd1d));
        x ^= x >> 30;
        x = x.wrapping_mul(0xbf58476d1ce4e5b9);
        x ^= x >> 27;
        x = x.wrapping_mul(0x94d049bb133111eb);
        x ^= x >> 31;
        x
    }

    fn hit(&self, rate: f64, domain: u64, a: u64, b: u64) -> bool {
        rate > 0.0 && (self.roll(domain, a, b) as f64) < rate * (u64::MAX as f64)
    }

    /// Should line `line` of ingest connection `conn` be corrupted,
    /// and how?
    pub fn corrupt(&self, conn: u64, line: u64) -> Option<Corruption> {
        if self.inject_corrupt.contains(&(conn, line))
            || self.hit(self.corrupt_rate, D_CORRUPT, conn, line)
        {
            Some(if self.roll(D_CORRUPT_KIND, conn, line) & 1 == 0 {
                Corruption::Truncate
            } else {
                Corruption::Garbage
            })
        } else {
            None
        }
    }

    /// Apply a corruption decision to a frame line. Both kinds are
    /// guaranteed unparseable: a frame needs its closing brace, and
    /// the garbage bytes are not JSON.
    pub fn corrupt_line(&self, kind: Corruption, conn: u64, line: u64, text: &str) -> String {
        match kind {
            Corruption::Truncate => {
                let cut = 1
                    + (self.roll(D_TRUNCATE_AT, conn, line) as usize)
                        % text.len().saturating_sub(1).max(1);
                text.chars().take(cut).collect()
            }
            Corruption::Garbage => format!("@@fault-injected-garbage:{conn}:{line}@@"),
        }
    }

    /// Hold line `line` of connection `conn` back for `Some(k)` more
    /// lines (released after `k` subsequent lines, or when the
    /// connection goes idle or closes).
    pub fn delay(&self, conn: u64, line: u64) -> Option<u64> {
        if self.hit(self.delay_rate, D_DELAY, conn, line) {
            Some(1 + self.roll(D_DELAY_DEPTH, conn, line) % 4)
        } else {
            None
        }
    }

    /// Close connection `conn` right after processing line `line`?
    pub fn disconnect_after(&self, conn: u64, line: u64) -> bool {
        self.inject_disconnect.contains(&(conn, line))
            || self.hit(self.disconnect_rate, D_DISCONNECT, conn, line)
    }

    /// Should worker `stream` panic after consuming its `consumed`-th
    /// tuple (1-based, cumulative across restarts)?
    pub fn worker_panic(&self, stream: usize, consumed: u64) -> bool {
        self.inject_panic.contains(&(stream, consumed))
            || self.hit(self.worker_panic_rate, D_PANIC, stream as u64, consumed)
    }

    /// Should worker `stream` swallow the watermark sealing through
    /// `upto`? (Watermarks are cumulative, so the stalled windows are
    /// still sealed by the next watermark — or force-sealed by the
    /// merger's watchdog first.)
    pub fn stall_seal(&self, stream: usize, upto: u64) -> bool {
        self.inject_stall.contains(&(stream, upto))
            || self.hit(self.seal_stall_rate, D_STALL, stream as u64, upto)
    }

    /// Should read `read` of accepted connection `conn` be chopped
    /// short, and to how many bytes? Chops are lossless: the frame
    /// assembler sees the same byte stream, just in smaller pieces —
    /// this exercises exactly the mid-frame partial reads nonblocking
    /// sockets produce. (Event-loop plane only; keyed by accept order
    /// and per-connection read index, *not* line numbers, because it
    /// models the transport below the framing layer.)
    pub fn read_chop(&self, conn: u64, read: u64) -> Option<usize> {
        if self.inject_read_chop.contains(&(conn, read))
            || self.hit(self.read_chop_rate, D_READ_CHOP, conn, read)
        {
            Some(1 + (self.roll(D_READ_CHOP_LEN, conn, read) as usize) % 7)
        } else {
            None
        }
    }

    /// Tear accepted connection `conn` down at its `read`-th read?
    /// Abrupt, like a vanished peer: unread socket bytes and any torn
    /// trailing fragment are lost (uncounted), completed lines and
    /// holdbacks still reach the engine.
    pub fn read_disconnect(&self, conn: u64, read: u64) -> bool {
        self.inject_read_disconnect.contains(&(conn, read))
            || self.hit(self.read_disconnect_rate, D_READ_DISCONNECT, conn, read)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_plan_never_fires() {
        let p = FaultPlan::disabled();
        assert!(p.is_disabled());
        for i in 0..500 {
            assert!(p.corrupt(0, i).is_none());
            assert!(p.delay(0, i).is_none());
            assert!(!p.disconnect_after(0, i));
            assert!(!p.worker_panic(0, i));
            assert!(!p.stall_seal(0, i));
            assert!(p.read_chop(0, i).is_none());
            assert!(!p.read_disconnect(0, i));
        }
    }

    #[test]
    fn readiness_injections_fire_exactly_where_scheduled() {
        let p = FaultPlan::disabled()
            .inject_read_chop(2, 1)
            .inject_read_disconnect(3, 0);
        assert!(!p.is_disabled());
        let chop = p.read_chop(2, 1).expect("scheduled chop fires");
        assert!((1..=7).contains(&chop), "chop lengths stay tiny: {chop}");
        assert!(p.read_chop(2, 2).is_none());
        assert!(p.read_chop(1, 1).is_none());
        assert!(p.read_disconnect(3, 0));
        assert!(!p.read_disconnect(3, 1));
        assert!(!p.read_disconnect(0, 0));
    }

    #[test]
    fn read_chop_rate_is_deterministic_per_seed() {
        let mut a = FaultPlan::disabled().with_seed(9);
        a.read_chop_rate = 0.25;
        let hits: Vec<u64> = (0..400).filter(|&i| a.read_chop(1, i).is_some()).collect();
        let mut b = FaultPlan::disabled().with_seed(9);
        b.read_chop_rate = 0.25;
        let again: Vec<u64> = (0..400).filter(|&i| b.read_chop(1, i).is_some()).collect();
        assert_eq!(hits, again);
        assert!(!hits.is_empty(), "25% over 400 reads must fire");
    }

    #[test]
    fn decisions_are_deterministic_and_seed_sensitive() {
        let a = FaultPlan::seeded(7);
        let b = FaultPlan::seeded(7);
        let c = FaultPlan::seeded(8);
        let hits = |p: &FaultPlan| -> Vec<u64> {
            (0..2000).filter(|&i| p.corrupt(0, i).is_some()).collect()
        };
        assert_eq!(hits(&a), hits(&b), "same seed, same schedule");
        assert_ne!(hits(&a), hits(&c), "different seed, different schedule");
        assert!(!hits(&a).is_empty(), "1% over 2000 lines must fire");
    }

    #[test]
    fn rates_land_in_the_right_ballpark() {
        let p = FaultPlan::seeded(42);
        let n = 100_000u64;
        let corrupt = (0..n).filter(|&i| p.corrupt(3, i).is_some()).count() as f64 / n as f64;
        assert!((0.005..0.02).contains(&corrupt), "corrupt rate {corrupt}");
        let delay = (0..n).filter(|&i| p.delay(3, i).is_some()).count() as f64 / n as f64;
        assert!((0.03..0.08).contains(&delay), "delay rate {delay}");
    }

    #[test]
    fn explicit_injections_fire_exactly_where_scheduled() {
        let p = FaultPlan::disabled()
            .inject_corrupt(1, 5)
            .inject_disconnect(0, 9)
            .inject_worker_panic(2, 100)
            .inject_seal_stall(0, 3);
        assert!(p.corrupt(1, 5).is_some());
        assert!(p.corrupt(1, 6).is_none());
        assert!(p.disconnect_after(0, 9));
        assert!(!p.disconnect_after(1, 9));
        assert!(p.worker_panic(2, 100));
        assert!(!p.worker_panic(2, 99));
        assert!(p.stall_seal(0, 3));
        assert!(!p.stall_seal(1, 3));
        assert!(!p.is_disabled());
    }

    #[test]
    fn corrupted_lines_never_parse_as_frames() {
        let p = FaultPlan::seeded(3);
        let valid = r#"{"stream":"R","row":[17,4],"ts":1500000}"#;
        for line in 0..200 {
            for kind in [Corruption::Truncate, Corruption::Garbage] {
                let mangled = p.corrupt_line(kind, 0, line, valid);
                assert!(
                    crate::frame::parse_frame(&mangled).is_err(),
                    "corruption must make the frame unparseable: {mangled:?}"
                );
            }
        }
    }
}
