//! `dt-serve` — run a Data Triage server on a TCP socket, or talk to
//! a running one.
//!
//! ```text
//! dt-serve --stream 'R:a' --query 'SELECT a, COUNT(*) FROM R GROUP BY a' \
//!          --listen 127.0.0.1:7077 --window 1.0 --capacity 100
//! ```
//!
//! Clients send newline-delimited JSON tuple frames
//! (`{"stream":"R","row":[17],"ts":1500000}`); a first line starting
//! with `GET ` turns the connection into an HTTP-ish probe instead:
//! `GET /stats` answers the live counters as JSON, `GET /metrics` the
//! Prometheus text exposition (curl both). The server runs until stdin
//! reaches EOF (pipe `/dev/null` for "run until killed" semantics
//! under a supervisor, or press Ctrl-D interactively), then drains
//! gracefully and prints the final JSON report to stdout.
//!
//! The `register`, `unregister`, and `list` subcommands act as a
//! loopback control client against a *running* server: queries come
//! and go at runtime without restarting the dataflow (see
//! `dt-registry`).

use dt_obs::MetricsRegistry;
use dt_query::Catalog;
use dt_server::{Client, IngestPlane, MonotonicClock, Server, ServerConfig};
use dt_synopsis::SynopsisConfig;
use dt_triage::{DelayConstraint, ShedMode};
use dt_types::{DataType, DtError, DtResult, Schema, ToJson, VDuration};
use std::io::Read;
use std::sync::Arc;

const USAGE: &str = "\
dt-serve — serve Data Triage pipelines over TCP

USAGE:
  dt-serve --stream NAME:col[,col…] [--stream …] --query SQL [--query …]
           [--queries FILE]   read ;-separated statements from FILE
           [--listen ADDR]    listen address        (default 127.0.0.1:7077)
           [--window SECS]    window width override (default: per query)
           [--capacity N]     triage channel bound  (default 100)
           [--grace MS]       seal grace period     (default 100)
           [--cell-width N]   sparse synopsis cell  (default 10)
           [--delay-ms MS]    adaptive delay constraint (default: off —
                              shed only on channel overflow)
           [--mode M]         data-triage | drop-only | summarize-only
           [--ingest P]       socket plane: eventloop (default — epoll
                              reactor pool) | threaded (one blocking
                              thread per connection)
           [--reactors N]     event-loop reactor threads (default 0 =
                              auto: min(cores, 4))
           [--shards N]       worker-group size per stream (default 1;
                              >1 partitions each stream's triage across
                              N shard workers with work-stealing —
                              DESIGN.md §15)
           [--no-pacing]      consume ahead of tuple timestamps
           [--no-metrics]     disable the /metrics registry
           [--fault-disconnect CONN:LINE]
                              chaos: drop ingest connection CONN after
                              LINE lines (deterministic FaultPlan);
                              repeatable — each occurrence adds one
                              injection

  dt-serve send --addr ADDR
                     forward NDJSON tuple frames from stdin to a
                     running server (reconnect-and-resend on failure)
  dt-serve register --addr ADDR --sql SQL
           [--tenant NAME] [--delay-ms MS] [--weight W]
                     register a query on a running server; prints its id
  dt-serve unregister --addr ADDR --id N
                     detach query N at the next window boundary
  dt-serve list --addr ADDR
                     list every query the server has registered

All stream columns are integers. `GET /stats` returns live counters as
JSON; `GET /metrics` returns Prometheus text exposition. Runs until
stdin EOF, then drains and prints the final JSON report.";

struct Args {
    listen: String,
    streams: Vec<(String, Vec<String>)>,
    queries: Vec<String>,
    window: Option<VDuration>,
    capacity: usize,
    grace: VDuration,
    cell_width: i64,
    delay: Option<DelayConstraint>,
    mode: ShedMode,
    ingest: IngestPlane,
    shards: usize,
    pacing: bool,
    metrics: bool,
    fault_disconnect: Vec<(u64, u64)>,
}

fn parse_args(argv: &[String]) -> DtResult<Args> {
    let mut args = Args {
        listen: "127.0.0.1:7077".to_string(),
        streams: Vec::new(),
        queries: Vec::new(),
        window: None,
        capacity: 100,
        grace: VDuration::from_millis(100),
        cell_width: 10,
        delay: None,
        mode: ShedMode::DataTriage,
        ingest: IngestPlane::default(),
        shards: 1,
        pacing: true,
        metrics: true,
        fault_disconnect: Vec::new(),
    };
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        let mut value = || {
            it.next()
                .cloned()
                .ok_or_else(|| DtError::config(format!("{flag} needs a value")))
        };
        match flag.as_str() {
            "--listen" => args.listen = value()?,
            "--stream" => {
                let spec = value()?;
                let (name, cols) = spec
                    .split_once(':')
                    .ok_or_else(|| DtError::config("--stream wants NAME:col[,col…]"))?;
                args.streams.push((
                    name.to_string(),
                    cols.split(',').map(str::to_string).collect(),
                ));
            }
            "--query" => args.queries.push(value()?),
            "--queries" => {
                let path = value()?;
                let text = std::fs::read_to_string(&path)
                    .map_err(|e| DtError::config(format!("--queries {path}: {e}")))?;
                args.queries.extend(split_statements(&text));
            }
            "--window" => {
                let secs: f64 = value()?
                    .parse()
                    .map_err(|_| DtError::config("--window wants seconds"))?;
                args.window = Some(VDuration::from_secs_f64(secs));
            }
            "--capacity" => {
                args.capacity = value()?
                    .parse()
                    .map_err(|_| DtError::config("--capacity wants an integer"))?;
            }
            "--grace" => {
                let ms: u64 = value()?
                    .parse()
                    .map_err(|_| DtError::config("--grace wants milliseconds"))?;
                args.grace = VDuration::from_millis(ms);
            }
            "--cell-width" => {
                args.cell_width = value()?
                    .parse()
                    .map_err(|_| DtError::config("--cell-width wants an integer"))?;
            }
            "--delay-ms" => {
                let ms: u64 = value()?
                    .parse()
                    .map_err(|_| DtError::config("--delay-ms wants milliseconds"))?;
                args.delay = Some(DelayConstraint::from_millis(ms)?);
            }
            "--mode" => {
                args.mode = match value()?.as_str() {
                    "data-triage" => ShedMode::DataTriage,
                    "drop-only" => ShedMode::DropOnly,
                    "summarize-only" => ShedMode::SummarizeOnly,
                    m => return Err(DtError::config(format!("unknown mode '{m}'"))),
                };
            }
            "--ingest" => args.ingest = IngestPlane::parse(&value()?)?,
            "--reactors" => {
                let n: usize = value()?
                    .parse()
                    .map_err(|_| DtError::config("--reactors wants an integer"))?;
                args.ingest = IngestPlane::EventLoop { reactors: n };
            }
            "--shards" => {
                args.shards = value()?
                    .parse()
                    .map_err(|_| DtError::config("--shards wants an integer"))?;
            }
            "--no-pacing" => args.pacing = false,
            "--no-metrics" => args.metrics = false,
            "--fault-disconnect" => {
                let spec = value()?;
                let (conn, line) = spec
                    .split_once(':')
                    .ok_or_else(|| DtError::config("--fault-disconnect wants CONN:LINE"))?;
                args.fault_disconnect.push((
                    conn.parse()
                        .map_err(|_| DtError::config("--fault-disconnect CONN wants an integer"))?,
                    line.parse()
                        .map_err(|_| DtError::config("--fault-disconnect LINE wants an integer"))?,
                ));
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(DtError::config(format!("unknown flag '{other}'"))),
        }
    }
    if args.streams.is_empty() || args.queries.is_empty() {
        return Err(DtError::config(
            "need at least one --stream and one --query (see --help)",
        ));
    }
    Ok(args)
}

/// Split a `--queries` file into statements: `;`-separated, comment
/// lines (leading `--`) stripped, blanks dropped.
fn split_statements(text: &str) -> Vec<String> {
    let stripped: String = text
        .lines()
        .filter(|l| !l.trim_start().starts_with("--"))
        .collect::<Vec<_>>()
        .join("\n");
    stripped
        .split(';')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(str::to_string)
        .collect()
}

/// The control-client subcommands (`register`/`unregister`/`list`).
fn run_client(cmd: &str, argv: &[String]) -> DtResult<()> {
    let mut addr = None;
    let mut sql = None;
    let mut tenant = None;
    let mut delay_ms = None;
    let mut weight = None;
    let mut id = None;
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        let mut value = || {
            it.next()
                .cloned()
                .ok_or_else(|| DtError::config(format!("{flag} needs a value")))
        };
        match flag.as_str() {
            "--addr" => addr = Some(value()?),
            "--sql" => sql = Some(value()?),
            "--tenant" => tenant = Some(value()?),
            "--delay-ms" => {
                delay_ms = Some(
                    value()?
                        .parse::<u64>()
                        .map_err(|_| DtError::config("--delay-ms wants milliseconds"))?,
                )
            }
            "--weight" => {
                weight = Some(
                    value()?
                        .parse::<f64>()
                        .map_err(|_| DtError::config("--weight wants a number"))?,
                )
            }
            "--id" => {
                id = Some(
                    value()?
                        .parse::<u64>()
                        .map_err(|_| DtError::config("--id wants an integer"))?,
                )
            }
            other => return Err(DtError::config(format!("unknown flag '{other}'"))),
        }
    }
    let addr = addr
        .ok_or_else(|| DtError::config(format!("{cmd} needs --addr HOST:PORT")))?
        .parse::<std::net::SocketAddr>()
        .map_err(|e| DtError::config(format!("bad --addr: {e}")))?;
    let mut client = Client::connect(addr)?;
    match cmd {
        "send" => {
            let mut sent = 0u64;
            for line in std::io::stdin().lines() {
                let line = line.map_err(|e| DtError::engine(format!("stdin: {e}")))?;
                if line.trim().is_empty() {
                    continue;
                }
                client.send_line(&line)?;
                sent += 1;
            }
            let retries = client.retries();
            client.close()?;
            eprintln!("dt-serve send: forwarded {sent} lines ({retries} retries)");
        }
        "register" => {
            let sql = sql.ok_or_else(|| DtError::config("register needs --sql"))?;
            let qid = client.register_query(&sql, tenant.as_deref(), delay_ms, weight)?;
            println!("registered {qid}");
        }
        "unregister" => {
            let id = id.ok_or_else(|| DtError::config("unregister needs --id"))?;
            let boundary = client.unregister_query(id)?;
            println!("unregistered {id} at window {boundary}");
        }
        "list" => {
            for q in client.list_queries()? {
                println!(
                    "{} {} tenant={} windows={} {}",
                    q.id,
                    if q.active { "active" } else { "detached" },
                    q.tenant.as_deref().unwrap_or("-"),
                    q.windows_emitted,
                    q.sql
                );
            }
        }
        _ => unreachable!(),
    }
    Ok(())
}

fn run() -> DtResult<()> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if let Some(cmd) = argv.first() {
        if matches!(cmd.as_str(), "send" | "register" | "unregister" | "list") {
            return run_client(cmd, &argv[1..]);
        }
    }
    let args = parse_args(&argv)?;

    let mut catalog = Catalog::new();
    for (name, cols) in &args.streams {
        let pairs: Vec<(&str, DataType)> =
            cols.iter().map(|c| (c.as_str(), DataType::Int)).collect();
        catalog.add_stream(name, Schema::from_pairs(&pairs));
    }
    let mut cfg = ServerConfig::new(args.queries[0].clone(), catalog);
    cfg.queries = args.queries.clone();
    cfg.mode = args.mode;
    cfg.window = args.window;
    cfg.channel_capacity = args.capacity;
    cfg.grace = args.grace;
    cfg.synopsis = SynopsisConfig::Sparse {
        cell_width: args.cell_width,
    };
    cfg.pace_by_timestamp = args.pacing;
    cfg.delay = args.delay;
    cfg.ingest = args.ingest;
    cfg.shards = args.shards;
    for &(conn, line) in &args.fault_disconnect {
        cfg.fault = std::mem::take(&mut cfg.fault).inject_disconnect(conn, line);
    }
    if args.metrics {
        cfg.metrics = MetricsRegistry::new();
    }

    let clock = Arc::new(MonotonicClock::new());
    let server = Server::start(&cfg, Some(&args.listen), clock)?;
    let addr = server.addr().expect("listener bound");
    eprintln!(
        "dt-serve: listening on {addr} ({:?} mode); EOF on stdin stops",
        args.mode
    );

    // Block until stdin closes, then drain.
    let mut sink = Vec::new();
    let _ = std::io::stdin().read_to_end(&mut sink);
    eprintln!("dt-serve: stdin closed, draining…");
    let report = server.shutdown()?;
    println!("{}", report.to_json().render_pretty());
    Ok(())
}

fn main() {
    if let Err(e) = run() {
        eprintln!("dt-serve: error: {e}");
        eprintln!("{USAGE}");
        std::process::exit(1);
    }
}
