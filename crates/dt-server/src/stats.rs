//! Live counters and the final run report.
//!
//! Counters are lock-free atomics shared between the ingest side
//! (offered/kept/shed), the workers (late), and the merger (windows
//! emitted) — `/stats` reads them without stopping the world. The
//! [`ServerReport`] is assembled once at shutdown from the drained
//! pipelines and serializes to JSON for `dt-metrics`.

use dt_metrics::RunSummary;
use dt_registry::QueryInfo;
use dt_triage::RunReport;
use dt_types::{json, Json, ToJson};
use std::sync::atomic::{AtomicU64, Ordering};

/// Counters for one ingest stream.
#[derive(Debug, Default)]
pub struct StreamCounters {
    /// Tuples presented to the stream (kept + shed).
    pub offered: AtomicU64,
    /// Tuples that entered the bounded channel.
    pub kept: AtomicU64,
    /// Tuples shed because the channel was full (or the mode sheds
    /// everything).
    pub shed: AtomicU64,
    /// Tuples that arrived after their window was already sealed.
    pub late: AtomicU64,
}

/// Shared live counters for the whole server.
#[derive(Debug)]
pub struct ServerStats {
    streams: Vec<(String, StreamCounters)>,
    /// Windows fully merged and emitted, across all queries.
    pub windows_emitted: AtomicU64,
    /// Ingest lines that failed to parse as tuple frames.
    pub parse_errors: AtomicU64,
    /// Emitted windows flagged degraded: some stream's contribution
    /// was incomplete beyond normal shedding (worker crash recovery or
    /// a watchdog force-seal). See DESIGN.md §10.
    pub windows_degraded: AtomicU64,
}

impl ServerStats {
    /// Fresh zeroed counters for the named streams.
    pub fn new(stream_names: &[String]) -> Self {
        ServerStats {
            streams: stream_names
                .iter()
                .map(|n| (n.clone(), StreamCounters::default()))
                .collect(),
            windows_emitted: AtomicU64::new(0),
            parse_errors: AtomicU64::new(0),
            windows_degraded: AtomicU64::new(0),
        }
    }

    /// Counters for stream `i` (panics on a bad index — stream
    /// indices come from the compiled executor).
    pub fn stream(&self, i: usize) -> &StreamCounters {
        &self.streams[i].1
    }

    /// Number of streams tracked.
    pub fn num_streams(&self) -> usize {
        self.streams.len()
    }

    /// Point-in-time copy of every stream's counters.
    pub fn snapshot(&self) -> Vec<StreamSnapshot> {
        self.streams
            .iter()
            .map(|(name, c)| StreamSnapshot {
                name: name.clone(),
                offered: c.offered.load(Ordering::SeqCst),
                kept: c.kept.load(Ordering::SeqCst),
                shed: c.shed.load(Ordering::SeqCst),
                late: c.late.load(Ordering::SeqCst),
            })
            .collect()
    }

    /// The `/stats` endpoint body: the counters as one JSON object.
    pub fn render_json(&self) -> Json {
        json::obj(vec![
            ("streams", self.snapshot().to_json()),
            (
                "windows_emitted",
                self.windows_emitted.load(Ordering::SeqCst).to_json(),
            ),
            (
                "parse_errors",
                self.parse_errors.load(Ordering::SeqCst).to_json(),
            ),
            (
                "windows_degraded",
                self.windows_degraded.load(Ordering::SeqCst).to_json(),
            ),
        ])
    }

    /// The legacy greppable text rendering: one `key value` line per
    /// counter.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for s in self.snapshot() {
            out.push_str(&format!(
                "stream {} offered {} kept {} shed {} late {}\n",
                s.name, s.offered, s.kept, s.shed, s.late
            ));
        }
        out.push_str(&format!(
            "windows_emitted {}\nparse_errors {}\nwindows_degraded {}\n",
            self.windows_emitted.load(Ordering::SeqCst),
            self.parse_errors.load(Ordering::SeqCst),
            self.windows_degraded.load(Ordering::SeqCst)
        ));
        out
    }
}

/// One stream's counters, frozen.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamSnapshot {
    /// Stream name from the catalog.
    pub name: String,
    /// Tuples presented to the stream.
    pub offered: u64,
    /// Tuples that entered the channel.
    pub kept: u64,
    /// Tuples shed on overflow.
    pub shed: u64,
    /// Tuples arriving after their window sealed.
    pub late: u64,
}

impl StreamSnapshot {
    /// Parse one `stream ...` line of the `/stats` text format back
    /// into a snapshot (the loopback client uses this).
    pub fn parse_line(line: &str) -> Option<StreamSnapshot> {
        let mut it = line.split_whitespace();
        if it.next()? != "stream" {
            return None;
        }
        let name = it.next()?.to_string();
        let mut field = |key: &str| -> Option<u64> {
            if it.next()? != key {
                return None;
            }
            it.next()?.parse().ok()
        };
        Some(StreamSnapshot {
            name,
            offered: field("offered")?,
            kept: field("kept")?,
            shed: field("shed")?,
            late: field("late")?,
        })
    }
}

impl StreamSnapshot {
    /// Parse the JSON object form back into a snapshot.
    pub fn from_json(j: &Json) -> Option<StreamSnapshot> {
        let field = |k: &str| j.get(k)?.as_i64().map(|v| v as u64);
        Some(StreamSnapshot {
            name: j.get("name")?.as_str()?.to_string(),
            offered: field("offered")?,
            kept: field("kept")?,
            shed: field("shed")?,
            late: field("late")?,
        })
    }
}

impl ToJson for StreamSnapshot {
    fn to_json(&self) -> Json {
        json::obj(vec![
            ("name", self.name.to_json()),
            ("offered", self.offered.to_json()),
            ("kept", self.kept.to_json()),
            ("shed", self.shed.to_json()),
            ("late", self.late.to_json()),
        ])
    }
}

/// Everything a finished run produced: one [`RunReport`] per query
/// (window results + totals, the same shape the simulation emits, so
/// `dt-metrics` accuracy tooling applies unchanged) plus the server's
/// own ingest counters.
#[derive(Debug, Clone)]
pub struct ServerReport {
    /// Per-query window results, indexed by [`dt_registry::QueryId`]
    /// (dense, never reused — index `i` is query `i`'s report).
    pub reports: Vec<RunReport>,
    /// Every query ever registered, in id order — parallel to
    /// `reports`. Covers runtime registrations and queries detached
    /// before shutdown.
    pub queries: Vec<QueryInfo>,
    /// Final per-stream ingest counters.
    pub streams: Vec<StreamSnapshot>,
    /// Windows fully merged and emitted (per query).
    pub windows_emitted: u64,
    /// Emitted windows flagged degraded (crash recovery or watchdog
    /// force-seal touched them).
    pub windows_degraded: u64,
    /// Observability snapshot taken during the graceful drain, when
    /// the server ran with a live [`dt_obs::MetricsRegistry`] — the
    /// last scrape interval survives shutdown.
    pub obs: Option<dt_obs::Snapshot>,
}

/// Render one [`QueryInfo`] as a JSON object (shared by `/stats`,
/// the `list` command reply, and the final report).
pub fn query_info_json(q: &QueryInfo) -> Json {
    json::obj(vec![
        ("id", (q.id as i64).to_json()),
        ("sql", q.sql.to_json()),
        (
            "tenant",
            match &q.tenant {
                Some(t) => t.to_json(),
                None => Json::Null,
            },
        ),
        (
            "delay_ms",
            match q.delay {
                Some(d) => Json::Num(d.micros() as f64 / 1000.0),
                None => Json::Null,
            },
        ),
        ("weight", Json::Num(q.weight)),
        (
            "streams",
            Json::Arr(q.streams.iter().map(|s| s.to_json()).collect()),
        ),
        ("active", Json::Bool(q.active())),
        ("active_from", (q.active_from as i64).to_json()),
        (
            "active_to",
            match q.active_to {
                Some(w) => (w as i64).to_json(),
                None => Json::Null,
            },
        ),
        ("windows_emitted", q.windows_emitted.to_json()),
        ("estimated_share", Json::Num(q.estimated_share)),
        ("shed_share", Json::Num(q.shed_share)),
    ])
}

impl ToJson for ServerReport {
    fn to_json(&self) -> Json {
        // Each query's section: its registration metadata joined with
        // the accuracy summary of its own window results.
        let summaries: Vec<Json> = self
            .reports
            .iter()
            .enumerate()
            .map(|(i, r)| {
                let mut doc = RunSummary::from_report(r).to_json();
                if let (Json::Obj(fields), Some(q)) = (&mut doc, self.queries.get(i)) {
                    fields.insert(0, ("query".to_string(), query_info_json(q)));
                }
                doc
            })
            .collect();
        json::obj(vec![
            ("reports", Json::Arr(summaries)),
            ("streams", self.streams.to_json()),
            ("windows_emitted", self.windows_emitted.to_json()),
            ("windows_degraded", self.windows_degraded.to_json()),
            (
                "obs",
                match &self.obs {
                    Some(s) => dt_metrics::obs_to_json(s),
                    None => Json::Null,
                },
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_rendering_roundtrips_stream_lines() {
        let stats = ServerStats::new(&["R".to_string(), "S".to_string()]);
        stats.stream(0).offered.store(10, Ordering::SeqCst);
        stats.stream(0).kept.store(7, Ordering::SeqCst);
        stats.stream(0).shed.store(3, Ordering::SeqCst);
        stats.windows_emitted.store(2, Ordering::SeqCst);
        let text = stats.render_text();
        let snaps: Vec<StreamSnapshot> = text
            .lines()
            .filter_map(StreamSnapshot::parse_line)
            .collect();
        assert_eq!(snaps.len(), 2);
        assert_eq!(snaps[0].name, "R");
        assert_eq!(snaps[0].offered, 10);
        assert_eq!(snaps[0].kept, 7);
        assert_eq!(snaps[0].shed, 3);
        assert_eq!(snaps[1].offered, 0);
        assert!(text.contains("windows_emitted 2"));
    }

    #[test]
    fn parse_line_rejects_garbage() {
        assert!(StreamSnapshot::parse_line("windows_emitted 2").is_none());
        assert!(StreamSnapshot::parse_line("stream R offered x kept 0 shed 0 late 0").is_none());
    }
}
