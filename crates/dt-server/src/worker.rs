//! The per-stream triage worker thread and its panic supervisor.
//!
//! Each worker owns one stream's [`StreamTriage`] and two inbound
//! lanes: the **bounded data channel** (the triage queue — ingest
//! `try_send`s kept tuples here) and an unbounded **control lane**
//! carrying shed victims, seal watermarks, and the stop request.
//! Control is drained first so a full data channel can never starve
//! sealing or victim accounting.
//!
//! With `pace` set, the worker refuses to consume a tuple before the
//! server clock reaches its timestamp, holding at most **one** tuple
//! aside. That single parked tuple plus the channel bound makes
//! overflow deterministic under a frozen virtual clock: at most
//! `capacity + 1` tuples fit upstream of the (stopped) engine, and
//! every tuple past that is shed — precisely the paper's triage-queue
//! overflow, reproduced under test control.
//!
//! # Supervision
//!
//! [`run_worker`] wraps the loop in a restart supervisor: a panic
//! (injected by the [`FaultPlan`] or a genuine bug) is caught with
//! `catch_unwind`, a fresh [`StreamTriage`] is built from the
//! [`TriageFactory`], and processing resumes from the crashed
//! instance's seal frontier. Windows the crashed instance had open
//! lose their accumulated contents; the replacement marks that range
//! *degraded* ([`StreamTriage::mark_degraded_until`]) so downstream
//! consumers know those results are incomplete beyond normal shedding
//! (DESIGN.md §10). The parked pacing tuple and the cumulative
//! consumed count live in the supervisor frame, so neither is lost to
//! a restart.

use crate::fault::FaultPlan;
use crate::obs::WorkerObs;
use crate::stats::ServerStats;
use crossbeam::channel::{Receiver, RecvTimeoutError, Sender, TryRecvError};
use dt_obs::{Counter, MetricsRegistry};
use dt_synopsis::SynopsisConfig;
use dt_triage::{SealedWindow, SharedController, ShedMode, StreamTriage};
use dt_types::{Clock, DtResult, Tuple, WindowId, WindowSpec};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How long the worker parks between polls when idle or paced.
const POLL: Duration = Duration::from_micros(500);

/// Control-lane messages, served ahead of data.
pub(crate) enum Ctl {
    /// A tuple shed at ingest (channel full, or a mode that sheds
    /// everything); fold it into the dropped synopsis.
    Shed(Tuple),
    /// Seal every window up to and including this id.
    Seal(WindowId),
    /// Drain everything, seal all open windows, exit.
    Stop,
}

/// Recipe for a stream's [`StreamTriage`], kept by the supervisor so
/// a crashed instance can be rebuilt identically.
pub(crate) struct TriageFactory {
    pub stream: usize,
    pub arity: usize,
    pub mode: ShedMode,
    pub synopsis: SynopsisConfig,
    pub spec: WindowSpec,
    pub metrics: MetricsRegistry,
    pub name: String,
}

impl TriageFactory {
    pub(crate) fn build(&self) -> StreamTriage {
        StreamTriage::new(self.stream, self.arity, self.mode, self.synopsis, self.spec)
            .with_metrics(&self.metrics, &self.name)
    }
}

/// Everything one worker thread needs.
pub(crate) struct WorkerCtx {
    pub stream: usize,
    pub factory: TriageFactory,
    pub data_rx: Receiver<Tuple>,
    pub ctl_rx: Receiver<Ctl>,
    pub sealed_tx: Sender<SealedWindow>,
    pub clock: Arc<dyn Clock>,
    pub pace: bool,
    pub spec: WindowSpec,
    pub stats: Arc<ServerStats>,
    pub obs: WorkerObs,
    /// This stream's adaptive delay controller, when one is
    /// configured. The worker keeps its queue-depth view current
    /// (`on_dequeue`) and replaces the seeded cost estimates with
    /// wall-clock measurements of its own processing.
    pub controller: Option<Arc<SharedController>>,
    pub fault: FaultPlan,
    /// `faults_injected{kind="panic"}` and `{kind="stall_seal"}`.
    pub fault_panic_ctr: Counter,
    pub fault_stall_ctr: Counter,
}

fn consume(
    triage: &mut StreamTriage,
    t: &Tuple,
    stream: usize,
    stats: &ServerStats,
    controller: Option<&SharedController>,
) -> DtResult<()> {
    let start = controller.map(|_| Instant::now());
    if !triage.keep(t)? {
        stats.stream(stream).late.fetch_add(1, Ordering::SeqCst);
    }
    if let (Some(c), Some(s)) = (controller, start) {
        c.observe_main(s.elapsed().as_secs_f64() * 1e6);
    }
    Ok(())
}

/// Fold a drained batch in one [`StreamTriage::keep_batch`] call —
/// same results as per-tuple [`consume`], one stats update per batch.
fn consume_batch(
    triage: &mut StreamTriage,
    batch: &[Tuple],
    stream: usize,
    stats: &ServerStats,
    obs: &WorkerObs,
    controller: Option<&SharedController>,
) -> DtResult<()> {
    if batch.is_empty() {
        return Ok(());
    }
    obs.batch_size.observe(batch.len() as u64);
    let start = controller.map(|_| Instant::now());
    let landed = triage.keep_batch(batch)?;
    if let (Some(c), Some(s)) = (controller, start) {
        // One fold amortized over the batch: the controller wants the
        // *per-tuple* main-path cost.
        c.observe_main(s.elapsed().as_secs_f64() * 1e6 / batch.len() as f64);
    }
    let late = (batch.len() - landed) as u64;
    if late > 0 {
        stats.stream(stream).late.fetch_add(late, Ordering::SeqCst);
    }
    Ok(())
}

/// Bump the cumulative consumed count by `n` and panic at the first
/// tuple the fault plan marks. Called *after* the tuples are folded,
/// so the triage the supervisor inspects post-panic is consistent.
fn panic_check(fault: &FaultPlan, stream: usize, consumed: &mut u64, n: usize, ctr: &Counter) {
    for _ in 0..n {
        *consumed += 1;
        if fault.worker_panic(stream, *consumed) {
            ctr.inc();
            panic!("injected worker panic: stream {stream} after tuple {consumed}");
        }
    }
}

/// The supervisor: run the worker loop, restart it on panic.
///
/// On each restart the fresh triage resumes at the crashed one's seal
/// frontier and flags every window the old one had open as degraded.
/// Returns the first triage *error* (errors are not retried — they
/// mean misconfiguration, not a crash).
pub(crate) fn run_worker(ctx: WorkerCtx) -> DtResult<()> {
    let WorkerCtx {
        stream,
        factory,
        data_rx,
        ctl_rx,
        sealed_tx,
        clock,
        pace,
        spec,
        stats,
        obs,
        controller,
        fault,
        fault_panic_ctr,
        fault_stall_ctr,
    } = ctx;
    let mut triage = factory.build();
    // Supervisor-owned state that survives a restart.
    let mut consumed: u64 = 0;
    let mut pending: Option<Tuple> = None;
    let mut in_stop = false;
    loop {
        let result = catch_unwind(AssertUnwindSafe(|| {
            worker_loop(
                stream,
                &mut triage,
                &data_rx,
                &ctl_rx,
                &sealed_tx,
                &clock,
                pace,
                spec,
                &stats,
                &obs,
                controller.as_deref(),
                &fault,
                &mut consumed,
                &mut pending,
                &mut in_stop,
                &fault_panic_ctr,
                &fault_stall_ctr,
            )
        }));
        match result {
            Ok(done) => return done,
            Err(_) => {
                obs.worker_restarts.inc();
                // The crashed instance's seal frontier and open range
                // are readable: injected panics fire outside triage
                // methods, so its bookkeeping is consistent.
                let resume = triage.next_seal();
                let degraded_to = triage
                    .max_open()
                    .map(|w| w + 1)
                    .unwrap_or(resume)
                    .max(resume);
                let mut fresh = factory.build();
                fresh.resume_from(resume);
                fresh.mark_degraded_until(degraded_to);
                triage = fresh;
                if in_stop {
                    // The Stop message died with the crashed instance;
                    // finish the drain here rather than waiting for a
                    // second Stop that will never come.
                    let n = data_rx.try_iter().count();
                    obs.queue_depth.sub(n as i64);
                    if let Some(c) = &controller {
                        c.on_dequeue(n);
                    }
                    for w in triage.seal_all()? {
                        let _ = sealed_tx.send(w);
                    }
                    return Ok(());
                }
            }
        }
    }
}

/// One incarnation of the worker loop. Runs until [`Ctl::Stop`] (or
/// every channel disconnecting); returns the first triage error.
#[allow(clippy::too_many_arguments)]
fn worker_loop(
    stream: usize,
    triage: &mut StreamTriage,
    data_rx: &Receiver<Tuple>,
    ctl_rx: &Receiver<Ctl>,
    sealed_tx: &Sender<SealedWindow>,
    clock: &Arc<dyn Clock>,
    pace: bool,
    spec: WindowSpec,
    stats: &ServerStats,
    obs: &WorkerObs,
    controller: Option<&SharedController>,
    fault: &FaultPlan,
    consumed: &mut u64,
    pending: &mut Option<Tuple>,
    in_stop: &mut bool,
    fault_panic_ctr: &Counter,
    fault_stall_ctr: &Counter,
) -> DtResult<()> {
    // Reusable drain buffer for the batched seal/stop paths.
    let mut batch: Vec<Tuple> = Vec::new();
    loop {
        match ctl_rx.try_recv() {
            Ok(Ctl::Shed(t)) => {
                let start = controller.map(|_| Instant::now());
                if !triage.shed(&t)? {
                    stats.stream(stream).late.fetch_add(1, Ordering::SeqCst);
                }
                if let (Some(c), Some(s)) = (controller, start) {
                    c.observe_triage(s.elapsed().as_secs_f64() * 1e6);
                }
                continue;
            }
            Ok(Ctl::Seal(upto)) => {
                if fault.stall_seal(stream, upto) {
                    // Swallow this watermark: the windows stay open
                    // until the next watermark re-covers them — or the
                    // merger's watchdog force-seals past us.
                    fault_stall_ctr.inc();
                    continue;
                }
                // Everything already queued that belongs at or below
                // the watermark has arrived — consume it (pacing
                // aside) so the seal doesn't orphan it as late.
                let end = spec.window_end(upto);
                batch.clear();
                loop {
                    let t = match pending.take() {
                        Some(t) => t,
                        None => match data_rx.try_recv() {
                            Ok(t) => {
                                obs.queue_depth.sub(1);
                                if let Some(c) = controller {
                                    c.on_dequeue(1);
                                }
                                t
                            }
                            Err(_) => break,
                        },
                    };
                    if t.ts < end {
                        batch.push(t);
                    } else {
                        *pending = Some(t);
                        break;
                    }
                }
                consume_batch(triage, &batch, stream, stats, obs, controller)?;
                let n = batch.len();
                batch.clear();
                panic_check(fault, stream, consumed, n, fault_panic_ctr);
                for w in triage.seal_through(upto)? {
                    let _ = sealed_tx.send(w);
                }
                continue;
            }
            Ok(Ctl::Stop) => {
                *in_stop = true;
                // The control lane is FIFO, so every shed victim sent
                // before Stop has been folded already; drain the rest
                // of the data lane unpaced and seal everything.
                batch.clear();
                batch.extend(pending.take());
                let parked = batch.len();
                batch.extend(data_rx.try_iter());
                obs.queue_depth.sub((batch.len() - parked) as i64);
                if let Some(c) = controller {
                    c.on_dequeue(batch.len() - parked);
                }
                consume_batch(triage, &batch, stream, stats, obs, controller)?;
                let n = batch.len();
                batch.clear();
                panic_check(fault, stream, consumed, n, fault_panic_ctr);
                for c in ctl_rx.try_iter() {
                    if let Ctl::Shed(t) = c {
                        if !triage.shed(&t)? {
                            stats.stream(stream).late.fetch_add(1, Ordering::SeqCst);
                        }
                    }
                }
                for w in triage.seal_all()? {
                    let _ = sealed_tx.send(w);
                }
                return Ok(());
            }
            Err(TryRecvError::Empty) => {}
            Err(TryRecvError::Disconnected) => {
                // Server dropped without Stop; emit what we have.
                for w in triage.seal_all()? {
                    let _ = sealed_tx.send(w);
                }
                return Ok(());
            }
        }
        if let Some(t) = pending.take() {
            if !pace || clock.now() >= t.ts {
                consume(triage, &t, stream, stats, controller)?;
                panic_check(fault, stream, consumed, 1, fault_panic_ctr);
            } else {
                // Still ahead of the clock: park it again and nap
                // briefly (a real nap — a virtual clock only moves
                // when the test moves it, and we must keep serving
                // the control lane meanwhile).
                *pending = Some(t);
                std::thread::sleep(POLL);
            }
            continue;
        }
        match data_rx.recv_timeout(POLL) {
            Ok(t) => {
                obs.queue_depth.sub(1);
                if let Some(c) = controller {
                    c.on_dequeue(1);
                }
                if pace && t.ts > clock.now() {
                    *pending = Some(t);
                } else {
                    consume(triage, &t, stream, stats, controller)?;
                    panic_check(fault, stream, consumed, 1, fault_panic_ctr);
                }
            }
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => {
                // Ingest is gone but the server still owes us a Stop
                // (which seals and exits); keep serving control.
                std::thread::sleep(POLL);
            }
        }
    }
}
