//! The per-stream triage worker thread and its panic supervisor.
//!
//! Each worker owns one stream's [`StreamTriage`] and two inbound
//! lanes: the **bounded data channel** (the triage queue — ingest
//! `try_send`s kept tuples here) and an unbounded **control lane**
//! carrying shed victims, seal watermarks, and the stop request.
//! Control is drained first so a full data channel can never starve
//! sealing or victim accounting.
//!
//! With `pace` set, the worker refuses to consume a tuple before the
//! server clock reaches its timestamp, holding at most **one** tuple
//! aside. That single parked tuple plus the channel bound makes
//! overflow deterministic under a frozen virtual clock: at most
//! `capacity + 1` tuples fit upstream of the (stopped) engine, and
//! every tuple past that is shed — precisely the paper's triage-queue
//! overflow, reproduced under test control.
//!
//! # Supervision
//!
//! [`run_worker`] wraps the loop in a restart supervisor: a panic
//! (injected by the [`FaultPlan`] or a genuine bug) is caught with
//! `catch_unwind`, a fresh [`StreamTriage`] is built from the
//! [`TriageFactory`], and processing resumes from the crashed
//! instance's seal frontier. Windows the crashed instance had open
//! lose their accumulated contents; the replacement marks that range
//! *degraded* ([`StreamTriage::mark_degraded_until`]) so downstream
//! consumers know those results are incomplete beyond normal shedding
//! (DESIGN.md §10). The parked pacing tuple and the cumulative
//! consumed count live in the supervisor frame, so neither is lost to
//! a restart.

use crate::fault::FaultPlan;
use crate::obs::WorkerObs;
use crate::stats::ServerStats;
use crossbeam::channel::{Receiver, Sender, TryRecvError};
use dt_obs::{Counter, MetricsRegistry};
use dt_synopsis::SynopsisConfig;
use dt_triage::{SealedWindow, ShardQueues, SharedController, ShedMode, StreamTriage};
use dt_types::{Clock, DtResult, Tuple, WindowId, WindowSpec};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How long the worker parks between polls when idle or paced.
const POLL: Duration = Duration::from_micros(500);

/// A tuple stamped with its per-stream ingest sequence number —
/// assigned at offer time, *before* shard routing, so merged shard
/// seals can restore global arrival order (DESIGN.md §15).
pub(crate) type SeqTuple = (Tuple, u64);

/// Control-lane messages, served ahead of data.
pub(crate) enum Ctl {
    /// A tuple shed at ingest (shard queue full, or a mode that sheds
    /// everything); fold it into the dropped synopsis. Carries the
    /// tuple's ingest sequence so dropped-side synopsis points stay
    /// mergeable across shards.
    Shed(Tuple, u64),
    /// Seal every window up to and including this id.
    Seal(WindowId),
    /// Drain everything, seal all open windows, exit.
    Stop,
}

/// Recipe for one shard's [`StreamTriage`], kept by the supervisor so
/// a crashed instance can be rebuilt identically.
pub(crate) struct TriageFactory {
    pub stream: usize,
    /// This worker's shard index within the stream's group.
    pub shard: usize,
    pub arity: usize,
    pub mode: ShedMode,
    pub synopsis: SynopsisConfig,
    pub spec: WindowSpec,
    pub metrics: MetricsRegistry,
    pub name: String,
}

impl TriageFactory {
    pub(crate) fn build(&self) -> StreamTriage {
        let t = StreamTriage::new(self.stream, self.arity, self.mode, self.synopsis, self.spec)
            .with_metrics(&self.metrics, &self.name);
        if self.mode.uses_synopses() && !self.synopsis.supports_merge() {
            // Non-mergeable synopsis kinds (wavelet, adaptive sparse)
            // run the classic sealed-at-seal plane; config validation
            // pins them to a single shard.
            t
        } else {
            t.sharded(self.shard)
        }
    }
}

/// Everything one worker thread needs.
pub(crate) struct WorkerCtx {
    pub stream: usize,
    /// This worker's shard index within the stream's group.
    pub shard: usize,
    pub factory: TriageFactory,
    /// The stream's shared shard-queue group: this worker drains
    /// queue `shard` and steals from siblings when idle.
    pub queues: Arc<ShardQueues<SeqTuple>>,
    pub ctl_rx: Receiver<Ctl>,
    pub sealed_tx: Sender<SealedWindow>,
    pub clock: Arc<dyn Clock>,
    pub pace: bool,
    pub spec: WindowSpec,
    pub stats: Arc<ServerStats>,
    pub obs: WorkerObs,
    /// This stream's adaptive delay controller, when one is
    /// configured. The worker keeps its queue-depth view current
    /// (`on_dequeue`) and replaces the seeded cost estimates with
    /// wall-clock measurements of its own processing.
    pub controller: Option<Arc<SharedController>>,
    pub fault: FaultPlan,
    /// `faults_injected{kind="panic"}` and `{kind="stall_seal"}`.
    pub fault_panic_ctr: Counter,
    pub fault_stall_ctr: Counter,
}

fn consume(
    triage: &mut StreamTriage,
    t: &Tuple,
    seq: u64,
    stream: usize,
    stats: &ServerStats,
    controller: Option<&SharedController>,
) -> DtResult<()> {
    let start = controller.map(|_| Instant::now());
    if !triage.keep_seq(t, seq)? {
        stats.stream(stream).late.fetch_add(1, Ordering::SeqCst);
    }
    if let (Some(c), Some(s)) = (controller, start) {
        c.observe_main(s.elapsed().as_secs_f64() * 1e6);
    }
    Ok(())
}

/// Fold a drained batch in one [`StreamTriage::keep_batch_seq`] call —
/// same results as per-tuple [`consume`], one stats update per batch.
fn consume_batch(
    triage: &mut StreamTriage,
    batch: &[SeqTuple],
    stream: usize,
    stats: &ServerStats,
    obs: &WorkerObs,
    controller: Option<&SharedController>,
) -> DtResult<()> {
    if batch.is_empty() {
        return Ok(());
    }
    obs.batch_size.observe(batch.len() as u64);
    let start = controller.map(|_| Instant::now());
    let landed = triage.keep_batch_seq(batch)?;
    if let (Some(c), Some(s)) = (controller, start) {
        // One fold amortized over the batch: the controller wants the
        // *per-tuple* main-path cost.
        c.observe_main(s.elapsed().as_secs_f64() * 1e6 / batch.len() as f64);
    }
    let late = (batch.len() - landed) as u64;
    if late > 0 {
        stats.stream(stream).late.fetch_add(late, Ordering::SeqCst);
    }
    Ok(())
}

/// Bump the cumulative consumed count by `n` and panic at the first
/// tuple the fault plan marks. Called *after* the tuples are folded,
/// so the triage the supervisor inspects post-panic is consistent.
fn panic_check(fault: &FaultPlan, stream: usize, consumed: &mut u64, n: usize, ctr: &Counter) {
    for _ in 0..n {
        *consumed += 1;
        if fault.worker_panic(stream, *consumed) {
            ctr.inc();
            panic!("injected worker panic: stream {stream} after tuple {consumed}");
        }
    }
}

/// The supervisor: run the worker loop, restart it on panic.
///
/// On each restart the fresh triage resumes at the crashed one's seal
/// frontier and flags every window the old one had open as degraded.
/// Returns the first triage *error* (errors are not retried — they
/// mean misconfiguration, not a crash).
pub(crate) fn run_worker(ctx: WorkerCtx) -> DtResult<()> {
    let WorkerCtx {
        stream,
        shard,
        factory,
        queues,
        ctl_rx,
        sealed_tx,
        clock,
        pace,
        spec,
        stats,
        obs,
        controller,
        fault,
        fault_panic_ctr,
        fault_stall_ctr,
    } = ctx;
    let mut triage = factory.build();
    // Supervisor-owned state that survives a restart.
    let mut consumed: u64 = 0;
    let mut pending: Option<SeqTuple> = None;
    let mut in_stop = false;
    loop {
        let result = catch_unwind(AssertUnwindSafe(|| {
            worker_loop(
                stream,
                shard,
                &mut triage,
                &queues,
                &ctl_rx,
                &sealed_tx,
                &clock,
                pace,
                spec,
                &stats,
                &obs,
                controller.as_deref(),
                &fault,
                &mut consumed,
                &mut pending,
                &mut in_stop,
                &fault_panic_ctr,
                &fault_stall_ctr,
            )
        }));
        match result {
            Ok(done) => return done,
            Err(_) => {
                obs.worker_restarts.inc();
                // The crashed instance's seal frontier and open range
                // are readable: injected panics fire outside triage
                // methods, so its bookkeeping is consistent.
                let resume = triage.next_seal();
                let degraded_to = triage
                    .max_open()
                    .map(|w| w + 1)
                    .unwrap_or(resume)
                    .max(resume);
                let mut fresh = factory.build();
                fresh.resume_from(resume);
                fresh.mark_degraded_until(degraded_to);
                triage = fresh;
                if in_stop {
                    // The Stop message died with the crashed instance;
                    // finish the drain here rather than waiting for a
                    // second Stop that will never come.
                    let n = queues.drain(shard).len();
                    obs.queue_depth.sub(n as i64);
                    if let Some(c) = &controller {
                        c.on_dequeue(n);
                    }
                    for w in triage.seal_all()? {
                        let _ = sealed_tx.send(w);
                    }
                    return Ok(());
                }
            }
        }
    }
}

/// One incarnation of the worker loop. Runs until [`Ctl::Stop`] (or
/// every channel disconnecting); returns the first triage error.
#[allow(clippy::too_many_arguments)]
fn worker_loop(
    stream: usize,
    shard: usize,
    triage: &mut StreamTriage,
    queues: &Arc<ShardQueues<SeqTuple>>,
    ctl_rx: &Receiver<Ctl>,
    sealed_tx: &Sender<SealedWindow>,
    clock: &Arc<dyn Clock>,
    pace: bool,
    spec: WindowSpec,
    stats: &ServerStats,
    obs: &WorkerObs,
    controller: Option<&SharedController>,
    fault: &FaultPlan,
    consumed: &mut u64,
    pending: &mut Option<SeqTuple>,
    in_stop: &mut bool,
    fault_panic_ctr: &Counter,
    fault_stall_ctr: &Counter,
) -> DtResult<()> {
    // Reusable drain buffer for the batched seal/stop paths.
    let mut batch: Vec<SeqTuple> = Vec::new();
    loop {
        match ctl_rx.try_recv() {
            Ok(Ctl::Shed(t, seq)) => {
                let start = controller.map(|_| Instant::now());
                if !triage.shed_seq(&t, seq)? {
                    stats.stream(stream).late.fetch_add(1, Ordering::SeqCst);
                }
                if let (Some(c), Some(s)) = (controller, start) {
                    c.observe_triage(s.elapsed().as_secs_f64() * 1e6);
                }
                continue;
            }
            Ok(Ctl::Seal(upto)) => {
                if fault.stall_seal(stream, upto) {
                    // Swallow this watermark: the windows stay open
                    // until the next watermark re-covers them — or the
                    // merger's watchdog force-seals past us.
                    fault_stall_ctr.inc();
                    continue;
                }
                // Everything already queued on *this shard* that
                // belongs at or below the watermark has arrived —
                // consume it (pacing aside) so the seal doesn't
                // orphan it as late. Siblings drain their own queues
                // on their own copies of this watermark.
                let end = spec.window_end(upto);
                batch.clear();
                loop {
                    let item = match pending.take() {
                        Some(item) => item,
                        None => match queues.pop(shard) {
                            Some(item) => {
                                obs.queue_depth.sub(1);
                                if let Some(c) = controller {
                                    c.on_dequeue(1);
                                }
                                item
                            }
                            None => break,
                        },
                    };
                    if item.0.ts < end {
                        batch.push(item);
                    } else {
                        *pending = Some(item);
                        break;
                    }
                }
                consume_batch(triage, &batch, stream, stats, obs, controller)?;
                let n = batch.len();
                batch.clear();
                panic_check(fault, stream, consumed, n, fault_panic_ctr);
                for w in triage.seal_through(upto)? {
                    let _ = sealed_tx.send(w);
                }
                continue;
            }
            Ok(Ctl::Stop) => {
                *in_stop = true;
                // The control lane is FIFO, so every shed victim sent
                // before Stop has been folded already; drain the rest
                // of this shard's queue unpaced and seal everything.
                batch.clear();
                batch.extend(pending.take());
                let parked = batch.len();
                batch.extend(queues.drain(shard));
                obs.queue_depth.sub((batch.len() - parked) as i64);
                if let Some(c) = controller {
                    c.on_dequeue(batch.len() - parked);
                }
                consume_batch(triage, &batch, stream, stats, obs, controller)?;
                let n = batch.len();
                batch.clear();
                panic_check(fault, stream, consumed, n, fault_panic_ctr);
                for c in ctl_rx.try_iter() {
                    if let Ctl::Shed(t, seq) = c {
                        if !triage.shed_seq(&t, seq)? {
                            stats.stream(stream).late.fetch_add(1, Ordering::SeqCst);
                        }
                    }
                }
                for w in triage.seal_all()? {
                    let _ = sealed_tx.send(w);
                }
                return Ok(());
            }
            Err(TryRecvError::Empty) => {}
            Err(TryRecvError::Disconnected) => {
                // Server dropped without Stop; emit what we have.
                for w in triage.seal_all()? {
                    let _ = sealed_tx.send(w);
                }
                return Ok(());
            }
        }
        if let Some((t, seq)) = pending.take() {
            if !pace || clock.now() >= t.ts {
                consume(triage, &t, seq, stream, stats, controller)?;
                panic_check(fault, stream, consumed, 1, fault_panic_ctr);
            } else {
                // Still ahead of the clock: park it again and nap
                // briefly (a real nap — a virtual clock only moves
                // when the test moves it, and we must keep serving
                // the control lane meanwhile).
                *pending = Some((t, seq));
                std::thread::sleep(POLL);
            }
            continue;
        }
        match queues.pop(shard) {
            Some((t, seq)) => {
                obs.queue_depth.sub(1);
                if let Some(c) = controller {
                    c.on_dequeue(1);
                }
                if pace && t.ts > clock.now() {
                    *pending = Some((t, seq));
                } else {
                    consume(triage, &t, seq, stream, stats, controller)?;
                    panic_check(fault, stream, consumed, 1, fault_panic_ctr);
                }
            }
            None => {
                // Own queue empty: steal a batch from the deepest
                // sibling before napping. Only tuples this shard's
                // triage could still seal on time — and, under
                // pacing, only ones whose timestamp has passed — are
                // eligible; the rest stay with their owner.
                let stolen = if queues.shards() > 1 {
                    let now = clock.now();
                    queues.steal(shard, |item: &SeqTuple| {
                        !triage.would_be_late(item.0.ts) && (!pace || now >= item.0.ts)
                    })
                } else {
                    Vec::new()
                };
                if stolen.is_empty() {
                    std::thread::sleep(POLL);
                } else {
                    obs.queue_depth.sub(stolen.len() as i64);
                    if let Some(c) = controller {
                        c.on_dequeue(stolen.len());
                    }
                    obs.steal_batches.inc();
                    obs.steal_items.add(stolen.len() as u64);
                    consume_batch(triage, &stolen, stream, stats, obs, controller)?;
                    panic_check(fault, stream, consumed, stolen.len(), fault_panic_ctr);
                }
            }
        }
    }
}
