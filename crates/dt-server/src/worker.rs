//! The per-stream triage worker thread.
//!
//! Each worker owns one stream's [`StreamTriage`] and two inbound
//! lanes: the **bounded data channel** (the triage queue — ingest
//! `try_send`s kept tuples here) and an unbounded **control lane**
//! carrying shed victims, seal watermarks, and the stop request.
//! Control is drained first so a full data channel can never starve
//! sealing or victim accounting.
//!
//! With `pace` set, the worker refuses to consume a tuple before the
//! server clock reaches its timestamp, holding at most **one** tuple
//! aside. That single parked tuple plus the channel bound makes
//! overflow deterministic under a frozen virtual clock: at most
//! `capacity + 1` tuples fit upstream of the (stopped) engine, and
//! every tuple past that is shed — precisely the paper's triage-queue
//! overflow, reproduced under test control.

use crate::obs::WorkerObs;
use crate::stats::ServerStats;
use crossbeam::channel::{Receiver, RecvTimeoutError, Sender, TryRecvError};
use dt_triage::{SealedWindow, StreamTriage};
use dt_types::{Clock, DtResult, Tuple, WindowId, WindowSpec};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

/// How long the worker parks between polls when idle or paced.
const POLL: Duration = Duration::from_micros(500);

/// Control-lane messages, served ahead of data.
pub(crate) enum Ctl {
    /// A tuple shed at ingest (channel full, or a mode that sheds
    /// everything); fold it into the dropped synopsis.
    Shed(Tuple),
    /// Seal every window up to and including this id.
    Seal(WindowId),
    /// Drain everything, seal all open windows, exit.
    Stop,
}

/// Everything one worker thread needs.
pub(crate) struct WorkerCtx {
    pub stream: usize,
    pub triage: StreamTriage,
    pub data_rx: Receiver<Tuple>,
    pub ctl_rx: Receiver<Ctl>,
    pub sealed_tx: Sender<SealedWindow>,
    pub clock: Arc<dyn Clock>,
    pub pace: bool,
    pub spec: WindowSpec,
    pub stats: Arc<ServerStats>,
    pub obs: WorkerObs,
}

fn consume(
    triage: &mut StreamTriage,
    t: &Tuple,
    stream: usize,
    stats: &ServerStats,
) -> DtResult<()> {
    if !triage.keep(t)? {
        stats.stream(stream).late.fetch_add(1, Ordering::SeqCst);
    }
    Ok(())
}

/// Fold a drained batch in one [`StreamTriage::keep_batch`] call —
/// same results as per-tuple [`consume`], one stats update per batch.
fn consume_batch(
    triage: &mut StreamTriage,
    batch: &[Tuple],
    stream: usize,
    stats: &ServerStats,
    obs: &WorkerObs,
) -> DtResult<()> {
    if batch.is_empty() {
        return Ok(());
    }
    obs.batch_size.observe(batch.len() as u64);
    let landed = triage.keep_batch(batch)?;
    let late = (batch.len() - landed) as u64;
    if late > 0 {
        stats.stream(stream).late.fetch_add(late, Ordering::SeqCst);
    }
    Ok(())
}

/// The worker loop. Runs until [`Ctl::Stop`] (or every channel
/// disconnecting); returns the first triage error, which the server
/// surfaces at shutdown.
pub(crate) fn run_worker(ctx: WorkerCtx) -> DtResult<()> {
    let WorkerCtx {
        stream,
        mut triage,
        data_rx,
        ctl_rx,
        sealed_tx,
        clock,
        pace,
        spec,
        stats,
        obs,
    } = ctx;
    // The one tuple held back by timestamp pacing.
    let mut pending: Option<Tuple> = None;
    // Reusable drain buffer for the batched seal/stop paths.
    let mut batch: Vec<Tuple> = Vec::new();
    loop {
        match ctl_rx.try_recv() {
            Ok(Ctl::Shed(t)) => {
                if !triage.shed(&t)? {
                    stats.stream(stream).late.fetch_add(1, Ordering::SeqCst);
                }
                continue;
            }
            Ok(Ctl::Seal(upto)) => {
                // Everything already queued that belongs at or below
                // the watermark has arrived — consume it (pacing
                // aside) so the seal doesn't orphan it as late.
                let end = spec.window_end(upto);
                batch.clear();
                loop {
                    let t = match pending.take() {
                        Some(t) => t,
                        None => match data_rx.try_recv() {
                            Ok(t) => {
                                obs.queue_depth.sub(1);
                                t
                            }
                            Err(_) => break,
                        },
                    };
                    if t.ts < end {
                        batch.push(t);
                    } else {
                        pending = Some(t);
                        break;
                    }
                }
                consume_batch(&mut triage, &batch, stream, &stats, &obs)?;
                for w in triage.seal_through(upto)? {
                    let _ = sealed_tx.send(w);
                }
                continue;
            }
            Ok(Ctl::Stop) => {
                // The control lane is FIFO, so every shed victim sent
                // before Stop has been folded already; drain the rest
                // of the data lane unpaced and seal everything.
                batch.clear();
                batch.extend(pending.take());
                let parked = batch.len();
                batch.extend(data_rx.try_iter());
                obs.queue_depth.sub((batch.len() - parked) as i64);
                consume_batch(&mut triage, &batch, stream, &stats, &obs)?;
                for c in ctl_rx.try_iter() {
                    if let Ctl::Shed(t) = c {
                        if !triage.shed(&t)? {
                            stats.stream(stream).late.fetch_add(1, Ordering::SeqCst);
                        }
                    }
                }
                for w in triage.seal_all()? {
                    let _ = sealed_tx.send(w);
                }
                return Ok(());
            }
            Err(TryRecvError::Empty) => {}
            Err(TryRecvError::Disconnected) => {
                // Server dropped without Stop; emit what we have.
                for w in triage.seal_all()? {
                    let _ = sealed_tx.send(w);
                }
                return Ok(());
            }
        }
        if let Some(t) = pending.take() {
            if !pace || clock.now() >= t.ts {
                consume(&mut triage, &t, stream, &stats)?;
            } else {
                // Still ahead of the clock: park it again and nap
                // briefly (a real nap — a virtual clock only moves
                // when the test moves it, and we must keep serving
                // the control lane meanwhile).
                pending = Some(t);
                std::thread::sleep(POLL);
            }
            continue;
        }
        match data_rx.recv_timeout(POLL) {
            Ok(t) => {
                obs.queue_depth.sub(1);
                if pace && t.ts > clock.now() {
                    pending = Some(t);
                } else {
                    consume(&mut triage, &t, stream, &stats)?;
                }
            }
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => {
                // Ingest is gone but the server still owes us a Stop
                // (which seals and exits); keep serving control.
                std::thread::sleep(POLL);
            }
        }
    }
}
