//! Server-side instruments and the minimal HTTP response plumbing
//! shared by `/stats` and `/metrics`.
//!
//! All instruments are registered eagerly at [`crate::Server::start`]
//! so a scrape against an idle server still returns every series
//! (zero-valued), and the hot ingest path only touches pre-registered
//! handles.

use dt_obs::{Counter, Gauge, Histogram, MetricsRegistry};

/// Instruments owned by the ingest side and the merger.
#[derive(Debug, Clone, Default)]
pub(crate) struct ServerObs {
    /// NDJSON frame lines accepted for parsing.
    pub ingest_frames: Counter,
    /// Bytes of accepted frame lines.
    pub ingest_bytes: Counter,
    /// Frame lines that failed to parse or route.
    pub ingest_errors: Counter,
    /// Current depth of each stream's bounded ingest backlog, summed
    /// across its shard queues (incremented on kept offers,
    /// decremented as workers drain).
    pub queue_depth: Vec<Gauge>,
    /// Per-shard queue depths, `shard_depth[stream][shard]` — wired
    /// into each stream's [`dt_triage::ShardQueues`], which keeps
    /// them current through pushes, pops, drains, and steals.
    pub shard_depth: Vec<Vec<Gauge>>,
    /// How far (µs) the seal watermark trails the clock — the window
    /// age at the moment its seal is broadcast.
    pub sealer_lag_us: Gauge,
    /// End-to-end latency (µs) from a window's end to its merged
    /// result being emitted.
    pub window_latency_us: Histogram,
    /// Windows fully merged and emitted.
    pub windows_emitted: Counter,
    /// Faults injected by the active [`crate::FaultPlan`], by kind.
    /// Order: corrupt_frame, delay, disconnect, panic, stall_seal,
    /// read_chop, read_disconnect.
    pub faults_injected: [Counter; 7],
    /// Frames rejected at ingest (malformed after any injection, or
    /// unknown stream) — the numerator of each connection's error
    /// budget.
    pub frames_rejected: Counter,
    /// Windows the merger's watchdog force-sealed past a stalled
    /// worker.
    pub windows_force_sealed: Counter,
}

/// Indices into [`ServerObs::faults_injected`].
pub(crate) const FAULT_CORRUPT: usize = 0;
pub(crate) const FAULT_DELAY: usize = 1;
pub(crate) const FAULT_DISCONNECT: usize = 2;
pub(crate) const FAULT_PANIC: usize = 3;
pub(crate) const FAULT_STALL: usize = 4;
pub(crate) const FAULT_READ_CHOP: usize = 5;
pub(crate) const FAULT_READ_DISCONNECT: usize = 6;

impl ServerObs {
    /// Register every server instrument for `streams` (by name), with
    /// `shards` shard-depth gauges per stream.
    pub(crate) fn register(reg: &MetricsRegistry, streams: &[String], shards: usize) -> Self {
        ServerObs {
            ingest_frames: reg.counter(
                "dt_server_ingest_frames_total",
                "NDJSON frame lines accepted for parsing",
                &[],
            ),
            ingest_bytes: reg.counter(
                "dt_server_ingest_bytes_total",
                "Bytes of accepted frame lines",
                &[],
            ),
            ingest_errors: reg.counter(
                "dt_server_ingest_errors_total",
                "Frame lines that failed to parse or route",
                &[],
            ),
            queue_depth: streams
                .iter()
                .map(|s| {
                    reg.gauge(
                        "dt_server_queue_depth",
                        "Current depth of the stream's bounded ingest channel (tuples)",
                        &[("stream", s)],
                    )
                })
                .collect(),
            shard_depth: streams
                .iter()
                .map(|s| {
                    (0..shards.max(1))
                        .map(|k| {
                            reg.gauge(
                                "dt_server_shard_depth",
                                "Current depth of one shard's triage queue (tuples)",
                                &[("stream", s), ("shard", &k.to_string())],
                            )
                        })
                        .collect()
                })
                .collect(),
            sealer_lag_us: reg.gauge(
                "dt_server_sealer_lag_us",
                "Age of a window (microseconds past its end) when its seal is broadcast",
                &[],
            ),
            window_latency_us: reg.histogram(
                "dt_server_window_latency_us",
                "End-to-end latency from window end to merged result emission, microseconds",
                &[],
            ),
            windows_emitted: reg.counter(
                "dt_server_windows_emitted_total",
                "Windows fully merged and emitted",
                &[],
            ),
            faults_injected: [
                "corrupt_frame",
                "delay",
                "disconnect",
                "panic",
                "stall_seal",
                "read_chop",
                "read_disconnect",
            ]
            .map(|kind| {
                reg.counter(
                    "dt_server_faults_injected_total",
                    "Faults injected by the active fault plan",
                    &[("kind", kind)],
                )
            }),
            frames_rejected: reg.counter(
                "dt_server_frames_rejected_total",
                "Frames rejected at ingest (malformed or unroutable)",
                &[],
            ),
            windows_force_sealed: reg.counter(
                "dt_server_windows_force_sealed_total",
                "Windows force-sealed by the merger watchdog past a stalled worker",
                &[],
            ),
        }
    }
}

/// Per-reactor instruments for the event-loop ingest plane, one
/// bundle per reactor thread (labelled by reactor index). Registered
/// eagerly at startup like everything else, so an idle scrape shows
/// the full zero-valued series set.
#[derive(Debug, Clone, Default)]
pub(crate) struct ReactorObs {
    /// Connections currently owned by this reactor.
    pub conns: Gauge,
    /// Readiness wakeups (`epoll_wait` returns, including ticks).
    pub wakeups: Counter,
    /// Bytes returned by one nonblocking ingest `read` call — the
    /// read-burst shape (chopped reads land in the low buckets).
    pub read_burst: Histogram,
}

impl ReactorObs {
    pub(crate) fn register(reg: &MetricsRegistry, reactor: usize) -> Self {
        let label = reactor.to_string();
        ReactorObs {
            conns: reg.gauge(
                "dt_server_reactor_conns",
                "Connections currently owned by this reactor",
                &[("reactor", &label)],
            ),
            wakeups: reg.counter(
                "dt_server_readiness_wakeups_total",
                "Readiness wakeups (epoll_wait returns, including ticks)",
                &[("reactor", &label)],
            ),
            read_burst: reg.histogram(
                "dt_server_ingest_read_burst_bytes",
                "Bytes returned by one nonblocking ingest read call",
                &[("reactor", &label)],
            ),
        }
    }
}

/// Per-worker instruments, one bundle per shard-worker thread.
#[derive(Debug, Clone, Default)]
pub(crate) struct WorkerObs {
    /// The stream's ingest-backlog depth gauge (shared with ingest,
    /// group-wide — per-shard depths live on the shard queues).
    pub queue_depth: Gauge,
    /// Tuples folded per batched drain.
    pub batch_size: Histogram,
    /// Times this worker panicked and was restarted by its
    /// supervisor.
    pub worker_restarts: Counter,
    /// Steal batches this worker pulled from siblings while idle.
    pub steal_batches: Counter,
    /// Tuples that arrived on this worker by stealing.
    pub steal_items: Counter,
}

impl WorkerObs {
    /// Register one shard worker's instruments. With a single-shard
    /// group the series keep their classic per-stream labels; larger
    /// groups add a `shard` label so per-shard behaviour is visible.
    pub(crate) fn register(
        reg: &MetricsRegistry,
        stream: &str,
        shard: usize,
        shards: usize,
        queue_depth: Gauge,
    ) -> Self {
        let shard_label = shard.to_string();
        let labels: Vec<(&str, &str)> = if shards == 1 {
            vec![("stream", stream)]
        } else {
            vec![("stream", stream), ("shard", &shard_label)]
        };
        WorkerObs {
            queue_depth,
            batch_size: reg.histogram(
                "dt_server_worker_batch_size",
                "Tuples folded per batched worker drain",
                &labels,
            ),
            worker_restarts: reg.counter(
                "dt_server_worker_restarts_total",
                "Worker panics recovered by supervised restart",
                &labels,
            ),
            steal_batches: reg.counter(
                "dt_server_steal_batches_total",
                "Steal batches this shard worker pulled from siblings while idle",
                &[("stream", stream), ("shard", &shard_label)],
            ),
            steal_items: reg.counter(
                "dt_server_steal_items_total",
                "Tuples that arrived on this shard worker by stealing",
                &[("stream", stream), ("shard", &shard_label)],
            ),
        }
    }
}

/// A minimal HTTP/1.0 response: status line, content type and length,
/// then the body. Enough for curl, Prometheus scrapers, and the
/// loopback client. Every probe reply — `/stats`, `/metrics`, and the
/// error paths — assembles through this one helper.
pub(crate) fn http_respond(status: u16, reason: &str, content_type: &str, body: &str) -> String {
    format!(
        "HTTP/1.0 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )
}

/// 200 with a body.
pub(crate) fn http_response(content_type: &str, body: &str) -> String {
    http_respond(200, "OK", content_type, body)
}

/// 404 for unknown GET paths.
pub(crate) fn http_not_found() -> String {
    http_respond(404, "Not Found", "text/plain", "not found\n")
}

/// 405 for HTTP-shaped first lines with a method other than GET.
pub(crate) fn http_method_not_allowed() -> String {
    http_respond(
        405,
        "Method Not Allowed",
        "text/plain",
        "method not allowed; only GET is served\n",
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn responses_carry_headers_and_exact_length() {
        let r = http_response("application/json", "{\"a\":1}");
        assert!(r.starts_with("HTTP/1.0 200 OK\r\n"));
        assert!(r.contains("Content-Type: application/json\r\n"));
        assert!(r.contains("Content-Length: 7\r\n"));
        assert!(r.ends_with("\r\n\r\n{\"a\":1}"));
        assert!(http_not_found().starts_with("HTTP/1.0 404 Not Found\r\n"));
        let m = http_method_not_allowed();
        assert!(m.starts_with("HTTP/1.0 405 Method Not Allowed\r\n"));
        assert!(m.contains("Content-Length: 39\r\n"));
    }
}
