//! A concurrent streaming runtime serving Data Triage over the
//! network.
//!
//! The paper positions Data Triage inside a live stream processor
//! (TelegraphCQ); the rest of this workspace reproduces it as a
//! single-threaded virtual-time simulation. This crate is the runtime
//! half: a multi-threaded server that hosts compiled triage pipelines
//! as a long-running service, shedding load under *real* backpressure.
//!
//! ## Architecture
//!
//! ```text
//!  TCP clients ──┐                    ┌─ worker R ──┐
//!  (NDJSON       ├─ ingest ──┬─▸ ch R ┤ StreamTriage ├─┐
//!   frames)      │  (offer)  │  bound │ keep / shed /│ │ sealed
//!  in-process ───┘           ├─▸ ch S ┤ seal         │ ├────▸ merger ─▸ results
//!  Source                    │  bound └──────────────┘ │      (QueryExecutor:
//!                            └─ ctl: shed victims,     │       exact + shadow
//!                               seal watermarks ───────┘       merge, in window
//!                                        ▲                     order)
//!                                 Clock ─┘ (monotonic | virtual)
//! ```
//!
//! * **Ingest** accepts newline-delimited JSON tuple frames on a
//!   `TcpListener` (plus an in-process [`Source`] path for
//!   `dt-workload` generators) and `try_send`s each tuple into its
//!   stream's **bounded** channel. A full channel *is* the triage
//!   queue overflowing: the tuple is shed — rerouted to the worker's
//!   control lane to be folded into the window's dropped synopsis,
//!   exactly the paper's triage step under genuine backpressure.
//!   Two socket planes serve TCP (DESIGN.md §14): the default
//!   readiness-driven **event loop** (a small pool of epoll reactor
//!   threads multiplexing per-connection frame assemblers) and the
//!   original thread-per-connection plane
//!   ([`IngestPlane::Threaded`]). Both drive one shared per-connection
//!   state machine, so sealed output is bit-identical across planes.
//! * **Per-stream workers** (one thread each) drain their channel
//!   into a [`dt_triage::StreamTriage`]: kept tuples are buffered for
//!   exact execution and folded into the kept synopsis, shed tuples
//!   into the dropped synopsis.
//! * The **merger** thread watches a [`Clock`] and, once a window's
//!   end (plus a grace period) passes, asks every worker to seal it;
//!   sealed per-stream state is joined and closed through
//!   [`dt_triage::QueryExecutor`] — exact results merged with the
//!   shadow query's estimate — and emitted strictly in window order.
//! * The **control plane**: per-stream offered/kept/shed counters
//!   behind a `/stats` JSON endpoint and (when the config carries a
//!   live [`dt_obs::MetricsRegistry`]) a `/metrics` Prometheus
//!   exposition endpoint on the same port, graceful shutdown that
//!   drains in-flight windows, and a final JSON report — including the
//!   drain-time observability snapshot — compatible with `dt-metrics`.
//!
//! * The **adaptive delay controller** (paper §4's delay constraint;
//!   DESIGN.md §11): when [`ServerConfig::delay`] is set, each stream
//!   gets a lock-free [`dt_triage::SharedController`] sitting *in
//!   front of* the bounded channel. Ingest asks it for a
//!   [`dt_triage::ShedDecision`] per tuple, workers feed it measured
//!   per-tuple costs, and the merger's watchdog penalizes its cost
//!   estimate whenever a window had to be force-sealed. Its state
//!   (threshold, estimated delay, shed fraction) is published as
//!   gauges and in the `/stats` `controllers` array.
//!
//! The stage names map onto the paper directly: the bounded channel
//! plus controller is the **triage queue** (§5.1), the worker's
//! keep/shed fold is **triage** proper with the victim folded into a
//! [`dt_synopsis`] summary (§5.2), and the merger's
//! [`dt_triage::QueryExecutor`] close runs the **shadow query** of the
//! §4 rewrite and merges its estimate with the exact results.
//!
//! Determinism: with a [`dt_types::VirtualClock`] nothing in the
//! runtime moves time forward on its own, so integration tests drive
//! sealing (and worker pacing) by hand and get reproducible window
//! results from a fully threaded server.
//!
//! ## Failure model
//!
//! The runtime degrades rather than dying (DESIGN.md §10): malformed
//! ingest frames are skipped against a per-connection error budget
//! (exhaustion closes the connection with a structured error frame);
//! a panicking worker is restarted by its supervisor with the crashed
//! windows flagged *degraded*; a stalled sealer is overtaken by the
//! merger's watchdog, which force-seals the overdue window from
//! whatever contributions exist. The whole failure surface is
//! exercised deterministically by seeded [`FaultPlan`] schedules
//! (`tests/chaos.rs`).

pub mod client;
pub mod config;
pub mod fault;
pub mod frame;
mod ingest;
mod obs;
pub(crate) mod reactor;
pub mod server;
pub mod source;
pub mod stats;
#[cfg(target_os = "linux")]
mod sys;
mod worker;

pub use client::{
    fetch_metrics, fetch_metrics_with, fetch_stats, fetch_stats_with, Client, ClientConfig,
    QueryEntry, RetryPolicy, StatsReply,
};
pub use config::{IngestPlane, ServerConfig};
pub use fault::{Corruption, FaultPlan};
pub use frame::{
    parse_frame, parse_incoming, render_frame, render_frame_tagged, Command, Frame, FrameAssembler,
    Incoming,
};
pub use server::{Server, ServerHandle};
pub use source::{run_source, Source, TraceSource};
pub use stats::{query_info_json, ServerReport, ServerStats, StreamSnapshot};

pub use dt_registry::{QueryId, QueryInfo, QueryRegistry, QuerySpec};

pub use dt_obs::MetricsRegistry;
pub use dt_types::{Clock, MonotonicClock, VirtualClock};
