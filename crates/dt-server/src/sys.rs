//! Minimal Linux readiness syscalls for the event-loop ingest plane.
//!
//! The workspace takes no crates.io dependencies, and `std` exposes no
//! readiness API — but every Rust binary on Linux already links libc,
//! so the handful of syscall wrappers the reactor needs (`epoll`,
//! `eventfd`, `fcntl`) are declared here directly as `extern "C"`
//! items. Everything is wrapped in two tiny RAII handles ([`Epoll`],
//! [`EventFd`]) so the unsafe surface stays confined to this module.

#![allow(non_camel_case_types)]

use std::io;
use std::os::raw::{c_int, c_uint, c_void};
use std::os::unix::io::RawFd;

extern "C" {
    fn epoll_create1(flags: c_int) -> c_int;
    fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
    fn epoll_wait(epfd: c_int, events: *mut EpollEvent, maxevents: c_int, timeout: c_int) -> c_int;
    fn eventfd(initval: c_uint, flags: c_int) -> c_int;
    fn fcntl(fd: c_int, cmd: c_int, arg: c_int) -> c_int;
    fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
    fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
    fn close(fd: c_int) -> c_int;
}

const EPOLL_CLOEXEC: c_int = 0o2000000;
const EPOLL_CTL_ADD: c_int = 1;
const EPOLL_CTL_DEL: c_int = 2;
const EPOLL_CTL_MOD: c_int = 3;

/// Readiness event bits (subset the reactor uses).
pub const EPOLLIN: u32 = 0x001;
pub const EPOLLOUT: u32 = 0x004;
pub const EPOLLERR: u32 = 0x008;
pub const EPOLLHUP: u32 = 0x010;
pub const EPOLLRDHUP: u32 = 0x2000;
pub const EPOLLET: u32 = 1 << 31;

const EFD_CLOEXEC: c_int = 0o2000000;
const EFD_NONBLOCK: c_int = 0o4000;

const F_GETFL: c_int = 3;
const F_SETFL: c_int = 4;
const O_NONBLOCK: c_int = 0o4000;

/// The kernel's `struct epoll_event`. On x86-64 the kernel ABI packs
/// it (no padding between the 32-bit mask and the 64-bit payload);
/// other architectures use natural C layout.
#[cfg_attr(target_arch = "x86_64", repr(C, packed))]
#[cfg_attr(not(target_arch = "x86_64"), repr(C))]
#[derive(Debug, Clone, Copy)]
pub struct EpollEvent {
    /// Ready-event mask (`EPOLL*` bits).
    pub events: u32,
    /// The caller's token, round-tripped verbatim.
    pub data: u64,
}

impl EpollEvent {
    /// A zeroed event, for pre-sizing wait buffers.
    pub fn zeroed() -> EpollEvent {
        EpollEvent { events: 0, data: 0 }
    }
}

fn cvt(ret: c_int) -> io::Result<c_int> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

/// An owned epoll instance.
#[derive(Debug)]
pub struct Epoll {
    fd: RawFd,
}

impl Epoll {
    /// Create a close-on-exec epoll instance.
    pub fn new() -> io::Result<Epoll> {
        let fd = cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
        Ok(Epoll { fd })
    }

    fn ctl(&self, op: c_int, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        let mut ev = EpollEvent {
            events,
            data: token,
        };
        cvt(unsafe { epoll_ctl(self.fd, op, fd, &mut ev) }).map(|_| ())
    }

    /// Register `fd` with the given interest mask and token.
    pub fn add(&self, fd: RawFd, token: u64, events: u32) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, events, token)
    }

    /// Re-arm `fd` with a new interest mask (same token).
    pub fn modify(&self, fd: RawFd, token: u64, events: u32) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, events, token)
    }

    /// Remove `fd` from the interest set.
    pub fn delete(&self, fd: RawFd) -> io::Result<()> {
        self.ctl(EPOLL_CTL_DEL, fd, 0, 0)
    }

    /// Wait up to `timeout_ms` for readiness (`-1` blocks, `0` polls),
    /// retrying on EINTR. Returns how many of `events` were filled.
    pub fn wait(&self, events: &mut [EpollEvent], timeout_ms: i32) -> io::Result<usize> {
        loop {
            let n = unsafe {
                epoll_wait(
                    self.fd,
                    events.as_mut_ptr(),
                    events.len() as c_int,
                    timeout_ms,
                )
            };
            if n >= 0 {
                return Ok(n as usize);
            }
            let err = io::Error::last_os_error();
            if err.kind() != io::ErrorKind::Interrupted {
                return Err(err);
            }
        }
    }
}

impl Drop for Epoll {
    fn drop(&mut self) {
        unsafe {
            close(self.fd);
        }
    }
}

/// An owned eventfd used to wake a blocked `epoll_wait` from another
/// thread (new connection in the inbox, shutdown requested).
#[derive(Debug)]
pub struct EventFd {
    fd: RawFd,
}

impl EventFd {
    /// A nonblocking, close-on-exec eventfd with counter 0.
    pub fn new() -> io::Result<EventFd> {
        let fd = cvt(unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) })?;
        Ok(EventFd { fd })
    }

    /// The raw fd, for epoll registration.
    pub fn raw(&self) -> RawFd {
        self.fd
    }

    /// Wake the waiter (adds 1 to the counter; best-effort).
    pub fn signal(&self) {
        let one: u64 = 1;
        unsafe {
            write(self.fd, (&one as *const u64).cast(), 8);
        }
    }

    /// Consume all pending wakeups so the level-triggered registration
    /// goes quiet again.
    pub fn drain(&self) {
        let mut buf: u64 = 0;
        unsafe {
            read(self.fd, (&mut buf as *mut u64).cast(), 8);
        }
    }
}

impl Drop for EventFd {
    fn drop(&mut self) {
        unsafe {
            close(self.fd);
        }
    }
}

/// Switch `fd` into nonblocking mode via `fcntl` (the reactor does
/// this to every accepted socket before registering it).
pub fn set_nonblocking(fd: RawFd) -> io::Result<()> {
    let flags = cvt(unsafe { fcntl(fd, F_GETFL, 0) })?;
    cvt(unsafe { fcntl(fd, F_SETFL, flags | O_NONBLOCK) }).map(|_| ())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eventfd_wakes_epoll_and_drains_quiet() {
        let ep = Epoll::new().unwrap();
        let ev = EventFd::new().unwrap();
        ep.add(ev.raw(), 7, EPOLLIN).unwrap();
        let mut events = [EpollEvent::zeroed(); 4];
        // Nothing signalled yet: a zero-timeout wait returns empty.
        assert_eq!(ep.wait(&mut events, 0).unwrap(), 0);
        ev.signal();
        let n = ep.wait(&mut events, 1000).unwrap();
        assert_eq!(n, 1);
        let (mask, token) = (events[0].events, events[0].data);
        assert_eq!(token, 7);
        assert_ne!(mask & EPOLLIN, 0);
        // Drained, the level-triggered registration goes quiet.
        ev.drain();
        assert_eq!(ep.wait(&mut events, 0).unwrap(), 0);
    }

    #[test]
    fn modify_and_delete_change_the_interest_set() {
        let ep = Epoll::new().unwrap();
        let ev = EventFd::new().unwrap();
        ep.add(ev.raw(), 1, EPOLLIN).unwrap();
        ev.signal();
        // Re-armed for EPOLLOUT only: an eventfd below its max counter
        // is always writable, so the event fires with the new mask.
        ep.modify(ev.raw(), 1, EPOLLOUT).unwrap();
        let mut events = [EpollEvent::zeroed(); 4];
        let n = ep.wait(&mut events, 1000).unwrap();
        assert_eq!(n, 1);
        let mask = events[0].events;
        assert_ne!(mask & EPOLLOUT, 0);
        ep.delete(ev.raw()).unwrap();
        assert_eq!(ep.wait(&mut events, 0).unwrap(), 0);
    }
}
