//! In-process tuple sources.
//!
//! Not every producer is a socket: experiments drive the server with
//! `dt-workload` generators directly. A [`Source`] yields timestamped
//! arrivals; [`run_source`] feeds them through the same
//! [`ServerHandle::offer`] path the network uses, optionally pacing
//! deliveries against the server's clock (the `dt-workload`
//! wall-clock replay, §6.2.2).

use crate::server::ServerHandle;
use dt_types::{DtResult, Tuple};
use dt_workload::{generate, WorkloadConfig};

/// A producer of `(stream index, tuple)` arrivals in timestamp order.
pub trait Source {
    /// The next arrival, or `None` when the source is exhausted.
    fn next_arrival(&mut self) -> Option<(usize, Tuple)>;
}

/// A [`Source`] over a materialized arrival sequence — a parsed trace
/// file or a generated workload.
pub struct TraceSource {
    arrivals: std::vec::IntoIter<(usize, Tuple)>,
}

impl TraceSource {
    /// Wrap an arrival sequence (e.g. from
    /// [`dt_workload::parse_trace`]).
    pub fn new(arrivals: Vec<(usize, Tuple)>) -> Self {
        TraceSource {
            arrivals: arrivals.into_iter(),
        }
    }

    /// Generate a seeded workload scenario.
    pub fn generate(cfg: &WorkloadConfig) -> DtResult<Self> {
        Ok(TraceSource::new(generate(cfg)?))
    }
}

impl Source for TraceSource {
    fn next_arrival(&mut self) -> Option<(usize, Tuple)> {
        self.arrivals.next()
    }
}

/// Drain `source` into the server. With `paced` set, each delivery
/// waits until the server's clock reaches the tuple's timestamp —
/// real-rate replay on a monotonic clock, test-controlled delivery on
/// a virtual one. Returns the number of tuples offered.
pub fn run_source(handle: &ServerHandle, source: &mut dyn Source, paced: bool) -> DtResult<u64> {
    let clock = handle.clock();
    let mut n = 0u64;
    while let Some((stream, tuple)) = source.next_arrival() {
        if paced {
            // Clocks may wake early; re-check until the deadline.
            while clock.now() < tuple.ts {
                clock.sleep_until(tuple.ts);
            }
        }
        handle.offer(stream, tuple)?;
        n += 1;
    }
    Ok(n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dt_types::{Row, Timestamp};

    #[test]
    fn trace_source_yields_in_order() {
        let arrivals = vec![
            (
                0,
                Tuple::new(Row::from_ints(&[1]), Timestamp::from_micros(5)),
            ),
            (
                1,
                Tuple::new(Row::from_ints(&[2]), Timestamp::from_micros(9)),
            ),
        ];
        let mut src = TraceSource::new(arrivals.clone());
        assert_eq!(src.next_arrival(), Some(arrivals[0].clone()));
        assert_eq!(src.next_arrival(), Some(arrivals[1].clone()));
        assert_eq!(src.next_arrival(), None);
    }
}
