//! A minimal loopback client for the NDJSON ingest protocol.
//!
//! Integration tests (and the bursty-replay example) drive a running
//! server exactly like an external producer would: frames over a
//! `TcpStream`, stats over a second short-lived connection.
//!
//! The client is built for unreliable servers: every read carries a
//! configurable deadline surfaced as [`DtError::Timeout`] (a client on
//! a dead socket fails fast instead of blocking forever), and sends
//! retry with exponential backoff plus deterministic jitter,
//! reconnecting between attempts ([`RetryPolicy`]).

use crate::frame::{render_frame_tagged, Command};
use crate::stats::StreamSnapshot;
use dt_obs::{Counter, MetricsRegistry};
use dt_types::{DtError, DtResult, Json, Row, Timestamp};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

fn io_err(what: &str, e: std::io::Error) -> DtError {
    if e.kind() == std::io::ErrorKind::WouldBlock || e.kind() == std::io::ErrorKind::TimedOut {
        DtError::timeout(format!("{what}: {e}"))
    } else {
        DtError::engine(format!("{what}: {e}"))
    }
}

/// Retry discipline for client sends: up to `max_retries` reconnect
/// attempts, sleeping `base_backoff * 2^attempt` (capped at
/// `max_backoff`) plus deterministic jitter between attempts.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Reconnect-and-resend attempts after the first failure.
    pub max_retries: u32,
    /// First backoff sleep; doubles every attempt.
    pub base_backoff: Duration,
    /// Ceiling on any single backoff sleep.
    pub max_backoff: Duration,
    /// Seed for the deterministic jitter sequence (tests pin it).
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 3,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(200),
            jitter_seed: 1,
        }
    }
}

impl RetryPolicy {
    /// No retries: the first failure is final.
    pub fn none() -> Self {
        RetryPolicy {
            max_retries: 0,
            ..RetryPolicy::default()
        }
    }

    /// The backoff before retry `attempt` (0-based), jittered by up to
    /// +50% from a deterministic per-client sequence.
    fn backoff(&self, attempt: u32, jitter_state: &mut u64) -> Duration {
        let exp = self
            .base_backoff
            .saturating_mul(1u32 << attempt.min(16))
            .min(self.max_backoff);
        // xorshift64* — cheap, deterministic, good enough for jitter.
        let mut x = *jitter_state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        *jitter_state = x;
        let half = exp.as_micros() as u64 / 2;
        let jitter = if half == 0 { 0 } else { x % half };
        exp + Duration::from_micros(jitter)
    }
}

/// Knobs for [`Client::connect_with`].
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Deadline for reads on the ingest socket (the structured error
    /// frame, mostly). `None` blocks forever — the pre-deadline
    /// behavior, kept opt-in.
    pub read_timeout: Option<Duration>,
    /// Send retry discipline.
    pub retry: RetryPolicy,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            read_timeout: Some(Duration::from_secs(5)),
            retry: RetryPolicy::default(),
        }
    }
}

/// A connected frame producer.
pub struct Client {
    stream: TcpStream,
    addr: SocketAddr,
    cfg: ClientConfig,
    jitter_state: u64,
    retries: u64,
    retry_ctr: Option<Counter>,
}

impl Client {
    /// Connect to a server's ingest port with the default config
    /// (5 s read deadline, 3 retries).
    pub fn connect(addr: SocketAddr) -> DtResult<Client> {
        Self::connect_with(addr, ClientConfig::default())
    }

    /// Connect with explicit timeout/retry knobs.
    pub fn connect_with(addr: SocketAddr, cfg: ClientConfig) -> DtResult<Client> {
        let stream = Self::open(addr, &cfg)?;
        let jitter_state = cfg.retry.jitter_seed.max(1);
        Ok(Client {
            stream,
            addr,
            cfg,
            jitter_state,
            retries: 0,
            retry_ctr: None,
        })
    }

    /// Record retry counts on `reg` as `dt_client_retries_total`.
    pub fn with_metrics(mut self, reg: &MetricsRegistry) -> Self {
        self.retry_ctr = Some(reg.counter(
            "dt_client_retries_total",
            "Client send retries (reconnect-and-resend attempts)",
            &[],
        ));
        self
    }

    fn open(addr: SocketAddr, cfg: &ClientConfig) -> DtResult<TcpStream> {
        let stream = TcpStream::connect(addr).map_err(|e| io_err("connect", e))?;
        stream
            .set_nodelay(true)
            .map_err(|e| io_err("set_nodelay", e))?;
        stream
            .set_read_timeout(cfg.read_timeout)
            .map_err(|e| io_err("set_read_timeout", e))?;
        Ok(stream)
    }

    /// Retries performed by this client so far.
    pub fn retries(&self) -> u64 {
        self.retries
    }

    /// Send one tuple frame (with retry per the policy).
    pub fn send(&mut self, stream: &str, row: &Row, ts: Option<Timestamp>) -> DtResult<()> {
        self.send_tagged(stream, row, ts, None)
    }

    /// Send one tuple frame tagged with a tenant lane.
    pub fn send_tagged(
        &mut self,
        stream: &str,
        row: &Row,
        ts: Option<Timestamp>,
        tenant: Option<&str>,
    ) -> DtResult<()> {
        let line = render_frame_tagged(stream, row, ts, tenant)?;
        self.send_line(&line)
    }

    /// Send one control command and read its JSON reply line. A
    /// server-side `{"error":…}` reply surfaces as a config error.
    fn command(&mut self, cmd: &Command) -> DtResult<Json> {
        self.send_line(&cmd.render())?;
        let reply = self
            .recv_line()?
            .ok_or_else(|| DtError::engine("server closed before answering the command"))?;
        let doc = Json::parse(&reply)?;
        if let Some(e) = doc.get("error").and_then(Json::as_str) {
            return Err(DtError::config(e.to_string()));
        }
        Ok(doc)
    }

    /// Register a continuous query over the wire. Returns the query
    /// id the server assigned (use it with
    /// [`Client::unregister_query`]).
    pub fn register_query(
        &mut self,
        sql: &str,
        tenant: Option<&str>,
        delay_ms: Option<u64>,
        weight: Option<f64>,
    ) -> DtResult<u64> {
        let doc = self.command(&Command::Register {
            sql: sql.to_string(),
            tenant: tenant.map(str::to_string),
            delay_ms,
            weight,
        })?;
        doc.get("registered")
            .and_then(Json::as_i64)
            .filter(|&id| id >= 0)
            .map(|id| id as u64)
            .ok_or_else(|| DtError::config("register reply missing 'registered'"))
    }

    /// Detach a registered query at the next window boundary.
    /// Returns the first window it no longer covers.
    pub fn unregister_query(&mut self, id: u64) -> DtResult<u64> {
        let doc = self.command(&Command::Unregister { id })?;
        doc.get("active_to")
            .and_then(Json::as_i64)
            .filter(|&w| w >= 0)
            .map(|w| w as u64)
            .ok_or_else(|| DtError::config("unregister reply missing 'active_to'"))
    }

    /// List every query the server has ever registered.
    pub fn list_queries(&mut self) -> DtResult<Vec<QueryEntry>> {
        let doc = self.command(&Command::List)?;
        doc.get("queries")
            .and_then(Json::as_arr)
            .ok_or_else(|| DtError::config("list reply missing 'queries'"))?
            .iter()
            .map(|q| {
                QueryEntry::from_json(q)
                    .ok_or_else(|| DtError::config("bad query entry in list reply"))
            })
            .collect()
    }

    /// Send a raw line (tests use this to exercise the server's
    /// parse-error handling). On failure, reconnects and resends with
    /// exponential backoff + jitter up to the policy's retry cap; the
    /// error returned after the final attempt is the last failure.
    pub fn send_line(&mut self, line: &str) -> DtResult<()> {
        let payload = format!("{line}\n");
        let mut last = match self.stream.write_all(payload.as_bytes()) {
            Ok(()) => return Ok(()),
            Err(e) => io_err("send line", e),
        };
        for attempt in 0..self.cfg.retry.max_retries {
            self.retries += 1;
            if let Some(c) = &self.retry_ctr {
                c.inc();
            }
            std::thread::sleep(self.cfg.retry.backoff(attempt, &mut self.jitter_state));
            match Self::open(self.addr, &self.cfg) {
                Err(e) => last = e,
                Ok(fresh) => {
                    self.stream = fresh;
                    match self.stream.write_all(payload.as_bytes()) {
                        Ok(()) => return Ok(()),
                        Err(e) => last = io_err("send line (retry)", e),
                    }
                }
            }
        }
        Err(last)
    }

    /// Read one line from the server (the structured error frame the
    /// server sends before closing an over-budget connection).
    /// `Ok(None)` means clean EOF; a missed deadline surfaces as
    /// [`DtError::Timeout`].
    pub fn recv_line(&mut self) -> DtResult<Option<String>> {
        let mut out = Vec::new();
        let mut byte = [0u8; 1];
        loop {
            match self.stream.read(&mut byte) {
                Ok(0) => {
                    return Ok(if out.is_empty() {
                        None
                    } else {
                        Some(String::from_utf8_lossy(&out).into_owned())
                    });
                }
                Ok(_) => {
                    if byte[0] == b'\n' {
                        return Ok(Some(String::from_utf8_lossy(&out).into_owned()));
                    }
                    out.push(byte[0]);
                }
                Err(e) => return Err(io_err("recv line", e)),
            }
        }
    }

    /// Close the write side so the server sees EOF.
    pub fn close(self) -> DtResult<()> {
        self.stream
            .shutdown(std::net::Shutdown::Both)
            .map_err(|e| io_err("shutdown", e))
    }
}

/// One query from a `list` command reply.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryEntry {
    /// The server-assigned query id.
    pub id: u64,
    /// The registered statement.
    pub sql: String,
    /// Owning tenant, if any.
    pub tenant: Option<String>,
    /// Still registered?
    pub active: bool,
    /// Windows emitted for this query so far.
    pub windows_emitted: u64,
}

impl QueryEntry {
    fn from_json(j: &Json) -> Option<QueryEntry> {
        Some(QueryEntry {
            id: j.get("id")?.as_i64().filter(|&v| v >= 0)? as u64,
            sql: j.get("sql")?.as_str()?.to_string(),
            tenant: j.get("tenant").and_then(Json::as_str).map(str::to_string),
            active: matches!(j.get("active"), Some(Json::Bool(true))),
            windows_emitted: j.get("windows_emitted")?.as_i64().filter(|&v| v >= 0)? as u64,
        })
    }
}

/// A parsed `/stats` reply.
#[derive(Debug, Clone)]
pub struct StatsReply {
    /// Per-stream counters, in stream order.
    pub streams: Vec<StreamSnapshot>,
    /// Windows fully merged and emitted.
    pub windows_emitted: u64,
    /// Ingest lines that failed to parse.
    pub parse_errors: u64,
    /// Emitted windows flagged degraded (0 for servers that predate
    /// the field).
    pub windows_degraded: u64,
}

impl StatsReply {
    /// Counters for a stream by name.
    pub fn stream(&self, name: &str) -> Option<&StreamSnapshot> {
        self.streams.iter().find(|s| s.name == name)
    }

    /// Parse a `/stats` body — the JSON object the server sends, or
    /// the legacy `key value` text format.
    pub fn parse(body: &str) -> DtResult<StatsReply> {
        if body.trim_start().starts_with('{') {
            return Self::parse_json(body);
        }
        let mut reply = StatsReply {
            streams: Vec::new(),
            windows_emitted: 0,
            parse_errors: 0,
            windows_degraded: 0,
        };
        for line in body.lines() {
            if let Some(s) = StreamSnapshot::parse_line(line) {
                reply.streams.push(s);
                continue;
            }
            let mut it = line.split_whitespace();
            match (it.next(), it.next()) {
                (Some("windows_emitted"), Some(v)) => {
                    reply.windows_emitted = v
                        .parse()
                        .map_err(|_| DtError::config("bad windows_emitted"))?;
                }
                (Some("parse_errors"), Some(v)) => {
                    reply.parse_errors =
                        v.parse().map_err(|_| DtError::config("bad parse_errors"))?;
                }
                (Some("windows_degraded"), Some(v)) => {
                    reply.windows_degraded = v
                        .parse()
                        .map_err(|_| DtError::config("bad windows_degraded"))?;
                }
                (None, _) => {}
                _ => return Err(DtError::config(format!("bad stats line: {line}"))),
            }
        }
        Ok(reply)
    }

    fn parse_json(body: &str) -> DtResult<StatsReply> {
        let j = Json::parse(body.trim())?;
        let streams = j
            .get("streams")
            .and_then(Json::as_arr)
            .ok_or_else(|| DtError::config("stats reply missing 'streams'"))?
            .iter()
            .map(|s| {
                StreamSnapshot::from_json(s)
                    .ok_or_else(|| DtError::config("bad stream snapshot in stats reply"))
            })
            .collect::<DtResult<Vec<_>>>()?;
        let count = |key: &str| {
            j.get(key)
                .and_then(Json::as_i64)
                .filter(|&v| v >= 0)
                .map(|v| v as u64)
                .ok_or_else(|| DtError::config(format!("stats reply missing '{key}'")))
        };
        Ok(StatsReply {
            streams,
            windows_emitted: count("windows_emitted")?,
            parse_errors: count("parse_errors")?,
            // Optional for wire compatibility with older servers.
            windows_degraded: count("windows_degraded").unwrap_or(0),
        })
    }
}

/// One short-lived HTTP-ish GET: send the request line, read the whole
/// reply under `timeout`, strip the response headers (if any). A
/// server that accepts but never answers yields [`DtError::Timeout`]
/// instead of a hung client.
fn http_get(addr: SocketAddr, path: &str, timeout: Option<Duration>) -> DtResult<String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| io_err("connect", e))?;
    stream
        .set_read_timeout(timeout)
        .map_err(|e| io_err("set_read_timeout", e))?;
    stream
        .write_all(format!("GET {path} HTTP/1.0\r\n\r\n").as_bytes())
        .map_err(|e| io_err("request", e))?;
    stream
        .shutdown(std::net::Shutdown::Write)
        .map_err(|e| io_err("shutdown write", e))?;
    let mut reply = String::new();
    stream
        .read_to_string(&mut reply)
        .map_err(|e| io_err("reply", e))?;
    Ok(match reply.find("\r\n\r\n") {
        Some(i) => reply[i + 4..].to_string(),
        None => reply,
    })
}

/// Default deadline for the short-lived stats/metrics fetches.
const FETCH_TIMEOUT: Duration = Duration::from_secs(5);

/// Fetch and parse `/stats` over a short-lived connection (5 s
/// deadline).
pub fn fetch_stats(addr: SocketAddr) -> DtResult<StatsReply> {
    fetch_stats_with(addr, Some(FETCH_TIMEOUT))
}

/// Fetch and parse `/stats` with an explicit read deadline (`None`
/// blocks forever).
pub fn fetch_stats_with(addr: SocketAddr, timeout: Option<Duration>) -> DtResult<StatsReply> {
    StatsReply::parse(&http_get(addr, "/stats", timeout)?)
}

/// Fetch the raw `/metrics` Prometheus exposition body (5 s deadline).
pub fn fetch_metrics(addr: SocketAddr) -> DtResult<String> {
    fetch_metrics_with(addr, Some(FETCH_TIMEOUT))
}

/// Fetch `/metrics` with an explicit read deadline.
pub fn fetch_metrics_with(addr: SocketAddr, timeout: Option<Duration>) -> DtResult<String> {
    http_get(addr, "/metrics", timeout)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_reply_parses_the_text_format() {
        let body = "stream R offered 10 kept 7 shed 3 late 0\nwindows_emitted 4\nparse_errors 1\n";
        let reply = StatsReply::parse(body).unwrap();
        assert_eq!(reply.stream("R").unwrap().shed, 3);
        assert_eq!(reply.windows_emitted, 4);
        assert_eq!(reply.parse_errors, 1);
        assert_eq!(reply.windows_degraded, 0);
        assert!(reply.stream("S").is_none());
    }

    #[test]
    fn stats_reply_parses_the_json_format() {
        let body = concat!(
            r#"{"streams":[{"name":"R","offered":10,"kept":7,"shed":3,"late":1}],"#,
            r#""windows_emitted":4,"parse_errors":2,"windows_degraded":1}"#
        );
        let reply = StatsReply::parse(body).unwrap();
        assert_eq!(reply.stream("R").unwrap().kept, 7);
        assert_eq!(reply.stream("R").unwrap().late, 1);
        assert_eq!(reply.windows_emitted, 4);
        assert_eq!(reply.parse_errors, 2);
        assert_eq!(reply.windows_degraded, 1);
    }

    #[test]
    fn stats_reply_tolerates_a_missing_degraded_count() {
        // Wire compatibility: replies from servers that predate the
        // degraded counter still parse.
        let body = concat!(
            r#"{"streams":[{"name":"R","offered":1,"kept":1,"shed":0,"late":0}],"#,
            r#""windows_emitted":1,"parse_errors":0}"#
        );
        let reply = StatsReply::parse(body).unwrap();
        assert_eq!(reply.windows_degraded, 0);
    }

    #[test]
    fn stats_reply_rejects_garbage() {
        assert!(StatsReply::parse("nonsense here").is_err());
        assert!(StatsReply::parse(r#"{"streams":[{"name":"R"}]}"#).is_err());
        assert!(StatsReply::parse(r#"{"windows_emitted":1}"#).is_err());
    }

    #[test]
    fn backoff_grows_caps_and_jitters_deterministically() {
        let p = RetryPolicy {
            max_retries: 8,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(80),
            jitter_seed: 7,
        };
        let mut s1 = 7u64;
        let mut s2 = 7u64;
        let a: Vec<Duration> = (0..6).map(|i| p.backoff(i, &mut s1)).collect();
        let b: Vec<Duration> = (0..6).map(|i| p.backoff(i, &mut s2)).collect();
        assert_eq!(a, b, "same seed, same jitter sequence");
        for (i, d) in a.iter().enumerate() {
            let exp = Duration::from_millis(10)
                .saturating_mul(1 << i)
                .min(Duration::from_millis(80));
            assert!(*d >= exp, "attempt {i}: {d:?} below base {exp:?}");
            assert!(
                *d < exp + exp / 2 + Duration::from_millis(1),
                "attempt {i}: {d:?} over-jittered"
            );
        }
        // The exponential portion caps at max_backoff.
        assert!(a[5] < Duration::from_millis(121));
    }
}
