//! A minimal loopback client for the NDJSON ingest protocol.
//!
//! Integration tests (and the bursty-replay example) drive a running
//! server exactly like an external producer would: frames over a
//! `TcpStream`, stats over a second short-lived connection.

use crate::frame::render_frame;
use crate::stats::StreamSnapshot;
use dt_types::{DtError, DtResult, Json, Row, Timestamp};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};

fn io_err(what: &str, e: std::io::Error) -> DtError {
    DtError::engine(format!("{what}: {e}"))
}

/// A connected frame producer.
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connect to a server's ingest port.
    pub fn connect(addr: SocketAddr) -> DtResult<Client> {
        let stream = TcpStream::connect(addr).map_err(|e| io_err("connect", e))?;
        stream
            .set_nodelay(true)
            .map_err(|e| io_err("set_nodelay", e))?;
        Ok(Client { stream })
    }

    /// Send one tuple frame.
    pub fn send(&mut self, stream: &str, row: &Row, ts: Option<Timestamp>) -> DtResult<()> {
        let mut line = render_frame(stream, row, ts)?;
        line.push('\n');
        self.stream
            .write_all(line.as_bytes())
            .map_err(|e| io_err("send frame", e))
    }

    /// Send a raw line (tests use this to exercise the server's
    /// parse-error handling).
    pub fn send_line(&mut self, line: &str) -> DtResult<()> {
        self.stream
            .write_all(format!("{line}\n").as_bytes())
            .map_err(|e| io_err("send line", e))
    }

    /// Close the write side so the server sees EOF.
    pub fn close(self) -> DtResult<()> {
        self.stream
            .shutdown(std::net::Shutdown::Both)
            .map_err(|e| io_err("shutdown", e))
    }
}

/// A parsed `/stats` reply.
#[derive(Debug, Clone)]
pub struct StatsReply {
    /// Per-stream counters, in stream order.
    pub streams: Vec<StreamSnapshot>,
    /// Windows fully merged and emitted.
    pub windows_emitted: u64,
    /// Ingest lines that failed to parse.
    pub parse_errors: u64,
}

impl StatsReply {
    /// Counters for a stream by name.
    pub fn stream(&self, name: &str) -> Option<&StreamSnapshot> {
        self.streams.iter().find(|s| s.name == name)
    }

    /// Parse a `/stats` body — the JSON object the server sends, or
    /// the legacy `key value` text format.
    pub fn parse(body: &str) -> DtResult<StatsReply> {
        if body.trim_start().starts_with('{') {
            return Self::parse_json(body);
        }
        let mut reply = StatsReply {
            streams: Vec::new(),
            windows_emitted: 0,
            parse_errors: 0,
        };
        for line in body.lines() {
            if let Some(s) = StreamSnapshot::parse_line(line) {
                reply.streams.push(s);
                continue;
            }
            let mut it = line.split_whitespace();
            match (it.next(), it.next()) {
                (Some("windows_emitted"), Some(v)) => {
                    reply.windows_emitted = v
                        .parse()
                        .map_err(|_| DtError::config("bad windows_emitted"))?;
                }
                (Some("parse_errors"), Some(v)) => {
                    reply.parse_errors =
                        v.parse().map_err(|_| DtError::config("bad parse_errors"))?;
                }
                (None, _) => {}
                _ => return Err(DtError::config(format!("bad stats line: {line}"))),
            }
        }
        Ok(reply)
    }

    fn parse_json(body: &str) -> DtResult<StatsReply> {
        let j = Json::parse(body.trim())?;
        let streams = j
            .get("streams")
            .and_then(Json::as_arr)
            .ok_or_else(|| DtError::config("stats reply missing 'streams'"))?
            .iter()
            .map(|s| {
                StreamSnapshot::from_json(s)
                    .ok_or_else(|| DtError::config("bad stream snapshot in stats reply"))
            })
            .collect::<DtResult<Vec<_>>>()?;
        let count = |key: &str| {
            j.get(key)
                .and_then(Json::as_i64)
                .filter(|&v| v >= 0)
                .map(|v| v as u64)
                .ok_or_else(|| DtError::config(format!("stats reply missing '{key}'")))
        };
        Ok(StatsReply {
            streams,
            windows_emitted: count("windows_emitted")?,
            parse_errors: count("parse_errors")?,
        })
    }
}

/// One short-lived HTTP-ish GET: send the request line, read the whole
/// reply, strip the response headers (if any).
fn http_get(addr: SocketAddr, path: &str) -> DtResult<String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| io_err("connect", e))?;
    stream
        .write_all(format!("GET {path} HTTP/1.0\r\n\r\n").as_bytes())
        .map_err(|e| io_err("request", e))?;
    stream
        .shutdown(std::net::Shutdown::Write)
        .map_err(|e| io_err("shutdown write", e))?;
    let mut reply = String::new();
    stream
        .read_to_string(&mut reply)
        .map_err(|e| io_err("reply", e))?;
    Ok(match reply.find("\r\n\r\n") {
        Some(i) => reply[i + 4..].to_string(),
        None => reply,
    })
}

/// Fetch and parse `/stats` over a short-lived connection.
pub fn fetch_stats(addr: SocketAddr) -> DtResult<StatsReply> {
    StatsReply::parse(&http_get(addr, "/stats")?)
}

/// Fetch the raw `/metrics` Prometheus exposition body.
pub fn fetch_metrics(addr: SocketAddr) -> DtResult<String> {
    http_get(addr, "/metrics")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_reply_parses_the_text_format() {
        let body = "stream R offered 10 kept 7 shed 3 late 0\nwindows_emitted 4\nparse_errors 1\n";
        let reply = StatsReply::parse(body).unwrap();
        assert_eq!(reply.stream("R").unwrap().shed, 3);
        assert_eq!(reply.windows_emitted, 4);
        assert_eq!(reply.parse_errors, 1);
        assert!(reply.stream("S").is_none());
    }

    #[test]
    fn stats_reply_parses_the_json_format() {
        let body = concat!(
            r#"{"streams":[{"name":"R","offered":10,"kept":7,"shed":3,"late":1}],"#,
            r#""windows_emitted":4,"parse_errors":2}"#
        );
        let reply = StatsReply::parse(body).unwrap();
        assert_eq!(reply.stream("R").unwrap().kept, 7);
        assert_eq!(reply.stream("R").unwrap().late, 1);
        assert_eq!(reply.windows_emitted, 4);
        assert_eq!(reply.parse_errors, 2);
    }

    #[test]
    fn stats_reply_rejects_garbage() {
        assert!(StatsReply::parse("nonsense here").is_err());
        assert!(StatsReply::parse(r#"{"streams":[{"name":"R"}]}"#).is_err());
        assert!(StatsReply::parse(r#"{"windows_emitted":1}"#).is_err());
    }
}
