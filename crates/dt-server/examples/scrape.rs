//! Scrape a running `dt-serve` once and print the body.
//!
//! ```sh
//! cargo run -p dt-server --example scrape -- 127.0.0.1:7077           # /metrics
//! cargo run -p dt-server --example scrape -- 127.0.0.1:7077 --stats   # /stats
//! ```
//!
//! The CI smoke step uses this in place of `curl` so the gate has no
//! dependency outside the workspace.

use dt_server::{fetch_metrics, fetch_stats};
use std::net::SocketAddr;

fn main() {
    let mut args = std::env::args().skip(1);
    let addr: SocketAddr = args
        .next()
        .expect("usage: scrape ADDR [--stats]")
        .parse()
        .expect("ADDR must be host:port");
    match args.next().as_deref() {
        Some("--stats") => {
            let reply = fetch_stats(addr).expect("fetch /stats");
            for s in &reply.streams {
                println!(
                    "stream {} offered {} kept {} shed {} late {}",
                    s.name, s.offered, s.kept, s.shed, s.late
                );
            }
            println!("windows_emitted {}", reply.windows_emitted);
            println!("parse_errors {}", reply.parse_errors);
        }
        _ => print!("{}", fetch_metrics(addr).expect("fetch /metrics")),
    }
}
