//! Scrape a running `dt-serve` once and print the body.
//!
//! ```sh
//! cargo run -p dt-server --example scrape -- 127.0.0.1:7077           # /metrics
//! cargo run -p dt-server --example scrape -- 127.0.0.1:7077 --stats   # /stats digest
//! cargo run -p dt-server --example scrape -- 127.0.0.1:7077 --raw     # /stats raw JSON
//! ```
//!
//! The CI smoke step uses this in place of `curl` so the gate has no
//! dependency outside the workspace.

use dt_server::{fetch_metrics, fetch_stats};
use std::io::{Read, Write};
use std::net::SocketAddr;

/// One raw `GET /stats`, body printed verbatim (headers stripped).
fn raw_stats(addr: SocketAddr) -> String {
    let mut s = std::net::TcpStream::connect(addr).expect("connect");
    s.write_all(b"GET /stats HTTP/1.0\r\n\r\n")
        .expect("request");
    s.shutdown(std::net::Shutdown::Write).expect("shutdown");
    let mut reply = String::new();
    s.read_to_string(&mut reply).expect("reply");
    match reply.split_once("\r\n\r\n") {
        Some((_, body)) => body.to_string(),
        None => reply,
    }
}

fn main() {
    let mut args = std::env::args().skip(1);
    let addr: SocketAddr = args
        .next()
        .expect("usage: scrape ADDR [--stats]")
        .parse()
        .expect("ADDR must be host:port");
    match args.next().as_deref() {
        Some("--raw") => print!("{}", raw_stats(addr)),
        Some("--stats") => {
            let reply = fetch_stats(addr).expect("fetch /stats");
            for s in &reply.streams {
                println!(
                    "stream {} offered {} kept {} shed {} late {}",
                    s.name, s.offered, s.kept, s.shed, s.late
                );
            }
            println!("windows_emitted {}", reply.windows_emitted);
            println!("parse_errors {}", reply.parse_errors);
        }
        _ => print!("{}", fetch_metrics(addr).expect("fetch /metrics")),
    }
}
