//! Replay the paper's bursty 3-stream workload through a real socket.
//!
//! This is the end-to-end runtime demo: a [`Server`] hosting the
//! Fig. 7 join query listens on loopback, a client thread generates
//! the §6.2 two-state bursty workload and replays it over TCP at its
//! recorded arrival times (against the server's monotonic clock), and
//! the run ends with a graceful drain and the final JSON report.
//! Watch the shed counters: they stay near zero between bursts and
//! jump during them — load shedding driven by genuine backpressure,
//! not simulation.
//!
//! ```text
//! cargo run --example bursty_replay
//! ```

use dt_query::Catalog;
use dt_server::{fetch_stats, Client, MonotonicClock, Server, ServerConfig};
use dt_synopsis::SynopsisConfig;
use dt_types::{DataType, DtResult, Schema, ToJson, VDuration};
use dt_workload::{generate, replay, WorkloadConfig};
use std::sync::Arc;

const FIG7: &str = "SELECT a, COUNT(*) as count FROM R,S,T \
                    WHERE R.a = S.b AND S.c = T.d GROUP BY a \
                    WINDOW R['1 second'], S['1 second'], T['1 second']";

fn main() -> DtResult<()> {
    let mut catalog = Catalog::new();
    catalog.add_stream("R", Schema::from_pairs(&[("a", DataType::Int)]));
    catalog.add_stream(
        "S",
        Schema::from_pairs(&[("b", DataType::Int), ("c", DataType::Int)]),
    );
    catalog.add_stream("T", Schema::from_pairs(&[("d", DataType::Int)]));

    let mut cfg = ServerConfig::new(FIG7, catalog);
    cfg.window = Some(VDuration::from_millis(250));
    cfg.channel_capacity = 100;
    cfg.grace = VDuration::from_millis(50);
    cfg.synopsis = SynopsisConfig::Sparse { cell_width: 10 };

    let clock = Arc::new(MonotonicClock::new());
    let server = Server::start(&cfg, Some("127.0.0.1:0"), clock.clone())?;
    let addr = server.addr().expect("bound");
    eprintln!("server on {addr}");

    // The paper's bursty process: 60 % of tuples in bursts arriving
    // 100× as fast as the base rate, burst values drawn from a
    // shifted Gaussian. ~4 s of traffic at these settings.
    let workload = WorkloadConfig::paper_bursty(2_000.0, 20_000, 42);
    let arrivals = generate(&workload)?;
    let stream_names = ["R", "S", "T"];

    let replayer = std::thread::spawn(move || -> DtResult<u64> {
        let mut client = Client::connect(addr)?;
        let clock = MonotonicClock::new();
        let n = replay(&arrivals, &clock, |stream, tuple| {
            client.send(stream_names[stream], &tuple.row, Some(tuple.ts))
        })?;
        client.close()?;
        Ok(n)
    });

    // Poll the /stats endpoint while the replay runs, like an
    // operator would.
    loop {
        std::thread::sleep(std::time::Duration::from_millis(500));
        let stats = fetch_stats(addr)?;
        let (offered, shed): (u64, u64) = stats
            .streams
            .iter()
            .map(|s| (s.offered, s.shed))
            .fold((0, 0), |(o, d), (so, sd)| (o + so, d + sd));
        eprintln!(
            "offered {offered:>6}  shed {shed:>5}  windows {:>3}",
            stats.windows_emitted
        );
        if replayer.is_finished() {
            break;
        }
    }
    let sent = replayer.join().expect("replayer thread")?;
    eprintln!("replayed {sent} tuples; draining…");

    let report = server.shutdown()?;
    for s in &report.streams {
        eprintln!(
            "stream {}: offered {} kept {} shed {} late {}",
            s.name, s.offered, s.kept, s.shed, s.late
        );
    }
    println!("{}", report.to_json().render_pretty());
    Ok(())
}
