//! Property tests pinning synopsis estimates to the exact relational
//! algebra of `dt-algebra`.
//!
//! The strongest statements hold at per-value resolution (sparse cell
//! width 1), where the histogram estimate degenerates to exact
//! counting; coarser configurations are checked for the invariants
//! that must hold at *any* resolution (mass conservation under π and
//! ∪, join-mass formulas, estimate non-negativity).

use dt_algebra::Relation;
use dt_synopsis::{Synopsis, SynopsisConfig};
use dt_types::Row;
use proptest::prelude::*;

fn to_relation(points: &[Vec<i64>]) -> Relation {
    Relation::from_rows(points.iter().map(|p| Row::from_ints(p)))
}

fn build(cfg: &SynopsisConfig, dims: usize, points: &[Vec<i64>]) -> Synopsis {
    let mut s = cfg.build(dims).unwrap();
    for p in points {
        s.insert(p).unwrap();
    }
    s.seal();
    s
}

fn arb_points(dims: usize, domain: i64, max: usize) -> impl Strategy<Value = Vec<Vec<i64>>> {
    prop::collection::vec(prop::collection::vec(0..domain, dims), 0..=max)
}

/// Coarse configurations valid at `dims` dimensions (wavelets support
/// only 1–2 dims, and their mass invariants need a full coefficient
/// budget because thresholding clamps reconstruction ringing).
fn coarse_configs(dims: usize) -> Vec<SynopsisConfig> {
    let mut v = vec![
        SynopsisConfig::Sparse { cell_width: 4 },
        SynopsisConfig::MHist {
            max_buckets: 6,
            alignment: None,
        },
        SynopsisConfig::MHist {
            max_buckets: 6,
            alignment: Some(4),
        },
        SynopsisConfig::Reservoir {
            capacity: 8,
            seed: 11,
        },
    ];
    if dims <= 2 {
        v.push(SynopsisConfig::Wavelet {
            budget: 32usize.pow(dims as u32),
            domain: 32,
        });
    }
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Sparse w=1 `GROUP BY` counts are exactly the relational counts.
    #[test]
    fn sparse_w1_group_counts_are_exact(points in arb_points(2, 12, 40)) {
        let syn = build(&SynopsisConfig::Sparse { cell_width: 1 }, 2, &points);
        let rel = to_relation(&points);
        let est = syn.group_counts(0).unwrap();
        let exact = rel.project(&[0]);
        for (row, c) in exact.iter() {
            let v = row[0].as_i64().unwrap();
            prop_assert!((est[&v] - c as f64).abs() < 1e-9);
        }
        let est_total: f64 = est.values().sum();
        prop_assert!((est_total - rel.len() as f64).abs() < 1e-9);
    }

    /// Sparse w=1 equijoin estimates are exactly the relational join.
    #[test]
    fn sparse_w1_join_is_exact(
        a in arb_points(1, 8, 25),
        b in arb_points(1, 8, 25),
    ) {
        let sa = build(&SynopsisConfig::Sparse { cell_width: 1 }, 1, &a);
        let sb = build(&SynopsisConfig::Sparse { cell_width: 1 }, 1, &b);
        let j = sa.equijoin(0, &sb, 0).unwrap();
        let exact = to_relation(&a).equijoin(&to_relation(&b), &[(0, 0)]);
        prop_assert!((j.total_mass() - exact.len() as f64).abs() < 1e-6,
            "est {} vs exact {}", j.total_mass(), exact.len());
    }

    /// Total mass equals the tuple count for every structure.
    #[test]
    fn mass_equals_count(points in arb_points(2, 20, 30)) {
        for cfg in coarse_configs(2) {
            let syn = build(&cfg, 2, &points);
            prop_assert!((syn.total_mass() - points.len() as f64).abs() < 1e-6,
                "{}: {}", cfg.label(), syn.total_mass());
        }
    }

    /// π conserves mass at any resolution.
    #[test]
    fn project_conserves_mass(points in arb_points(3, 20, 30)) {
        for cfg in coarse_configs(3) {
            let syn = build(&cfg, 3, &points);
            let p = syn.project(&[1]).unwrap();
            prop_assert!((p.total_mass() - syn.total_mass()).abs() < 1e-6,
                "{}", cfg.label());
        }
    }

    /// ∪ adds mass at any resolution.
    #[test]
    fn union_adds_mass(
        a in arb_points(1, 20, 20),
        b in arb_points(1, 20, 20),
    ) {
        for cfg in coarse_configs(1) {
            let sa = build(&cfg, 1, &a);
            let sb = build(&cfg, 1, &b);
            let u = sa.union_all(&sb).unwrap();
            prop_assert!((u.total_mass() - (a.len() + b.len()) as f64).abs() < 1e-6,
                "{}", cfg.label());
        }
    }

    /// σ never increases mass, and a full-domain σ is the identity on
    /// mass.
    #[test]
    fn select_bounds_mass(points in arb_points(1, 20, 30)) {
        for cfg in coarse_configs(1) {
            let syn = build(&cfg, 1, &points);
            let some = syn.select_range(0, 5, 12).unwrap();
            prop_assert!(some.total_mass() <= syn.total_mass() + 1e-9, "{}", cfg.label());
            let all = syn.select_range(0, -1000, 1000).unwrap();
            prop_assert!((all.total_mass() - syn.total_mass()).abs() < 1e-6, "{}", cfg.label());
        }
    }

    /// Group-count estimates are non-negative and sum to the total
    /// mass at any resolution.
    #[test]
    fn group_counts_partition_mass(points in arb_points(2, 20, 30)) {
        for cfg in coarse_configs(2) {
            let syn = build(&cfg, 2, &points);
            let g = syn.group_counts(1).unwrap();
            for (&v, &m) in &g {
                prop_assert!(m >= 0.0, "{}: value {v} mass {m}", cfg.label());
            }
            let sum: f64 = g.values().sum();
            prop_assert!((sum - syn.total_mass()).abs() < 1e-6, "{}", cfg.label());
        }
    }

    /// The sparse histogram's join mass obeys the closed form
    /// Σ m_s(c)·m_t(c)/w over matching cells.
    #[test]
    fn sparse_join_mass_closed_form(
        a in arb_points(1, 30, 25),
        b in arb_points(1, 30, 25),
        w in 1i64..6,
    ) {
        let cfg = SynopsisConfig::Sparse { cell_width: w };
        let sa = build(&cfg, 1, &a);
        let sb = build(&cfg, 1, &b);
        let j = sa.equijoin(0, &sb, 0).unwrap();
        // Closed form over per-cell masses.
        let mut cell_a: std::collections::HashMap<i64, f64> = Default::default();
        for p in &a { *cell_a.entry(p[0].div_euclid(w)).or_default() += 1.0; }
        let mut cell_b: std::collections::HashMap<i64, f64> = Default::default();
        for p in &b { *cell_b.entry(p[0].div_euclid(w)).or_default() += 1.0; }
        let expected: f64 = cell_a
            .iter()
            .filter_map(|(c, ma)| cell_b.get(c).map(|mb| ma * mb / w as f64))
            .sum();
        prop_assert!((j.total_mass() - expected).abs() < 1e-6);
    }

    /// Sparse group counts at coarse width still converge to exact
    /// counts when the data is cell-uniform (each cell's values hit
    /// uniformly) — the histogram's modelling assumption.
    #[test]
    fn sparse_exact_under_uniform_cells(cells in prop::collection::vec(0i64..5, 1..6), w in 2i64..5) {
        // For each chosen cell, insert one tuple at *every* value of
        // the cell: intra-cell uniformity holds exactly.
        let mut points = Vec::new();
        for &c in &cells {
            for v in c * w..(c + 1) * w {
                points.push(vec![v]);
            }
        }
        let syn = build(&SynopsisConfig::Sparse { cell_width: w }, 1, &points);
        let rel = to_relation(&points);
        let est = syn.group_counts(0).unwrap();
        for (row, c) in rel.iter() {
            let v = row[0].as_i64().unwrap();
            prop_assert!((est[&v] - c as f64).abs() < 1e-9);
        }
    }
}
