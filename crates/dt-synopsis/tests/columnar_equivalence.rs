//! Property test: the vectorized column-insert kernels leave every
//! synopsis kind in a state **bit-identical** to inserting the same
//! unit-mass points one at a time, in row order. This is the synopsis
//! half of the columnar-path acceptance test (the engine half lives in
//! dt-engine's `columnar_equivalence`).

use dt_synopsis::SynopsisConfig;
use proptest::prelude::*;

fn all_configs() -> Vec<SynopsisConfig> {
    vec![
        SynopsisConfig::Sparse { cell_width: 10 },
        SynopsisConfig::MHist {
            max_buckets: 8,
            alignment: Some(10),
        },
        SynopsisConfig::Reservoir {
            capacity: 16,
            seed: 7,
        },
        SynopsisConfig::Wavelet {
            budget: 8,
            domain: 128,
        },
        SynopsisConfig::AdaptiveSparse {
            base_width: 4,
            max_cells: 16,
        },
    ]
}

fn arb_points(dims: usize, max: usize) -> impl Strategy<Value = Vec<Vec<i64>>> {
    prop::collection::vec(prop::collection::vec(-100i64..100, dims), 0..=max)
}

/// Transpose row-wise points into per-dimension columns.
fn columns_of(points: &[Vec<i64>], dims: usize) -> Vec<Vec<i64>> {
    let mut cols = vec![Vec::with_capacity(points.len()); dims];
    for p in points {
        for (d, col) in cols.iter_mut().enumerate() {
            col.push(p[d]);
        }
    }
    cols
}

fn check_equivalence(points: &[Vec<i64>], dims: usize) -> Result<(), TestCaseError> {
    let cols = columns_of(points, dims);
    for cfg in all_configs() {
        // Some kinds bound their dimensionality (wavelets are 1-D/2-D).
        let Ok(mut scalar) = cfg.build(dims) else {
            continue;
        };
        for p in points {
            scalar.insert(p).unwrap();
        }
        let mut columnar = cfg.build(dims).unwrap();
        columnar.insert_columns(&cols).unwrap();
        prop_assert_eq!(
            &scalar,
            &columnar,
            "pre-seal state diverged for {}",
            cfg.label()
        );
        scalar.seal();
        columnar.seal();
        prop_assert_eq!(
            &scalar,
            &columnar,
            "sealed state diverged for {}",
            cfg.label()
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn columnar_insert_matches_scalar_1d(points in arb_points(1, 200)) {
        check_equivalence(&points, 1)?;
    }

    #[test]
    fn columnar_insert_matches_scalar_2d(points in arb_points(2, 120)) {
        check_equivalence(&points, 2)?;
    }

    #[test]
    fn columnar_insert_matches_scalar_3d(points in arb_points(3, 80)) {
        check_equivalence(&points, 3)?;
    }
}

#[test]
fn empty_columns_are_a_no_op() {
    for cfg in all_configs() {
        let mut s = cfg.build(2).unwrap();
        s.insert_columns(&[vec![], vec![]]).unwrap();
        assert!(s.is_empty(), "{}", cfg.label());
    }
}

#[test]
fn dimension_mismatch_is_rejected() {
    let mut s = SynopsisConfig::default_sparse().build(2).unwrap();
    assert!(s.insert_columns(&[vec![1]]).is_err());
    let mut m = SynopsisConfig::MHist {
        max_buckets: 4,
        alignment: None,
    }
    .build(2)
    .unwrap();
    assert!(m.insert_columns(&[vec![1]]).is_err());
}

#[test]
fn unequal_column_lengths_are_rejected() {
    for cfg in all_configs() {
        let mut s = cfg.build(2).unwrap();
        assert!(
            s.insert_columns(&[vec![1, 2], vec![3]]).is_err(),
            "{}",
            cfg.label()
        );
    }
}
