//! Structural property tests for the synopsis implementations:
//! MAXDIFF bucket geometry, wavelet transform identities, adaptive
//! budgets, and compression invariants — the internal guarantees the
//! estimator correctness rests on.

use dt_synopsis::{AdaptiveSparse, MHist, MHistConfig, SparseHist, WaveletSynopsis};
use proptest::prelude::*;

fn arb_points(dims: usize, domain: i64, max: usize) -> impl Strategy<Value = Vec<Vec<i64>>> {
    prop::collection::vec(prop::collection::vec(0..domain, dims), 1..=max)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// MAXDIFF buckets never overlap and every point lies in exactly
    /// one bucket; masses partition the input count.
    #[test]
    fn mhist_buckets_partition(
        points in arb_points(2, 30, 60),
        max_buckets in 1usize..20,
    ) {
        let mut h = MHist::new(2, MHistConfig::unaligned(max_buckets)).unwrap();
        for p in &points {
            h.insert(p).unwrap();
        }
        h.freeze();
        let buckets = h.built_buckets().into_owned();
        prop_assert!(buckets.len() <= max_buckets);
        // Every point in exactly one bucket.
        for p in &points {
            let containing = buckets
                .iter()
                .filter(|b| {
                    b.bounds
                        .iter()
                        .zip(p)
                        .all(|(&(lo, hi), &v)| v >= lo && v < hi)
                })
                .count();
            prop_assert_eq!(containing, 1, "point {:?}", p);
        }
        // Masses sum to the point count.
        let mass: f64 = buckets.iter().map(|b| b.mass).sum();
        prop_assert!((mass - points.len() as f64).abs() < 1e-9);
        // Bounds are well-formed.
        for b in &buckets {
            for &(lo, hi) in &b.bounds {
                prop_assert!(lo < hi);
            }
        }
    }

    /// Aligned MHIST interior boundaries land on the grid.
    #[test]
    fn aligned_mhist_boundaries_on_grid(
        points in arb_points(1, 50, 60),
        g in 2i64..8,
    ) {
        let mut h = MHist::new(1, MHistConfig::aligned(12, g)).unwrap();
        for p in &points {
            h.insert(p).unwrap();
        }
        h.freeze();
        for b in h.built_buckets().iter() {
            let (lo, hi) = b.bounds[0];
            prop_assert_eq!(lo.rem_euclid(g), 0, "lo {} grid {}", lo, g);
            prop_assert_eq!(hi.rem_euclid(g), 0, "hi {} grid {}", hi, g);
        }
    }

    /// Compression preserves mass and respects the target for any
    /// input.
    #[test]
    fn mhist_compress_invariants(
        points in arb_points(1, 40, 50),
        target in 1usize..10,
    ) {
        let mut h = MHist::new(1, MHistConfig::unaligned(16)).unwrap();
        for p in &points {
            h.insert(p).unwrap();
        }
        h.freeze();
        let c = h.compress(target).unwrap();
        prop_assert!(c.num_buckets() <= target);
        prop_assert!((c.total_mass() - h.total_mass()).abs() < 1e-9);
    }

    /// The wavelet round-trips exactly at full budget, and conserves
    /// (or clamps upward) mass at any budget.
    #[test]
    fn wavelet_mass_and_roundtrip(
        points in arb_points(1, 32, 40),
        budget in 1usize..40,
    ) {
        let mut w = WaveletSynopsis::new(1, 32, budget).unwrap();
        for p in &points {
            w.insert(p).unwrap();
        }
        w.freeze();
        let n = points.len() as f64;
        // DC coefficient retained ⇒ mass ≥ n − ε; clamping of negative
        // ringing can only add.
        prop_assert!(w.total_mass() >= n - 1e-6, "{} < {}", w.total_mass(), n);
        // Full budget ⇒ exact per-value counts.
        if budget >= 32 {
            let grid = w.reconstructed();
            let counts = grid.group_counts(0).unwrap();
            let mut expected: std::collections::HashMap<i64, f64> = Default::default();
            for p in &points {
                *expected.entry(p[0]).or_default() += 1.0;
            }
            for (v, c) in expected {
                prop_assert!((counts[&v] - c).abs() < 1e-6, "value {v}");
            }
        }
    }

    /// The adaptive histogram never exceeds its budget, conserves
    /// mass, and its width stays a power-of-two multiple of the base.
    #[test]
    fn adaptive_budget_and_width_laws(
        points in arb_points(2, 100, 80),
        budget in 1usize..30,
        base in 1i64..4,
    ) {
        let mut a = AdaptiveSparse::new(2, base, budget).unwrap();
        for p in &points {
            a.insert(p).unwrap();
            prop_assert!(a.num_cells() <= budget);
        }
        prop_assert!((a.total_mass() - points.len() as f64).abs() < 1e-9);
        let ratio = a.current_width() / base;
        prop_assert_eq!(a.current_width() % base, 0);
        prop_assert!(ratio.count_ones() == 1, "ratio {ratio} not a power of two");
    }

    /// Coarsening a sparse histogram k then m times equals coarsening
    /// once by k·m.
    #[test]
    fn sparse_coarsen_composes(
        points in arb_points(1, 64, 40),
        k in 2i64..4,
        m in 2i64..4,
    ) {
        let mut h = SparseHist::new(1, 1).unwrap();
        for p in &points {
            h.insert(p).unwrap();
        }
        let twice = h.coarsen(k).unwrap().coarsen(m).unwrap();
        let once = h.coarsen(k * m).unwrap();
        prop_assert_eq!(twice, once);
    }
}
