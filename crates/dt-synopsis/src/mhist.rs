//! MHIST multidimensional histograms with MAXDIFF partitioning.
//!
//! This is the paper's "slow synopsis" (§5.2.2): more accurate per
//! bucket than the sparse grid histogram, but its buckets are arbitrary
//! axis-aligned boxes, so joining two MHISTs intersects bucket pairs —
//! `O(|B_s| · |B_t|)` output buckets when boundaries are unaligned.
//! The paper profiled exactly this blowup and fell back to the sparse
//! histogram; §8.1 proposes a *constrained* MHIST whose split
//! boundaries come from a small finite set. We implement both: set
//! [`MHistConfig::alignment`] to `Some(g)` to snap every split
//! boundary to a multiple of `g` (the constrained variant), or `None`
//! for the classic unconstrained MAXDIFF.
//!
//! Construction is batch-oriented, as in the paper (TelegraphCQ built
//! MHISTs from tables with a UDF): inserted points are buffered, and
//! the bucket structure is built by [`MHist::freeze`] (or implicitly,
//! without caching, by any relational operation on an unfrozen
//! histogram). MAXDIFF repeatedly splits the bucket whose marginal
//! frequency sequence has the largest adjacent difference, at that
//! boundary.

use std::borrow::Cow;

use dt_types::{DtError, DtResult};

/// Configuration for an [`MHist`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MHistConfig {
    /// Maximum number of buckets produced by MAXDIFF partitioning.
    pub max_buckets: usize,
    /// If `Some(g)`, split boundaries are snapped to multiples of `g`
    /// (the paper's §8.1 constrained variant). `None` = classic MHIST.
    pub alignment: Option<i64>,
}

impl MHistConfig {
    /// Classic unconstrained MHIST.
    pub fn unaligned(max_buckets: usize) -> Self {
        MHistConfig {
            max_buckets,
            alignment: None,
        }
    }

    /// Constrained MHIST with boundaries on multiples of `g`.
    pub fn aligned(max_buckets: usize, g: i64) -> Self {
        MHistConfig {
            max_buckets,
            alignment: Some(g),
        }
    }
}

/// One histogram bucket: an axis-aligned box of integer half-open
/// intervals `[lo, hi)` with a (possibly fractional) tuple mass.
#[derive(Debug, Clone, PartialEq)]
pub struct Bucket {
    /// Per-dimension half-open integer bounds.
    pub bounds: Vec<(i64, i64)>,
    /// Estimated number of tuples in the box.
    pub mass: f64,
}

impl Bucket {
    /// Number of integer values covered on a dimension.
    fn width(&self, dim: usize) -> i64 {
        self.bounds[dim].1 - self.bounds[dim].0
    }
}

/// An MHIST multidimensional histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct MHist {
    dims: usize,
    config: MHistConfig,
    /// Buffered raw points (weighted), kept until freeze.
    points: Vec<(Box<[i64]>, f64)>,
    /// Optional arrival tags parallel to `points` (one per point, in
    /// the same order), recorded by the `*_tagged` insert entry
    /// points. Tags are what make two partial histograms mergeable:
    /// [`MHist::merge_from`] restores the global insertion order by
    /// sorting the combined buffer on its tags, so MAXDIFF sees the
    /// exact point sequence a single-writer histogram would have seen.
    /// Either every point is tagged or none is; mixing is an error.
    tags: Vec<u64>,
    /// Built bucket structure; `None` until frozen.
    buckets: Option<Vec<Bucket>>,
}

impl MHist {
    /// A histogram over `dims` dimensions.
    pub fn new(dims: usize, config: MHistConfig) -> DtResult<Self> {
        if config.max_buckets == 0 {
            return Err(DtError::synopsis("max_buckets must be >= 1"));
        }
        if let Some(g) = config.alignment {
            if g < 1 {
                return Err(DtError::synopsis("alignment must be >= 1"));
            }
        }
        Ok(MHist {
            dims,
            config,
            points: Vec::new(),
            tags: Vec::new(),
            buckets: None,
        })
    }

    /// Number of dimensions.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// The configuration.
    pub fn config(&self) -> MHistConfig {
        self.config
    }

    /// Total mass.
    pub fn total_mass(&self) -> f64 {
        match &self.buckets {
            Some(b) => b.iter().map(|b| b.mass).sum(),
            None => self.points.iter().map(|(_, m)| m).sum(),
        }
    }

    /// True if nothing has been inserted.
    pub fn is_empty(&self) -> bool {
        self.total_mass() == 0.0
    }

    /// Number of buckets (0 if unfrozen and empty).
    pub fn num_buckets(&self) -> usize {
        match &self.buckets {
            Some(b) => b.len(),
            None => {
                if self.points.is_empty() {
                    0
                } else {
                    self.build_buckets().len()
                }
            }
        }
    }

    /// Insert one tuple. Errors after `freeze` (MHISTs are
    /// batch-built, matching the paper's usage).
    pub fn insert(&mut self, point: &[i64]) -> DtResult<()> {
        self.insert_weighted(point, 1.0)
    }

    /// The single point-buffering helper behind every insert entry
    /// point — scalar, batch, and columnar — so the paths cannot
    /// drift: frozen check, arity check, then buffer the point (a
    /// zero-mass point is a no-op, as mass never changes estimates).
    #[inline]
    fn push_point(&mut self, point: &[i64], mass: f64) -> DtResult<()> {
        if self.buckets.is_some() {
            return Err(DtError::synopsis("cannot insert into a frozen MHist"));
        }
        if point.len() != self.dims {
            return Err(DtError::synopsis(format!(
                "point arity {} != histogram dims {}",
                point.len(),
                self.dims
            )));
        }
        if mass != 0.0 {
            self.points.push((point.into(), mass));
        }
        Ok(())
    }

    /// Insert a weighted point.
    pub fn insert_weighted(&mut self, point: &[i64], mass: f64) -> DtResult<()> {
        self.push_point(point, mass)
    }

    /// Buffer a batch of unit-mass points, equivalent to one
    /// [`MHist::insert`] per point. The point buffer grows in one
    /// reservation instead of per point.
    pub fn insert_batch<'a>(
        &mut self,
        points: impl IntoIterator<Item = &'a [i64]>,
    ) -> DtResult<()> {
        let points = points.into_iter();
        self.points.reserve(points.size_hint().0);
        for point in points {
            self.push_point(point, 1.0)?;
        }
        Ok(())
    }

    /// Buffer unit-mass points given column-wise: `cols[d][i]` is
    /// dimension `d` of point `i`. Bit-identical to one
    /// [`MHist::insert`] per transposed point (points are buffered in
    /// row order, which [`MHist`] equality observes pre-freeze).
    ///
    /// # Errors
    /// Errors if the histogram is frozen, `cols.len() != dims`, or the
    /// columns have unequal lengths.
    pub fn insert_columns(&mut self, cols: &[Vec<i64>]) -> DtResult<()> {
        if cols.len() != self.dims {
            return Err(DtError::synopsis(format!(
                "point arity {} != histogram dims {}",
                cols.len(),
                self.dims
            )));
        }
        let n = cols.first().map_or(0, Vec::len);
        if cols.iter().any(|c| c.len() != n) {
            return Err(DtError::synopsis("column lengths differ in insert_columns"));
        }
        self.points.reserve(n);
        const STACK_DIMS: usize = 8;
        let mut stack = [0i64; STACK_DIMS];
        for i in 0..n {
            if self.dims <= STACK_DIMS {
                for (slot, col) in stack.iter_mut().zip(cols) {
                    *slot = col[i];
                }
                self.push_point(&stack[..self.dims], 1.0)?;
            } else {
                let point: Vec<i64> = cols.iter().map(|c| c[i]).collect();
                self.push_point(&point, 1.0)?;
            }
        }
        Ok(())
    }

    /// Insert one unit-mass point carrying an arrival tag (see the
    /// `tags` field docs). Tagged and untagged inserts must not mix
    /// within one histogram.
    pub fn insert_tagged(&mut self, point: &[i64], tag: u64) -> DtResult<()> {
        if self.tags.len() != self.points.len() {
            return Err(DtError::synopsis(
                "cannot mix tagged and untagged MHist inserts",
            ));
        }
        self.push_point(point, 1.0)?;
        self.tags.push(tag);
        Ok(())
    }

    /// Columnar [`MHist::insert_tagged`]: buffer unit-mass points
    /// given column-wise with one arrival tag per row.
    pub fn insert_columns_tagged(&mut self, cols: &[Vec<i64>], tags: &[u64]) -> DtResult<()> {
        let n = cols.first().map_or(0, Vec::len);
        if tags.len() != n {
            return Err(DtError::synopsis("tag count != row count"));
        }
        if self.tags.len() != self.points.len() {
            return Err(DtError::synopsis(
                "cannot mix tagged and untagged MHist inserts",
            ));
        }
        self.insert_columns(cols)?;
        self.tags.extend_from_slice(tags);
        Ok(())
    }

    /// Fold another unfrozen histogram's buffered points into this
    /// one, restoring global insertion order by sorting the combined
    /// buffer on the arrival tags.
    ///
    /// Both operands must be unfrozen, fully tagged (unless empty),
    /// and share dimensions and configuration. Because the tags of a
    /// sharded run are the per-stream ingest sequence numbers — unique
    /// and totally ordered — the merged buffer is exactly the point
    /// sequence a single-writer histogram would have buffered, so the
    /// subsequent [`MHist::freeze`] builds bit-identical buckets
    /// regardless of how the points were partitioned (or stolen)
    /// across writers.
    pub fn merge_from(&mut self, other: &MHist) -> DtResult<()> {
        if self.buckets.is_some() || other.buckets.is_some() {
            return Err(DtError::synopsis("cannot merge frozen MHists"));
        }
        if self.dims != other.dims || self.config != other.config {
            return Err(DtError::synopsis(
                "cannot merge MHists with different dims or config",
            ));
        }
        if self.tags.len() != self.points.len() || other.tags.len() != other.points.len() {
            return Err(DtError::synopsis("MHist merge requires tagged points"));
        }
        self.points.extend(other.points.iter().cloned());
        self.tags.extend_from_slice(&other.tags);
        let mut order: Vec<usize> = (0..self.points.len()).collect();
        order.sort_unstable_by_key(|&i| self.tags[i]);
        let points = std::mem::take(&mut self.points);
        let tags = std::mem::take(&mut self.tags);
        self.points = order.iter().map(|&i| points[i].clone()).collect();
        self.tags = order.iter().map(|&i| tags[i]).collect();
        Ok(())
    }

    /// Build the bucket structure from the buffered points. Idempotent.
    pub fn freeze(&mut self) {
        if self.buckets.is_none() {
            self.buckets = Some(self.build_buckets());
            self.points.clear();
            self.tags.clear();
        }
    }

    /// True once `freeze` has run.
    pub fn is_frozen(&self) -> bool {
        self.buckets.is_some()
    }

    /// The buckets, building them on the fly if unfrozen.
    pub fn built_buckets(&self) -> Cow<'_, [Bucket]> {
        match &self.buckets {
            Some(b) => Cow::Borrowed(b),
            None => Cow::Owned(self.build_buckets()),
        }
    }

    /// A frozen histogram from explicit buckets (used by the
    /// relational operations).
    fn from_buckets(dims: usize, config: MHistConfig, buckets: Vec<Bucket>) -> MHist {
        MHist {
            dims,
            config,
            points: Vec::new(),
            tags: Vec::new(),
            buckets: Some(buckets),
        }
    }

    // ---------------- MAXDIFF construction ----------------

    fn build_buckets(&self) -> Vec<Bucket> {
        if self.points.is_empty() {
            return Vec::new();
        }
        // Work list: (bucket, indices of points inside it).
        struct Work {
            bounds: Vec<(i64, i64)>,
            points: Vec<usize>,
            /// Best split: (maxdiff score, dim, boundary).
            best: Option<(f64, usize, i64)>,
        }

        let pts = &self.points;
        // Tight bounding box of a point set. Tight per-bucket bounds
        // are what make single-value buckets exact. For the aligned
        // variant the box is snapped *outward* to the grid so every
        // boundary stays a multiple of `g` (siblings still cannot
        // overlap: the split boundary is itself aligned).
        let alignment = self.config.alignment;
        let bounding = move |idx: &[usize]| -> Vec<(i64, i64)> {
            (0..self.dims)
                .map(|d| {
                    let lo = idx.iter().map(|&i| pts[i].0[d]).min().unwrap();
                    let hi = idx.iter().map(|&i| pts[i].0[d]).max().unwrap() + 1;
                    match alignment {
                        None => (lo, hi),
                        Some(g) => (
                            lo.div_euclid(g) * g,
                            hi.div_euclid(g) * g + if hi.rem_euclid(g) == 0 { 0 } else { g },
                        ),
                    }
                })
                .collect()
        };

        let find_best = |idx: &[usize]| -> Option<(f64, usize, i64)> {
            let mut best: Option<(f64, usize, i64)> = None;
            for d in 0..self.dims {
                // Marginal frequency per distinct value on dim d.
                let mut freq: Vec<(i64, f64)> = Vec::new();
                {
                    let mut vals: Vec<(i64, f64)> =
                        idx.iter().map(|&i| (pts[i].0[d], pts[i].1)).collect();
                    vals.sort_by_key(|&(v, _)| v);
                    for (v, m) in vals {
                        match freq.last_mut() {
                            Some((lv, lm)) if *lv == v => *lm += m,
                            _ => freq.push((v, m)),
                        }
                    }
                }
                if freq.len() < 2 {
                    continue;
                }
                for w in freq.windows(2) {
                    let (v0, f0) = w[0];
                    let (v1, f1) = w[1];
                    let score = (f1 - f0).abs();
                    // Candidate boundary: first value of the right group.
                    let mut boundary = v1;
                    if let Some(g) = self.config.alignment {
                        // Snap up to the next multiple of g that still
                        // separates the two groups (boundary must be in
                        // (v0, v1]); if none exists, skip.
                        let snapped = boundary.div_euclid(g) * g;
                        if snapped > v0 {
                            boundary = snapped;
                        } else {
                            let snapped_up = snapped + g;
                            if snapped_up <= v1 {
                                boundary = snapped_up;
                            } else {
                                continue;
                            }
                        }
                    }
                    if best.map(|(s, _, _)| score > s).unwrap_or(true) {
                        best = Some((score, d, boundary));
                    }
                }
            }
            best
        };

        let all: Vec<usize> = (0..pts.len()).collect();
        let mut work = vec![Work {
            bounds: bounding(&all),
            best: find_best(&all),
            points: all,
        }];

        while work.len() < self.config.max_buckets {
            // Pick the bucket with the largest MAXDIFF score.
            let Some((wi, &(_, dim, boundary))) = work
                .iter()
                .enumerate()
                .filter_map(|(i, w)| w.best.as_ref().map(|b| (i, b)))
                .max_by(|a, b| a.1 .0.total_cmp(&b.1 .0))
            else {
                break; // nothing splittable
            };
            let victim = work.swap_remove(wi);
            let (left_idx, right_idx): (Vec<usize>, Vec<usize>) = victim
                .points
                .iter()
                .partition(|&&i| pts[i].0[dim] < boundary);
            debug_assert!(!left_idx.is_empty() && !right_idx.is_empty());
            // Children get tight bounding boxes of their own points.
            work.push(Work {
                bounds: bounding(&left_idx),
                best: find_best(&left_idx),
                points: left_idx,
            });
            work.push(Work {
                bounds: bounding(&right_idx),
                best: find_best(&right_idx),
                points: right_idx,
            });
        }

        work.into_iter()
            .map(|w| Bucket {
                bounds: w.bounds,
                mass: w.points.iter().map(|&i| pts[i].1).sum(),
            })
            .collect()
    }

    // ---------------- relational operations ----------------

    /// π: keep the given dimensions (buckets may overlap afterwards —
    /// fine for estimation).
    pub fn project(&self, keep: &[usize]) -> DtResult<MHist> {
        for &d in keep {
            if d >= self.dims {
                return Err(DtError::synopsis("projection dim out of range"));
            }
        }
        let buckets = self
            .built_buckets()
            .iter()
            .map(|b| Bucket {
                bounds: keep.iter().map(|&d| b.bounds[d]).collect(),
                mass: b.mass,
            })
            .collect();
        Ok(MHist::from_buckets(keep.len(), self.config, buckets))
    }

    /// `UNION ALL`: concatenate bucket lists (masses add; no
    /// re-compression — part of why MHIST manipulation is costly).
    pub fn union_all(&self, other: &MHist) -> DtResult<MHist> {
        if self.dims != other.dims {
            return Err(DtError::synopsis("union of MHists with different dims"));
        }
        let mut buckets = self.built_buckets().into_owned();
        buckets.extend(other.built_buckets().iter().cloned());
        Ok(MHist::from_buckets(self.dims, self.config, buckets))
    }

    /// Equijoin on `self_dim = other_dim`.
    ///
    /// Every pair of buckets whose join intervals overlap produces an
    /// output bucket — the quadratic blowup the paper profiled. Within
    /// the overlap, the uniform-frequency assumption gives expected
    /// matches `m_s·frac_s · m_t·frac_t / |overlap|`.
    pub fn equijoin(&self, self_dim: usize, other: &MHist, other_dim: usize) -> DtResult<MHist> {
        if self_dim >= self.dims || other_dim >= other.dims {
            return Err(DtError::synopsis("join dimension out of range"));
        }
        let mut out = Vec::new();
        for bs in self.built_buckets().iter() {
            let (slo, shi) = bs.bounds[self_dim];
            for bt in other.built_buckets().iter() {
                let (tlo, thi) = bt.bounds[other_dim];
                let lo = slo.max(tlo);
                let hi = shi.min(thi);
                if lo >= hi {
                    continue;
                }
                let ov = (hi - lo) as f64;
                let frac_s = ov / bs.width(self_dim) as f64;
                let frac_t = ov / bt.width(other_dim) as f64;
                let mass = bs.mass * frac_s * bt.mass * frac_t / ov;
                if mass == 0.0 {
                    continue;
                }
                let mut bounds = Vec::with_capacity(self.dims + other.dims - 1);
                for (d, &b) in bs.bounds.iter().enumerate() {
                    bounds.push(if d == self_dim { (lo, hi) } else { b });
                }
                for (d, &b) in bt.bounds.iter().enumerate() {
                    if d != other_dim {
                        bounds.push(b);
                    }
                }
                out.push(Bucket { bounds, mass });
            }
        }
        Ok(MHist::from_buckets(
            self.dims + other.dims - 1,
            self.config,
            out,
        ))
    }

    /// Is an identical point already buffered (unfrozen) or inside a
    /// bucket (frozen)? Used by the synergistic drop policy.
    pub fn covers(&self, point: &[i64]) -> bool {
        if point.len() != self.dims {
            return false;
        }
        match &self.buckets {
            None => self.points.iter().any(|(p, _)| p.as_ref() == point),
            Some(buckets) => buckets.iter().any(|b| {
                b.bounds
                    .iter()
                    .zip(point)
                    .all(|(&(lo, hi), &v)| v >= lo && v < hi)
            }),
        }
    }

    /// Cross product ×: bucket pairs combine, masses multiply.
    pub fn cross(&self, other: &MHist) -> DtResult<MHist> {
        let mut out = Vec::new();
        for bs in self.built_buckets().iter() {
            for bt in other.built_buckets().iter() {
                let mut bounds = bs.bounds.clone();
                bounds.extend_from_slice(&bt.bounds);
                out.push(Bucket {
                    bounds,
                    mass: bs.mass * bt.mass,
                });
            }
        }
        Ok(MHist::from_buckets(
            self.dims + other.dims,
            self.config,
            out,
        ))
    }

    /// Re-compress to at most `max_buckets` buckets by repeatedly
    /// merging the pair of buckets whose union box has the smallest
    /// volume (a greedy bounding-box merge).
    ///
    /// `union_all` and `equijoin` deliberately do *not* compress —
    /// the uncontrolled bucket growth is the §5.2.2 cost problem the
    /// paper measured — but callers that keep MHISTs alive across
    /// windows can bound memory with this.
    pub fn compress(&self, max_buckets: usize) -> DtResult<MHist> {
        if max_buckets == 0 {
            return Err(DtError::synopsis("max_buckets must be >= 1"));
        }
        let mut buckets = self.built_buckets().into_owned();
        let volume = |bounds: &[(i64, i64)]| -> i128 {
            bounds.iter().map(|&(lo, hi)| (hi - lo) as i128).product()
        };
        let merged_bounds = |a: &Bucket, b: &Bucket| -> Vec<(i64, i64)> {
            a.bounds
                .iter()
                .zip(&b.bounds)
                .map(|(&(alo, ahi), &(blo, bhi))| (alo.min(blo), ahi.max(bhi)))
                .collect()
        };
        while buckets.len() > max_buckets {
            // Greedy: merge the pair with the smallest union volume.
            let mut best: Option<(usize, usize, i128)> = None;
            for i in 0..buckets.len() {
                for j in i + 1..buckets.len() {
                    let v = volume(&merged_bounds(&buckets[i], &buckets[j]));
                    if best.map(|(_, _, bv)| v < bv).unwrap_or(true) {
                        best = Some((i, j, v));
                    }
                }
            }
            let (i, j, _) = best.expect("at least two buckets");
            let b = buckets.swap_remove(j);
            let a = &mut buckets[i];
            a.bounds = merged_bounds(a, &b);
            a.mass += b.mass;
        }
        Ok(MHist::from_buckets(self.dims, self.config, buckets))
    }

    /// σ on an inclusive integer range of one dimension.
    pub fn select_range(&self, dim: usize, lo: i64, hi: i64) -> DtResult<MHist> {
        if dim >= self.dims {
            return Err(DtError::synopsis("selection dim out of range"));
        }
        let hi_excl = hi + 1;
        let mut out = Vec::new();
        for b in self.built_buckets().iter() {
            let (blo, bhi) = b.bounds[dim];
            let nlo = blo.max(lo);
            let nhi = bhi.min(hi_excl);
            if nlo >= nhi {
                continue;
            }
            let frac = (nhi - nlo) as f64 / b.width(dim) as f64;
            let mut bounds = b.bounds.clone();
            bounds[dim] = (nlo, nhi);
            out.push(Bucket {
                bounds,
                mass: b.mass * frac,
            });
        }
        Ok(MHist::from_buckets(self.dims, self.config, out))
    }

    /// Estimated per-integer-value counts along one dimension.
    pub fn group_counts(&self, dim: usize) -> DtResult<dt_types::FxHashMap<i64, f64>> {
        if dim >= self.dims {
            return Err(DtError::synopsis("group dim out of range"));
        }
        let mut out = dt_types::FxHashMap::default();
        for b in self.built_buckets().iter() {
            let (lo, hi) = b.bounds[dim];
            let per_value = b.mass / (hi - lo) as f64;
            for v in lo..hi {
                *out.entry(v).or_insert(0.0) += per_value;
            }
        }
        Ok(out)
    }

    /// Estimated per-group `SUM(sum_dim)` using bucket midpoints.
    pub fn group_sums(
        &self,
        group_dim: usize,
        sum_dim: usize,
    ) -> DtResult<dt_types::FxHashMap<i64, f64>> {
        if group_dim >= self.dims || sum_dim >= self.dims {
            return Err(DtError::synopsis("group/sum dim out of range"));
        }
        let mut out = dt_types::FxHashMap::default();
        for b in self.built_buckets().iter() {
            let (slo, shi) = b.bounds[sum_dim];
            let mid = (slo + shi - 1) as f64 / 2.0;
            let (lo, hi) = b.bounds[group_dim];
            let per_value = b.mass / (hi - lo) as f64;
            for v in lo..hi {
                *out.entry(v).or_insert(0.0) += per_value * mid;
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hist1(max_buckets: usize, points: &[i64]) -> MHist {
        let mut h = MHist::new(1, MHistConfig::unaligned(max_buckets)).unwrap();
        for &p in points {
            h.insert(&[p]).unwrap();
        }
        h
    }

    #[test]
    fn rejects_bad_config() {
        assert!(MHist::new(1, MHistConfig::unaligned(0)).is_err());
        assert!(MHist::new(1, MHistConfig::aligned(4, 0)).is_err());
    }

    #[test]
    fn insert_then_freeze() {
        let mut h = hist1(4, &[1, 1, 2, 50, 51, 99]);
        assert_eq!(h.total_mass(), 6.0);
        assert!(!h.is_frozen());
        h.freeze();
        assert!(h.is_frozen());
        assert_eq!(h.total_mass(), 6.0);
        assert!(h.num_buckets() <= 4);
        assert!(h.num_buckets() >= 2);
        assert!(h.insert(&[1]).is_err());
    }

    #[test]
    fn maxdiff_splits_at_frequency_cliff() {
        // 10 copies of value 1, 1 copy of value 50: the largest
        // adjacent frequency difference is between 1 and 50.
        let mut pts = vec![1i64; 10];
        pts.push(50);
        let mut h = hist1(2, &pts);
        h.freeze();
        let b = h.built_buckets().into_owned();
        assert_eq!(b.len(), 2);
        let mut masses: Vec<f64> = b.iter().map(|b| b.mass).collect();
        masses.sort_by(f64::total_cmp);
        assert_eq!(masses, vec![1.0, 10.0]);
    }

    #[test]
    fn buckets_partition_mass() {
        let pts: Vec<i64> = (0..100).map(|i| (i * 37) % 100).collect();
        let mut h = hist1(8, &pts);
        h.freeze();
        let total: f64 = h.built_buckets().iter().map(|b| b.mass).sum();
        assert_eq!(total, 100.0);
        assert_eq!(h.num_buckets(), 8);
    }

    #[test]
    fn aligned_variant_snaps_boundaries() {
        let pts: Vec<i64> = (0..100).collect();
        let mut h = MHist::new(1, MHistConfig::aligned(8, 10)).unwrap();
        for &p in &pts {
            h.insert(&[p]).unwrap();
        }
        h.freeze();
        for b in h.built_buckets().iter() {
            let (lo, hi) = b.bounds[0];
            // Interior boundaries are multiples of 10 (outer bounds come
            // from the data bounding box).
            if lo != 0 {
                assert_eq!(lo % 10, 0, "bucket lo {lo} not aligned");
            }
            if hi != 100 {
                assert_eq!(hi % 10, 0, "bucket hi {hi} not aligned");
            }
        }
    }

    #[test]
    fn equijoin_exactish_on_point_buckets() {
        // Few distinct values + enough buckets => each bucket is a
        // single value and the join is exact.
        let a = hist1(8, &[1, 1, 2]);
        let b = hist1(8, &[1, 3]);
        let j = a.equijoin(0, &b, 0).unwrap();
        assert!((j.total_mass() - 2.0).abs() < 1e-9, "{}", j.total_mass());
    }

    #[test]
    fn equijoin_bucket_count_can_be_quadratic() {
        // The §5.2.2 blowup: in a multidimensional MHIST, MAXDIFF may
        // spend every split on a skewed *non-join* dimension, leaving
        // all buckets spanning the full join-dimension range. Joining
        // two such histograms intersects every bucket pair:
        // |B_s| × |B_t| output buckets.
        let mk = || {
            let mut h = MHist::new(2, MHistConfig::unaligned(13)).unwrap();
            // dim 0 (join dim): exactly uniform — marginal frequency
            // differences are all zero, so MAXDIFF never splits on it.
            // dim 1: strictly increasing frequencies — every split
            // lands here until buckets are single-valued on dim 1.
            for x in 0..40i64 {
                for y in 0..13i64 {
                    for _ in 0..=y {
                        h.insert(&[x, y]).unwrap();
                    }
                }
            }
            h.freeze();
            h
        };
        let a = mk();
        let b = mk();
        let j = a.equijoin(0, &b, 0).unwrap();
        // Far more output buckets than either input — approaching the
        // pairwise product.
        assert!(
            j.num_buckets() > 4 * (a.num_buckets() + b.num_buckets()),
            "join produced {} buckets from {} x {}",
            j.num_buckets(),
            a.num_buckets(),
            b.num_buckets()
        );
    }

    #[test]
    fn union_concatenates() {
        let a = hist1(4, &[1, 2]);
        let b = hist1(4, &[3]);
        let u = a.union_all(&b).unwrap();
        assert_eq!(u.total_mass(), 3.0);
        let c = MHist::new(2, MHistConfig::unaligned(4)).unwrap();
        assert!(a.union_all(&c).is_err());
    }

    #[test]
    fn project_drops_dims() {
        let mut h = MHist::new(2, MHistConfig::unaligned(4)).unwrap();
        h.insert(&[1, 10]).unwrap();
        h.insert(&[2, 20]).unwrap();
        let p = h.project(&[1]).unwrap();
        assert_eq!(p.dims(), 1);
        assert_eq!(p.total_mass(), 2.0);
        assert!(h.project(&[2]).is_err());
    }

    #[test]
    fn select_range_scales() {
        let mut h = hist1(1, &(0..10).collect::<Vec<_>>()); // one bucket [0,10)
        h.freeze();
        let s = h.select_range(0, 0, 4).unwrap();
        assert!((s.total_mass() - 5.0).abs() < 1e-9);
        assert!(h.select_range(0, 50, 60).unwrap().is_empty());
        assert!(h.select_range(1, 0, 1).is_err());
    }

    #[test]
    fn group_counts_spread() {
        let mut h = hist1(1, &[0, 1, 2, 3]);
        h.freeze();
        let g = h.group_counts(0).unwrap();
        assert_eq!(g.len(), 4);
        for v in 0..4 {
            assert!((g[&v] - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn group_sums_use_midpoint() {
        let mut h = MHist::new(2, MHistConfig::unaligned(8)).unwrap();
        h.insert(&[7, 40]).unwrap();
        h.insert(&[7, 40]).unwrap();
        h.freeze();
        let s = h.group_sums(0, 1).unwrap();
        assert!((s[&7] - 80.0).abs() < 1e-9);
    }

    #[test]
    fn empty_histogram_behaves() {
        let mut h = hist1(4, &[]);
        assert!(h.is_empty());
        h.freeze();
        assert_eq!(h.num_buckets(), 0);
        assert!(h.group_counts(0).unwrap().is_empty());
    }

    #[test]
    fn compress_bounds_buckets_and_conserves_mass() {
        let pts: Vec<i64> = (0..200).map(|i| (i * 13) % 97).collect();
        let mut h = hist1(32, &pts);
        h.freeze();
        assert_eq!(h.num_buckets(), 32);
        let c = h.compress(8).unwrap();
        assert!(c.num_buckets() <= 8);
        assert!((c.total_mass() - h.total_mass()).abs() < 1e-9);
        // Group counts remain a valid (coarser) distribution.
        let g = c.group_counts(0).unwrap();
        let sum: f64 = g.values().sum();
        assert!((sum - h.total_mass()).abs() < 1e-9);
        // Compressing below 1 is rejected; compressing to >= current
        // size is the identity on bucket count.
        assert!(h.compress(0).is_err());
        assert_eq!(h.compress(100).unwrap().num_buckets(), 32);
    }

    #[test]
    fn union_then_compress_controls_growth() {
        let a = hist1(16, &(0..50).collect::<Vec<_>>());
        let b = hist1(16, &(25..75).collect::<Vec<_>>());
        let u = a.union_all(&b).unwrap();
        assert!(u.num_buckets() > 16);
        let c = u.compress(16).unwrap();
        assert!(c.num_buckets() <= 16);
        assert!((c.total_mass() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn operations_work_without_freeze() {
        let a = hist1(4, &[1, 2, 3]);
        let b = hist1(4, &[2, 3, 4]);
        // No freeze calls: built on the fly.
        let j = a.equijoin(0, &b, 0).unwrap();
        assert!(j.total_mass() > 0.0);
    }
}
