//! Haar-wavelet synopses.
//!
//! The paper's related work leans on wavelet-domain query processing
//! (Chakrabarti et al., cited in §2) and its §8.1 asks for "additional
//! types of synopsis data structures"; this module supplies one: a
//! thresholded orthonormal **Haar** transform of the window's
//! frequency grid.
//!
//! Design: the wavelet is a *compression format*. Points are buffered
//! until [`WaveletSynopsis::freeze`], which
//!
//! 1. builds the dense frequency array over a power-of-two domain,
//! 2. applies the separable orthonormal Haar transform,
//! 3. keeps the `budget` largest-magnitude coefficients (the DC
//!    coefficient is always retained, so total mass is conserved
//!    before clamping), and
//! 4. reconstructs the thresholded grid into a width-1
//!    [`SparseHist`], clamping reconstruction ringing below zero.
//!
//! Relational operations then run on the reconstructed histogram
//! (exactly the operations the shadow plan needs), so a wavelet
//! synopsis composes with the rest of the system while its *accuracy*
//! is governed purely by the coefficient budget. (Chakrabarti et al.
//! operate directly in the coefficient domain for speed; we trade that
//! optimization for a much smaller implementation — see DESIGN.md.)
//!
//! Wavelet synopses summarize 1- or 2-dimensional streams (the arities
//! in the paper's experiments); the dense transform grid would grow as
//! `domain^dims` beyond that.

use dt_types::{DtError, DtResult};

use crate::sparse::SparseHist;

/// A thresholded-Haar synopsis.
#[derive(Debug, Clone, PartialEq)]
pub struct WaveletSynopsis {
    dims: usize,
    /// Power-of-two domain size per dimension; values are clamped into
    /// `[0, domain)`.
    domain: usize,
    /// Number of coefficients retained at freeze.
    budget: usize,
    /// Buffered points (pre-freeze).
    points: Vec<Box<[i64]>>,
    /// Reconstructed grid (post-freeze).
    grid: Option<SparseHist>,
    /// Coefficients actually retained (≤ budget).
    retained: usize,
}

/// In-place 1D orthonormal Haar transform (length must be a power of
/// two).
fn haar_forward(data: &mut [f64]) {
    let n = data.len();
    debug_assert!(n.is_power_of_two());
    let mut len = n;
    let mut tmp = vec![0.0; n];
    let s = std::f64::consts::FRAC_1_SQRT_2;
    while len > 1 {
        let half = len / 2;
        for i in 0..half {
            tmp[i] = (data[2 * i] + data[2 * i + 1]) * s;
            tmp[half + i] = (data[2 * i] - data[2 * i + 1]) * s;
        }
        data[..len].copy_from_slice(&tmp[..len]);
        len = half;
    }
}

/// Inverse of [`haar_forward`].
fn haar_inverse(data: &mut [f64]) {
    let n = data.len();
    debug_assert!(n.is_power_of_two());
    let mut len = 2;
    let mut tmp = vec![0.0; n];
    let s = std::f64::consts::FRAC_1_SQRT_2;
    while len <= n {
        let half = len / 2;
        for i in 0..half {
            tmp[2 * i] = (data[i] + data[half + i]) * s;
            tmp[2 * i + 1] = (data[i] - data[half + i]) * s;
        }
        data[..len].copy_from_slice(&tmp[..len]);
        len *= 2;
    }
}

impl WaveletSynopsis {
    /// A wavelet synopsis over `dims` dimensions (1 or 2) with the
    /// given power-of-two domain size and coefficient budget.
    pub fn new(dims: usize, domain: usize, budget: usize) -> DtResult<Self> {
        if !(1..=2).contains(&dims) {
            return Err(DtError::synopsis(format!(
                "wavelet synopses support 1 or 2 dimensions, got {dims}"
            )));
        }
        if !domain.is_power_of_two() || domain < 2 {
            return Err(DtError::synopsis(format!(
                "wavelet domain must be a power of two >= 2, got {domain}"
            )));
        }
        if budget == 0 {
            return Err(DtError::synopsis("wavelet budget must be >= 1"));
        }
        Ok(WaveletSynopsis {
            dims,
            domain,
            budget,
            points: Vec::new(),
            grid: None,
            retained: 0,
        })
    }

    /// Number of dimensions.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Retained coefficients after freeze (0 before).
    pub fn retained_coefficients(&self) -> usize {
        self.retained
    }

    /// Total mass.
    pub fn total_mass(&self) -> f64 {
        match &self.grid {
            Some(g) => g.total_mass(),
            None => self.points.len() as f64,
        }
    }

    /// True if nothing has been inserted.
    pub fn is_empty(&self) -> bool {
        self.total_mass() == 0.0
    }

    /// True once frozen.
    pub fn is_frozen(&self) -> bool {
        self.grid.is_some()
    }

    /// Buffer one tuple. Errors after freeze.
    pub fn insert(&mut self, point: &[i64]) -> DtResult<()> {
        if self.grid.is_some() {
            return Err(DtError::synopsis("cannot insert into a frozen wavelet"));
        }
        if point.len() != self.dims {
            return Err(DtError::synopsis(format!(
                "point arity {} != wavelet dims {}",
                point.len(),
                self.dims
            )));
        }
        let clamped: Box<[i64]> = point
            .iter()
            .map(|&v| v.clamp(0, self.domain as i64 - 1))
            .collect();
        self.points.push(clamped);
        Ok(())
    }

    /// Is an identical point already buffered / inside the
    /// reconstructed support?
    pub fn covers(&self, point: &[i64]) -> bool {
        if point.len() != self.dims {
            return false;
        }
        match &self.grid {
            None => self.points.iter().any(|p| p.as_ref() == point),
            Some(g) => g.covers(point),
        }
    }

    /// Transform, threshold, reconstruct. Idempotent.
    pub fn freeze(&mut self) {
        if self.grid.is_some() {
            return;
        }
        let n = self.domain;
        let cells = if self.dims == 1 { n } else { n * n };
        let mut data = vec![0.0f64; cells];
        for p in &self.points {
            let idx = if self.dims == 1 {
                p[0] as usize
            } else {
                p[0] as usize * n + p[1] as usize
            };
            data[idx] += 1.0;
        }
        // Separable forward transform.
        if self.dims == 1 {
            haar_forward(&mut data);
        } else {
            // Rows…
            for r in 0..n {
                haar_forward(&mut data[r * n..(r + 1) * n]);
            }
            // …then columns.
            let mut col = vec![0.0; n];
            for c in 0..n {
                for r in 0..n {
                    col[r] = data[r * n + c];
                }
                haar_forward(&mut col);
                for r in 0..n {
                    data[r * n + c] = col[r];
                }
            }
        }
        // Threshold: keep the `budget` largest |coefficients|, always
        // including the DC coefficient (index 0) so mass is conserved.
        let mut order: Vec<usize> = (0..cells).collect();
        order.sort_by(|&a, &b| data[b].abs().total_cmp(&data[a].abs()));
        let mut keep = vec![false; cells];
        keep[0] = true;
        let mut kept = 1;
        for &i in &order {
            if kept >= self.budget {
                break;
            }
            if !keep[i] && data[i] != 0.0 {
                keep[i] = true;
                kept += 1;
            }
        }
        self.retained = keep
            .iter()
            .zip(&data)
            .filter(|(k, v)| **k && **v != 0.0)
            .count();
        for (i, k) in keep.iter().enumerate() {
            if !k {
                data[i] = 0.0;
            }
        }
        // Inverse transform.
        if self.dims == 1 {
            haar_inverse(&mut data);
        } else {
            let mut col = vec![0.0; n];
            for c in 0..n {
                for r in 0..n {
                    col[r] = data[r * n + c];
                }
                haar_inverse(&mut col);
                for r in 0..n {
                    data[r * n + c] = col[r];
                }
            }
            for r in 0..n {
                haar_inverse(&mut data[r * n..(r + 1) * n]);
            }
        }
        // Reconstruct into a width-1 sparse histogram, clamping
        // ringing below zero (and dust) to nothing.
        let mut grid = SparseHist::new(self.dims, 1).expect("width 1 is valid");
        for (i, &v) in data.iter().enumerate() {
            if v > 1e-9 {
                let point: Vec<i64> = if self.dims == 1 {
                    vec![i as i64]
                } else {
                    vec![(i / n) as i64, (i % n) as i64]
                };
                grid.insert_weighted(&point, v).expect("arity matches");
            }
        }
        self.points.clear();
        self.grid = Some(grid);
    }

    /// The reconstructed grid (freezing a clone on the fly if needed).
    pub fn reconstructed(&self) -> SparseHist {
        match &self.grid {
            Some(g) => g.clone(),
            None => {
                let mut w = self.clone();
                w.freeze();
                w.grid.expect("frozen")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn haar_roundtrips() {
        let orig = vec![3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0];
        let mut data = orig.clone();
        haar_forward(&mut data);
        haar_inverse(&mut data);
        for (a, b) in orig.iter().zip(&data) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn haar_is_orthonormal() {
        // Energy (sum of squares) is preserved by the forward
        // transform.
        let mut data = vec![1.0, 2.0, 3.0, 4.0];
        let energy: f64 = data.iter().map(|v| v * v).sum();
        haar_forward(&mut data);
        let energy2: f64 = data.iter().map(|v| v * v).sum();
        assert!((energy - energy2).abs() < 1e-12);
    }

    #[test]
    fn rejects_bad_config() {
        assert!(WaveletSynopsis::new(3, 128, 10).is_err());
        assert!(WaveletSynopsis::new(0, 128, 10).is_err());
        assert!(WaveletSynopsis::new(1, 100, 10).is_err());
        assert!(WaveletSynopsis::new(1, 1, 10).is_err());
        assert!(WaveletSynopsis::new(1, 128, 0).is_err());
    }

    #[test]
    fn full_budget_is_lossless() {
        let mut w = WaveletSynopsis::new(1, 16, 16).unwrap();
        for v in [1i64, 1, 2, 5, 5, 5, 9] {
            w.insert(&[v]).unwrap();
        }
        w.freeze();
        let g = w.reconstructed();
        let counts = g.group_counts(0).unwrap();
        assert!((counts[&1] - 2.0).abs() < 1e-9);
        assert!((counts[&5] - 3.0).abs() < 1e-9);
        assert!((counts[&9] - 1.0).abs() < 1e-9);
        assert!((w.total_mass() - 7.0).abs() < 1e-9);
    }

    #[test]
    fn thresholding_conserves_mass_modulo_clamping() {
        let mut w = WaveletSynopsis::new(1, 64, 4).unwrap();
        for v in 0..64i64 {
            for _ in 0..=(v % 5) {
                w.insert(&[v]).unwrap();
            }
        }
        let before = w.total_mass();
        w.freeze();
        assert!(w.retained_coefficients() <= 4);
        // DC retained ⇒ mass conserved up to the clamp of negative
        // ringing (which can only *increase* mass slightly).
        assert!(
            w.total_mass() >= before - 1e-6,
            "{} vs {before}",
            w.total_mass()
        );
        assert!(w.total_mass() <= before * 1.5);
    }

    #[test]
    fn two_dimensional_roundtrip() {
        let mut w = WaveletSynopsis::new(2, 8, 64).unwrap();
        w.insert(&[1, 2]).unwrap();
        w.insert(&[1, 2]).unwrap();
        w.insert(&[5, 7]).unwrap();
        w.freeze();
        let g = w.reconstructed();
        assert!((g.total_mass() - 3.0).abs() < 1e-9);
        let counts = g.group_counts(0).unwrap();
        assert!((counts[&1] - 2.0).abs() < 1e-9);
        assert!((counts[&5] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn small_budget_smooths() {
        // A spike plus uniform noise: with only 2 coefficients the
        // reconstruction spreads mass but keeps the total.
        let mut w = WaveletSynopsis::new(1, 32, 2).unwrap();
        for _ in 0..100 {
            w.insert(&[7]).unwrap();
        }
        for v in 0..32i64 {
            w.insert(&[v]).unwrap();
        }
        w.freeze();
        assert!(w.retained_coefficients() <= 2);
        let g = w.reconstructed();
        assert!(g.total_mass() >= 132.0 - 1e-6);
        // The spike is no longer exactly 101 at value 7.
        let counts = g.group_counts(0).unwrap();
        let at7 = counts.get(&7).copied().unwrap_or(0.0);
        assert!(at7 < 101.0);
    }

    #[test]
    fn values_clamp_into_domain() {
        let mut w = WaveletSynopsis::new(1, 8, 8).unwrap();
        w.insert(&[-5]).unwrap();
        w.insert(&[100]).unwrap();
        w.freeze();
        let counts = w.reconstructed().group_counts(0).unwrap();
        assert!((counts[&0] - 1.0).abs() < 1e-9);
        assert!((counts[&7] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn frozen_rejects_insert_and_arity_checked() {
        let mut w = WaveletSynopsis::new(2, 8, 8).unwrap();
        assert!(w.insert(&[1]).is_err());
        w.insert(&[1, 2]).unwrap();
        w.freeze();
        assert!(w.insert(&[1, 2]).is_err());
        // Idempotent freeze.
        w.freeze();
        assert!(w.is_frozen());
    }

    #[test]
    fn covers_before_and_after_freeze() {
        let mut w = WaveletSynopsis::new(1, 8, 8).unwrap();
        w.insert(&[3]).unwrap();
        assert!(w.covers(&[3]));
        assert!(!w.covers(&[4]));
        w.freeze();
        assert!(w.covers(&[3]));
    }
}
