//! Synopsis data structures for Data Triage.
//!
//! The paper (§5.2.2) demands two things of a synopsis used in the
//! triage path:
//!
//! 1. inserting a tuple must be much cheaper than fully processing it,
//!    and
//! 2. the structure must support fast relational operations — above
//!    all equijoin — producing compact synopses of the results.
//!
//! Implemented structures:
//!
//! * [`SparseHist`] — the paper's workhorse: a sparse multidimensional
//!   histogram with **cubic, grid-aligned buckets**. Aligned buckets
//!   make the equijoin linear in the number of occupied cells.
//! * [`MHist`] — an MHIST multidimensional histogram using the
//!   **MAXDIFF** bucket-split heuristic (Poosala & Ioannidis), the
//!   structure the paper found more accurate per byte but too slow:
//!   joining histograms with unaligned bucket boundaries produces a
//!   quadratic number of intersection buckets. An *aligned* variant
//!   (split boundaries snapped to a grid — the constrained MHIST the
//!   paper's §8.1 proposes as future work) is available via
//!   [`MHistConfig::alignment`].
//! * [`ReservoirSample`] — a uniform reservoir sample with a scale
//!   factor, included as the §8.1 "additional synopsis type" and as an
//!   ablation baseline.
//! * [`WaveletSynopsis`] — a thresholded orthonormal Haar transform of
//!   the window's frequency grid (the wavelet line of the paper's
//!   related work), used as a compression format whose relational
//!   operations run on the reconstructed grid.
//!
//! All structures are wrapped by the [`Synopsis`] enum, which exposes
//! the closed set of operations the shadow query plan needs: `insert`,
//! `project`, `union_all`, `equijoin`, `select_range`, and grouped
//! count/sum estimation. Binary operations require both operands to be
//! the same structure (as in the paper, where each run picks one
//! synopsis datatype).
//!
//! Sharded execution (DESIGN.md §15) adds a second axis: *tagged*
//! inserts ([`Synopsis::insert_tagged`]) carry per-stream arrival
//! sequence numbers, and [`Synopsis::merge_from`] folds per-shard
//! partial synopses into one that is bit-identical to a single-writer
//! synopsis — exactly for sparse grids, MHISTs, and mergeable
//! reservoirs; wavelet and adaptive-sparse synopses are rejected
//! ([`SynopsisConfig::supports_merge`]).

#![deny(missing_docs)]

pub mod adaptive;
pub mod mhist;
pub mod reservoir;
pub mod sparse;
pub mod synopsis;
pub mod wavelet;

pub use adaptive::AdaptiveSparse;
pub use mhist::{MHist, MHistConfig};
pub use reservoir::ReservoirSample;
pub use sparse::SparseHist;
pub use synopsis::{GroupEstimate, Synopsis, SynopsisConfig};
pub use wavelet::WaveletSynopsis;
