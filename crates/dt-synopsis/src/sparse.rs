//! The sparse multidimensional histogram with cubic buckets — the
//! paper's "fast synopsis".
//!
//! Values are integers (the paper's experiments draw all attributes
//! from `1..=100`). The value space of each dimension is partitioned
//! into fixed-width, globally aligned cells of `cell_width` integers;
//! a `k`-dimensional histogram stores mass only for occupied cells of
//! the `k`-dimensional grid, so memory is proportional to the number
//! of *distinct occupied cells*, not to the domain size.
//!
//! Alignment is the whole trick: two sparse histograms over the same
//! grid can be equijoined by matching cell coordinates directly —
//! linear in the number of occupied cells — instead of intersecting
//! arbitrary rectangles, which is what makes unconstrained MHIST joins
//! quadratic (see paper §5.2.2 and `crate::mhist`).

use std::collections::BTreeMap;

use dt_types::FxHashMap;

use dt_types::{DtError, DtResult};

/// A sparse grid histogram with cubic (equal-width, axis-aligned)
/// buckets.
///
/// ```
/// use dt_synopsis::SparseHist;
///
/// // Two one-dimensional histograms over a width-10 grid.
/// let mut r = SparseHist::new(1, 10)?;
/// let mut s = SparseHist::new(1, 10)?;
/// for v in [3, 7, 41] { r.insert(&[v])?; }
/// for v in [5, 44, 48] { s.insert(&[v])?; }
///
/// // Join estimate: cells 0 and 4 match; each contributes
/// // m_r · m_s / 10 under the uniformity assumption.
/// let j = r.equijoin(0, &s, 0)?;
/// assert!((j.total_mass() - (2.0 * 1.0 + 1.0 * 2.0) / 10.0).abs() < 1e-12);
/// # Ok::<(), dt_types::DtError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SparseHist {
    dims: usize,
    cell_width: i64,
    // BTreeMap, not HashMap: deterministic iteration order makes every
    // downstream floating-point accumulation bit-reproducible run to
    // run (a stated property of this reproduction).
    cells: BTreeMap<Box<[i64]>, f64>,
    total: f64,
}

impl SparseHist {
    /// A histogram over `dims` dimensions with the given cell width
    /// (in integer value units, ≥ 1).
    pub fn new(dims: usize, cell_width: i64) -> DtResult<Self> {
        if cell_width < 1 {
            return Err(DtError::synopsis("cell width must be >= 1"));
        }
        Ok(SparseHist {
            dims,
            cell_width,
            cells: BTreeMap::new(),
            total: 0.0,
        })
    }

    /// Number of dimensions.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Cell width.
    pub fn cell_width(&self) -> i64 {
        self.cell_width
    }

    /// Total mass (estimated `COUNT(*)`).
    pub fn total_mass(&self) -> f64 {
        self.total
    }

    /// Number of occupied cells — the memory footprint driver.
    pub fn num_cells(&self) -> usize {
        self.cells.len()
    }

    /// True if no mass has been inserted.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Cell index of a value.
    fn cell_of(&self, v: i64) -> i64 {
        v.div_euclid(self.cell_width)
    }

    /// Insert one tuple.
    ///
    /// # Errors
    /// Errors if the point's arity differs from `dims`.
    pub fn insert(&mut self, point: &[i64]) -> DtResult<()> {
        self.insert_weighted(point, 1.0)
    }

    /// Insert `mass` tuples' worth of weight at a point.
    ///
    /// The common case — the point's cell is already occupied — does
    /// not allocate: cell coordinates are computed into a stack buffer
    /// and probed by slice before a boxed key is built for a fresh
    /// cell.
    pub fn insert_weighted(&mut self, point: &[i64], mass: f64) -> DtResult<()> {
        if point.len() != self.dims {
            return Err(DtError::synopsis(format!(
                "point arity {} != histogram dims {}",
                point.len(),
                self.dims
            )));
        }
        if mass == 0.0 {
            return Ok(());
        }
        const STACK_DIMS: usize = 8;
        let mut stack = [0i64; STACK_DIMS];
        if self.dims <= STACK_DIMS {
            for (slot, &v) in stack.iter_mut().zip(point) {
                *slot = self.cell_of(v);
            }
            let coords = &stack[..self.dims];
            match self.cells.get_mut(coords) {
                Some(cell) => *cell += mass,
                None => {
                    self.cells.insert(coords.into(), mass);
                }
            }
        } else {
            let coords: Box<[i64]> = point.iter().map(|&v| self.cell_of(v)).collect();
            *self.cells.entry(coords).or_insert(0.0) += mass;
        }
        self.total += mass;
        Ok(())
    }

    /// Insert a batch of points, equivalent to one [`SparseHist::insert`]
    /// per point (bit-identical resulting state).
    pub fn insert_batch<'a>(
        &mut self,
        points: impl IntoIterator<Item = &'a [i64]>,
    ) -> DtResult<()> {
        for p in points {
            self.insert_weighted(p, 1.0)?;
        }
        Ok(())
    }

    /// Fold another histogram's mass into this one, cell by cell.
    ///
    /// For unit-mass ingest the result is bit-identical to a single
    /// histogram that saw every point, in any order: per-cell masses
    /// and the total are integer-valued, `f64` adds integers below
    /// 2^53 exactly, and integer addition commutes. This is what lets
    /// sharded triage keep one partial histogram per shard and merge
    /// at seal without an ordering tag (contrast [`crate::MHist`],
    /// whose MAXDIFF build observes insertion order).
    ///
    /// # Errors
    /// Errors if dimensions or cell widths differ.
    pub fn merge_from(&mut self, other: &SparseHist) -> DtResult<()> {
        if self.dims != other.dims || self.cell_width != other.cell_width {
            return Err(DtError::synopsis(
                "cannot merge sparse histograms with different dims or cell width",
            ));
        }
        for (coords, &mass) in &other.cells {
            match self.cells.get_mut(coords.as_ref()) {
                Some(cell) => *cell += mass,
                None => {
                    self.cells.insert(coords.clone(), mass);
                }
            }
        }
        self.total += other.total;
        Ok(())
    }

    /// Vectorized unit-mass insert over column-wise points:
    /// `cols[d][i]` is dimension `d` of point `i`. Cell coordinates
    /// are computed column-at-a-time as pure arithmetic (a chunked,
    /// autovectorizable `div_euclid` pass), counts are grouped per
    /// cell in a hash pass, and each distinct cell touches the
    /// `BTreeMap` once.
    ///
    /// Bit-identical to one [`SparseHist::insert`] per transposed
    /// point: per-cell counts and the running total accumulate
    /// integers, which `f64` represents exactly below 2^53, so adding
    /// `k` once equals adding `1.0` `k` times. (This is why the kernel
    /// is unit-mass only — fractional masses would not commute.)
    ///
    /// # Errors
    /// Errors if `cols.len() != dims` or the columns have unequal
    /// lengths.
    pub fn insert_columns(&mut self, cols: &[Vec<i64>]) -> DtResult<()> {
        if cols.len() != self.dims {
            return Err(DtError::synopsis(format!(
                "point arity {} != histogram dims {}",
                cols.len(),
                self.dims
            )));
        }
        let n = cols.first().map_or(0, Vec::len);
        if cols.iter().any(|c| c.len() != n) {
            return Err(DtError::synopsis("column lengths differ in insert_columns"));
        }
        if n == 0 {
            return Ok(());
        }
        // Bucket-index pass: one tight loop per dimension.
        let coords: Vec<Vec<i64>> = cols
            .iter()
            .map(|col| col.iter().map(|&v| self.cell_of(v)).collect())
            .collect();
        match coords.as_slice() {
            [c0] => {
                let mut counts: FxHashMap<i64, f64> = FxHashMap::default();
                for &c in c0 {
                    *counts.entry(c).or_insert(0.0) += 1.0;
                }
                for (c, mass) in counts {
                    match self.cells.get_mut(&[c][..]) {
                        Some(cell) => *cell += mass,
                        None => {
                            self.cells.insert(Box::new([c]), mass);
                        }
                    }
                }
            }
            [c0, c1] => {
                let mut counts: FxHashMap<(i64, i64), f64> = FxHashMap::default();
                for (&a, &b) in c0.iter().zip(c1) {
                    *counts.entry((a, b)).or_insert(0.0) += 1.0;
                }
                for ((a, b), mass) in counts {
                    match self.cells.get_mut(&[a, b][..]) {
                        Some(cell) => *cell += mass,
                        None => {
                            self.cells.insert(Box::new([a, b]), mass);
                        }
                    }
                }
            }
            _ => {
                let mut counts: FxHashMap<Box<[i64]>, f64> = FxHashMap::default();
                let mut key: Vec<i64> = Vec::with_capacity(self.dims);
                for i in 0..n {
                    key.clear();
                    key.extend(coords.iter().map(|c| c[i]));
                    match counts.get_mut(key.as_slice()) {
                        Some(mass) => *mass += 1.0,
                        None => {
                            counts.insert(key.as_slice().into(), 1.0);
                        }
                    }
                }
                for (key, mass) in counts {
                    match self.cells.get_mut(&*key) {
                        Some(cell) => *cell += mass,
                        None => {
                            self.cells.insert(key, mass);
                        }
                    }
                }
            }
        }
        self.total += n as f64;
        Ok(())
    }

    /// Add mass directly at cell coordinates (used by the relational
    /// operations below).
    fn add_cell(&mut self, coords: Box<[i64]>, mass: f64) {
        if mass == 0.0 {
            return;
        }
        *self.cells.entry(coords).or_insert(0.0) += mass;
        self.total += mass;
    }

    /// [`SparseHist::add_cell`] probing by slice first: occupied cells
    /// take no allocation, fresh cells box the coordinates once.
    fn add_mass(&mut self, coords: &[i64], mass: f64) {
        if mass == 0.0 {
            return;
        }
        match self.cells.get_mut(coords) {
            Some(cell) => *cell += mass,
            None => {
                self.cells.insert(coords.into(), mass);
            }
        }
        self.total += mass;
    }

    /// Iterate `(cell coordinates, mass)`.
    pub fn iter_cells(&self) -> impl Iterator<Item = (&[i64], f64)> {
        self.cells.iter().map(|(c, &m)| (c.as_ref(), m))
    }

    /// π: project onto the given dimensions (mass sums over the
    /// dropped coordinates). Dimensions may be repeated or reordered.
    pub fn project(&self, keep: &[usize]) -> DtResult<SparseHist> {
        for &d in keep {
            if d >= self.dims {
                return Err(DtError::synopsis(format!(
                    "projection dim {d} out of range for {} dims",
                    self.dims
                )));
            }
        }
        let mut out = SparseHist::new(keep.len(), self.cell_width)?;
        for (coords, mass) in self.iter_cells() {
            let c: Box<[i64]> = keep.iter().map(|&d| coords[d]).collect();
            out.add_cell(c, mass);
        }
        Ok(out)
    }

    /// `UNION ALL`: masses add. Requires identical dimensionality and
    /// grid.
    pub fn union_all(&self, other: &SparseHist) -> DtResult<SparseHist> {
        if self.dims != other.dims {
            return Err(DtError::synopsis(format!(
                "union of {}-dim and {}-dim histograms",
                self.dims, other.dims
            )));
        }
        if self.cell_width != other.cell_width {
            return Err(DtError::synopsis(
                "union of histograms with different grids",
            ));
        }
        let mut out = self.clone();
        for (coords, mass) in other.iter_cells() {
            out.add_mass(coords, mass);
        }
        Ok(out)
    }

    /// Equijoin on `self`'s dimension `self_dim` = `other`'s dimension
    /// `other_dim`.
    ///
    /// Cells match when their coordinates on the join dimensions are
    /// equal (the grids are aligned). Under the uniform-frequency
    /// assumption, two values uniform in the same width-`w` cell are
    /// equal with probability `1/w`, so the matched pair contributes
    /// `m_s · m_t / w`. The result keeps `self`'s dimensions in order
    /// followed by `other`'s with `other_dim` removed (its coordinate
    /// is redundant: it equals `self_dim`'s).
    ///
    /// Cost: linear in occupied cells (hash match on the join
    /// coordinate) — this is the property that makes the shadow query
    /// cheap (paper Fig. 6, "fast synopsis").
    pub fn equijoin(
        &self,
        self_dim: usize,
        other: &SparseHist,
        other_dim: usize,
    ) -> DtResult<SparseHist> {
        if self_dim >= self.dims || other_dim >= other.dims {
            return Err(DtError::synopsis("join dimension out of range"));
        }
        if self.cell_width != other.cell_width {
            return Err(DtError::synopsis("join of histograms with different grids"));
        }
        let w = self.cell_width as f64;
        // Index other's cells by their join coordinate.
        let mut index: FxHashMap<i64, Vec<(&[i64], f64)>> = FxHashMap::default();
        for (coords, mass) in other.iter_cells() {
            index
                .entry(coords[other_dim])
                .or_default()
                .push((coords, mass));
        }
        let mut out = SparseHist::new(self.dims + other.dims - 1, self.cell_width)?;
        let mut scratch: Vec<i64> = Vec::with_capacity(self.dims + other.dims - 1);
        for (scoords, smass) in self.iter_cells() {
            let Some(matches) = index.get(&scoords[self_dim]) else {
                continue;
            };
            for &(tcoords, tmass) in matches {
                scratch.clear();
                scratch.extend_from_slice(scoords);
                for (d, &tc) in tcoords.iter().enumerate() {
                    if d != other_dim {
                        scratch.push(tc);
                    }
                }
                out.add_mass(&scratch, smass * tmass / w);
            }
        }
        Ok(out)
    }

    /// Would inserting this point land in an already-occupied cell?
    /// (Used by the "synergistic" drop policy of paper §8.1: such a
    /// victim is summarized at zero marginal memory cost.)
    pub fn covers(&self, point: &[i64]) -> bool {
        if point.len() != self.dims {
            return false;
        }
        let coords: Box<[i64]> = point.iter().map(|&v| self.cell_of(v)).collect();
        self.cells.contains_key(&coords)
    }

    /// Coarsen the grid by an integer factor: the new cell width is
    /// `cell_width × factor` and every `factor^dims` block of old
    /// cells merges into one. Mass is conserved exactly. This is the
    /// primitive behind the adaptive, memory-bounded synopsis: halve
    /// the resolution whenever the cell budget is exceeded.
    pub fn coarsen(&self, factor: i64) -> DtResult<SparseHist> {
        if factor < 1 {
            return Err(DtError::synopsis("coarsening factor must be >= 1"));
        }
        if factor == 1 {
            return Ok(self.clone());
        }
        let mut out = SparseHist::new(self.dims, self.cell_width * factor)?;
        for (coords, mass) in self.iter_cells() {
            let c: Box<[i64]> = coords.iter().map(|&v| v.div_euclid(factor)).collect();
            out.add_cell(c, mass);
        }
        Ok(out)
    }

    /// Cross product ×: cell pairs concatenate, masses multiply.
    pub fn cross(&self, other: &SparseHist) -> DtResult<SparseHist> {
        if self.cell_width != other.cell_width {
            return Err(DtError::synopsis(
                "cross of histograms with different grids",
            ));
        }
        let mut out = SparseHist::new(self.dims + other.dims, self.cell_width)?;
        let mut scratch: Vec<i64> = Vec::with_capacity(self.dims + other.dims);
        for (sc, sm) in self.iter_cells() {
            for (tc, tm) in other.iter_cells() {
                scratch.clear();
                scratch.extend_from_slice(sc);
                scratch.extend_from_slice(tc);
                out.add_mass(&scratch, sm * tm);
            }
        }
        Ok(out)
    }

    /// σ on an inclusive integer range of one dimension: cells fully
    /// inside keep their mass; cells partially overlapping are scaled
    /// by the fraction of their `cell_width` integer values that fall
    /// in the range (uniformity assumption).
    pub fn select_range(&self, dim: usize, lo: i64, hi: i64) -> DtResult<SparseHist> {
        if dim >= self.dims {
            return Err(DtError::synopsis("selection dim out of range"));
        }
        let w = self.cell_width;
        let mut out = SparseHist::new(self.dims, w)?;
        for (coords, mass) in self.iter_cells() {
            let cell_lo = coords[dim] * w;
            let cell_hi = cell_lo + w - 1;
            let ov_lo = cell_lo.max(lo);
            let ov_hi = cell_hi.min(hi);
            if ov_lo > ov_hi {
                continue;
            }
            let frac = (ov_hi - ov_lo + 1) as f64 / w as f64;
            out.add_mass(coords, mass * frac);
        }
        Ok(out)
    }

    /// Estimated per-integer-value counts along one dimension — the
    /// estimator behind `GROUP BY <col>` + `COUNT(*)`. Each cell
    /// spreads its mass uniformly over its `cell_width` integer values.
    pub fn group_counts(&self, dim: usize) -> DtResult<FxHashMap<i64, f64>> {
        if dim >= self.dims {
            return Err(DtError::synopsis("group dim out of range"));
        }
        let w = self.cell_width;
        let mut out: FxHashMap<i64, f64> = FxHashMap::default();
        for (coords, mass) in self.iter_cells() {
            let base = coords[dim] * w;
            let per_value = mass / w as f64;
            for v in base..base + w {
                *out.entry(v).or_insert(0.0) += per_value;
            }
        }
        Ok(out)
    }

    /// Estimated per-group `SUM(sum_dim)`: each cell contributes its
    /// mass times the midpoint of `sum_dim`'s cell interval, spread
    /// uniformly over the group dimension's values.
    pub fn group_sums(&self, group_dim: usize, sum_dim: usize) -> DtResult<FxHashMap<i64, f64>> {
        if group_dim >= self.dims || sum_dim >= self.dims {
            return Err(DtError::synopsis("group/sum dim out of range"));
        }
        let w = self.cell_width;
        let mut out: FxHashMap<i64, f64> = FxHashMap::default();
        for (coords, mass) in self.iter_cells() {
            let sum_mid = (coords[sum_dim] * w) as f64 + (w - 1) as f64 / 2.0;
            let base = coords[group_dim] * w;
            let per_value = mass / w as f64;
            for v in base..base + w {
                *out.entry(v).or_insert(0.0) += per_value * sum_mid;
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hist1(w: i64, points: &[i64]) -> SparseHist {
        let mut h = SparseHist::new(1, w).unwrap();
        for &p in points {
            h.insert(&[p]).unwrap();
        }
        h
    }

    #[test]
    fn rejects_bad_config_and_arity() {
        assert!(SparseHist::new(1, 0).is_err());
        let mut h = SparseHist::new(2, 5).unwrap();
        assert!(h.insert(&[1]).is_err());
        assert!(h.insert(&[1, 2, 3]).is_err());
        assert!(h.insert(&[1, 2]).is_ok());
    }

    #[test]
    fn insert_accumulates_mass() {
        let h = hist1(10, &[1, 2, 11, 99]);
        assert_eq!(h.total_mass(), 4.0);
        assert_eq!(h.num_cells(), 3); // cells 0, 1, 9
    }

    #[test]
    fn negative_values_use_euclidean_cells() {
        let h = hist1(10, &[-1, -10, 0]);
        // -1 -> cell -1, -10 -> cell -1, 0 -> cell 0.
        assert_eq!(h.num_cells(), 2);
    }

    #[test]
    fn project_sums_dropped_dims() {
        let mut h = SparseHist::new(2, 10).unwrap();
        h.insert(&[5, 5]).unwrap();
        h.insert(&[5, 95]).unwrap();
        let p = h.project(&[0]).unwrap();
        assert_eq!(p.dims(), 1);
        assert_eq!(p.num_cells(), 1);
        assert_eq!(p.total_mass(), 2.0);
        assert!(h.project(&[7]).is_err());
    }

    #[test]
    fn project_can_reorder_and_duplicate() {
        let mut h = SparseHist::new(2, 1).unwrap();
        h.insert(&[3, 4]).unwrap();
        let p = h.project(&[1, 0, 1]).unwrap();
        assert_eq!(p.dims(), 3);
        let cells: Vec<_> = p.iter_cells().collect();
        assert_eq!(cells[0].0, &[4, 3, 4]);
    }

    #[test]
    fn union_adds() {
        let a = hist1(10, &[1, 2]);
        let b = hist1(10, &[2, 50]);
        let u = a.union_all(&b).unwrap();
        assert_eq!(u.total_mass(), 4.0);
        assert_eq!(u.num_cells(), 2);
        let c = hist1(5, &[1]);
        assert!(a.union_all(&c).is_err());
        let d = SparseHist::new(2, 10).unwrap();
        assert!(a.union_all(&d).is_err());
    }

    #[test]
    fn equijoin_width_one_is_exact() {
        // With w = 1, cells are single values: the estimate is exact.
        let a = hist1(1, &[1, 1, 2]);
        let b = hist1(1, &[1, 3]);
        let j = a.equijoin(0, &b, 0).unwrap();
        // 2 copies of value 1 join 1 copy of value 1 => mass 2.
        assert_eq!(j.total_mass(), 2.0);
        assert_eq!(j.dims(), 1);
        let counts = j.group_counts(0).unwrap();
        assert_eq!(counts[&1], 2.0);
    }

    #[test]
    fn equijoin_mass_scales_by_inverse_width() {
        let a = hist1(10, &[5]); // 1 tuple in cell 0
        let b = hist1(10, &[7]); // 1 tuple in cell 0
        let j = a.equijoin(0, &b, 0).unwrap();
        // Expected matches under uniformity: 1 * 1 / 10.
        assert!((j.total_mass() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn equijoin_combines_dims() {
        let mut a = SparseHist::new(2, 1).unwrap(); // (x, k)
        a.insert(&[10, 1]).unwrap();
        let mut b = SparseHist::new(2, 1).unwrap(); // (k, y)
        b.insert(&[1, 20]).unwrap();
        let j = a.equijoin(1, &b, 0).unwrap();
        assert_eq!(j.dims(), 3); // (x, k, y)
        let cells: Vec<_> = j.iter_cells().collect();
        assert_eq!(cells[0].0, &[10, 1, 20]);
        assert_eq!(cells[0].1, 1.0);
    }

    #[test]
    fn equijoin_no_match_is_empty() {
        let a = hist1(1, &[1]);
        let b = hist1(1, &[2]);
        assert!(a.equijoin(0, &b, 0).unwrap().is_empty());
    }

    #[test]
    fn equijoin_checks_dims_and_grid() {
        let a = hist1(1, &[1]);
        let b = hist1(2, &[1]);
        assert!(a.equijoin(0, &b, 0).is_err()); // grid mismatch
        assert!(a.equijoin(1, &hist1(1, &[1]), 0).is_err()); // dim oob
    }

    #[test]
    fn select_range_full_and_partial() {
        let h = hist1(10, &[0, 1, 2, 3, 4, 5, 6, 7, 8, 9]); // 10 tuples, cell 0
                                                            // Full cell.
        let full = h.select_range(0, 0, 9).unwrap();
        assert_eq!(full.total_mass(), 10.0);
        // Half the cell's values.
        let half = h.select_range(0, 0, 4).unwrap();
        assert!((half.total_mass() - 5.0).abs() < 1e-12);
        // Disjoint.
        assert!(h.select_range(0, 100, 200).unwrap().is_empty());
        assert!(h.select_range(1, 0, 1).is_err());
    }

    #[test]
    fn group_counts_spread_uniformly() {
        let h = hist1(4, &[0, 1]); // 2 tuples in cell 0 = values 0..=3
        let g = h.group_counts(0).unwrap();
        assert_eq!(g.len(), 4);
        for v in 0..4 {
            assert!((g[&v] - 0.5).abs() < 1e-12);
        }
        assert!(h.group_counts(3).is_err());
    }

    #[test]
    fn group_sums_use_midpoint() {
        let mut h = SparseHist::new(2, 1).unwrap();
        h.insert(&[7, 40]).unwrap();
        h.insert(&[7, 42]).unwrap();
        let sums = h.group_sums(0, 1).unwrap();
        // Width 1: midpoints are the exact values.
        assert!((sums[&7] - 82.0).abs() < 1e-12);
    }

    #[test]
    fn coarsen_conserves_mass_and_merges_cells() {
        let h = hist1(5, &[0, 3, 7, 12, 49]);
        // Cells at width 5: 0, 1, 2, 9 -> 4 cells.
        assert_eq!(h.num_cells(), 4);
        let c = h.coarsen(2).unwrap();
        assert_eq!(c.cell_width(), 10);
        // Width 10 cells: 0 (from 0,3,7), 1 (12), 4 (49) -> 3 cells.
        assert_eq!(c.num_cells(), 3);
        assert_eq!(c.total_mass(), h.total_mass());
        // Identity and error cases.
        assert_eq!(h.coarsen(1).unwrap(), h);
        assert!(h.coarsen(0).is_err());
    }

    #[test]
    fn coarsen_handles_negative_cells() {
        let h = hist1(1, &[-3, -1, 2]);
        let c = h.coarsen(4).unwrap();
        assert_eq!(c.total_mass(), 3.0);
        // -3,-1 -> cell -1 at width 4; 2 -> cell 0.
        assert_eq!(c.num_cells(), 2);
    }

    #[test]
    fn insert_weighted_fractional() {
        let mut h = SparseHist::new(1, 1).unwrap();
        h.insert_weighted(&[3], 0.25).unwrap();
        h.insert_weighted(&[3], 0.25).unwrap();
        assert!((h.total_mass() - 0.5).abs() < 1e-12);
        assert_eq!(h.num_cells(), 1);
    }
}
