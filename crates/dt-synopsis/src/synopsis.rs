//! The unified [`Synopsis`] type used by triage queues and shadow
//! query plans.
//!
//! The paper implements synopses as an object-relational datatype with
//! user-defined functions (`project`, `union_all`, `equijoin`, …) and
//! evaluates the shadow query as SQL over that datatype. Our analog is
//! this enum: one closed set of operations, three interchangeable
//! structures, chosen per run by [`SynopsisConfig`]. Binary operations
//! require both operands to share a structure (each experiment picks
//! one synopsis datatype, as in the paper).

use dt_types::FxHashMap;

use dt_types::{DtError, DtResult};

use crate::adaptive::AdaptiveSparse;
use crate::mhist::{MHist, MHistConfig};
use crate::reservoir::ReservoirSample;
use crate::sparse::SparseHist;
use crate::wavelet::WaveletSynopsis;

/// Estimated per-group aggregate values, keyed by the (integer) group
/// value.
pub type GroupEstimate = FxHashMap<i64, f64>;

/// Which synopsis structure to use, with its tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SynopsisConfig {
    /// Sparse grid histogram with cubic buckets (the paper's fast
    /// synopsis).
    Sparse {
        /// Bucket edge length in integer value units.
        cell_width: i64,
    },
    /// MHIST with MAXDIFF splits (the paper's accurate-but-slow
    /// synopsis); `alignment` selects the §8.1 constrained variant.
    MHist {
        /// Maximum bucket count.
        max_buckets: usize,
        /// Snap split boundaries to multiples of this grid.
        alignment: Option<i64>,
    },
    /// Uniform reservoir sample (§8.1 "additional synopsis types").
    Reservoir {
        /// Maximum retained rows.
        capacity: usize,
        /// RNG seed for deterministic eviction.
        seed: u64,
    },
    /// Thresholded Haar-wavelet synopsis (§8.1 / the wavelet line of
    /// related work). Binary operations *lower* wavelet operands to
    /// their reconstructed width-1 sparse grids, so results of shadow
    /// plans over wavelet leaves come back as `Sparse`.
    Wavelet {
        /// Retained coefficients per synopsis.
        budget: usize,
        /// Power-of-two domain size per dimension.
        domain: usize,
    },
    /// Memory-bounded adaptive sparse histogram: starts at
    /// `base_width` and coarsens 2× whenever it would exceed
    /// `max_cells` occupied cells. Binary operations harmonize grids
    /// automatically (the finer operand is coarsened to the coarser
    /// width).
    AdaptiveSparse {
        /// Initial cell width.
        base_width: i64,
        /// Occupied-cell budget per synopsis.
        max_cells: usize,
    },
}

impl SynopsisConfig {
    /// The paper's default: sparse histogram, cell width 10 over the
    /// 1–100 integer domain.
    pub fn default_sparse() -> Self {
        SynopsisConfig::Sparse { cell_width: 10 }
    }

    /// Build an empty synopsis over `dims` dimensions.
    pub fn build(&self, dims: usize) -> DtResult<Synopsis> {
        Ok(match *self {
            SynopsisConfig::Sparse { cell_width } => {
                Synopsis::Sparse(SparseHist::new(dims, cell_width)?)
            }
            SynopsisConfig::MHist {
                max_buckets,
                alignment,
            } => Synopsis::MHist(MHist::new(
                dims,
                MHistConfig {
                    max_buckets,
                    alignment,
                },
            )?),
            SynopsisConfig::Reservoir { capacity, seed } => {
                Synopsis::Reservoir(ReservoirSample::new(dims, capacity, seed)?)
            }
            SynopsisConfig::Wavelet { budget, domain } => {
                Synopsis::Wavelet(WaveletSynopsis::new(dims, domain, budget)?)
            }
            SynopsisConfig::AdaptiveSparse {
                base_width,
                max_cells,
            } => Synopsis::Adaptive(AdaptiveSparse::new(dims, base_width, max_cells)?),
        })
    }

    /// Build an empty *mergeable* synopsis over `dims` dimensions:
    /// like [`SynopsisConfig::build`], but reservoirs come up in
    /// tagged bottom-k mode (see
    /// [`ReservoirSample::new_mergeable`]) so per-shard partials can
    /// be folded exactly at seal. Sparse and MHIST synopses are
    /// already merge-capable and build identically. Errors for
    /// synopsis kinds that cannot merge (wavelet, adaptive-sparse).
    pub fn build_mergeable(&self, dims: usize) -> DtResult<Synopsis> {
        match *self {
            SynopsisConfig::Reservoir { capacity, seed } => Ok(Synopsis::Reservoir(
                ReservoirSample::new_mergeable(dims, capacity, seed)?,
            )),
            SynopsisConfig::Wavelet { .. } | SynopsisConfig::AdaptiveSparse { .. } => {
                Err(DtError::synopsis(format!(
                    "synopsis kind '{}' does not support sharded merging",
                    self.label()
                )))
            }
            _ => self.build(dims),
        }
    }

    /// Can partial synopses of this kind be merged exactly
    /// ([`Synopsis::merge_from`])? Wavelet and adaptive-sparse
    /// synopses are order-sensitive in ways no tag can undo (on-line
    /// coarsening, threshold ties), so sharded execution rejects them.
    pub fn supports_merge(&self) -> bool {
        !matches!(
            self,
            SynopsisConfig::Wavelet { .. } | SynopsisConfig::AdaptiveSparse { .. }
        )
    }

    /// A short human-readable label, used in experiment output.
    pub fn label(&self) -> String {
        match self {
            SynopsisConfig::Sparse { cell_width } => format!("sparse(w={cell_width})"),
            SynopsisConfig::MHist {
                max_buckets,
                alignment: None,
            } => format!("mhist(b={max_buckets})"),
            SynopsisConfig::MHist {
                max_buckets,
                alignment: Some(g),
            } => format!("mhist-aligned(b={max_buckets},g={g})"),
            SynopsisConfig::Reservoir { capacity, .. } => format!("reservoir(c={capacity})"),
            SynopsisConfig::Wavelet { budget, domain } => {
                format!("wavelet(b={budget},n={domain})")
            }
            SynopsisConfig::AdaptiveSparse {
                base_width,
                max_cells,
            } => format!("adaptive(w={base_width},cells={max_cells})"),
        }
    }
}

/// A synopsis of a set of dropped (or kept) tuples.
///
/// (Variant sizes differ, but the system holds only a handful of
/// synopses at a time — two per stream per open window — so boxing the
/// larger variants would cost more in indirection than it saves.)
#[derive(Debug, Clone, PartialEq)]
#[allow(clippy::large_enum_variant)]
pub enum Synopsis {
    /// See [`SparseHist`].
    Sparse(SparseHist),
    /// See [`MHist`].
    MHist(MHist),
    /// See [`ReservoirSample`].
    Reservoir(ReservoirSample),
    /// See [`WaveletSynopsis`].
    Wavelet(WaveletSynopsis),
    /// See [`AdaptiveSparse`].
    Adaptive(AdaptiveSparse),
}

impl Synopsis {
    /// Number of dimensions.
    pub fn dims(&self) -> usize {
        match self {
            Synopsis::Sparse(s) => s.dims(),
            Synopsis::MHist(m) => m.dims(),
            Synopsis::Reservoir(r) => r.dims(),
            Synopsis::Wavelet(w) => w.dims(),
            Synopsis::Adaptive(a) => a.dims(),
        }
    }

    /// Estimated total tuple count.
    pub fn total_mass(&self) -> f64 {
        match self {
            Synopsis::Sparse(s) => s.total_mass(),
            Synopsis::MHist(m) => m.total_mass(),
            Synopsis::Reservoir(r) => r.total_mass(),
            Synopsis::Wavelet(w) => w.total_mass(),
            Synopsis::Adaptive(a) => a.total_mass(),
        }
    }

    /// True if nothing has been inserted.
    pub fn is_empty(&self) -> bool {
        match self {
            Synopsis::Sparse(s) => s.is_empty(),
            Synopsis::MHist(m) => m.is_empty(),
            Synopsis::Reservoir(r) => r.is_empty(),
            Synopsis::Wavelet(w) => w.is_empty(),
            Synopsis::Adaptive(a) => a.is_empty(),
        }
    }

    /// Memory-footprint proxy: occupied cells / buckets / retained
    /// rows.
    pub fn memory_units(&self) -> usize {
        match self {
            Synopsis::Sparse(s) => s.num_cells(),
            Synopsis::MHist(m) => m.num_buckets(),
            Synopsis::Reservoir(r) => r.num_rows(),
            Synopsis::Wavelet(w) => w.retained_coefficients().max(1),
            Synopsis::Adaptive(a) => a.num_cells(),
        }
    }

    /// Insert one tuple (the triage queue's per-victim operation).
    pub fn insert(&mut self, point: &[i64]) -> DtResult<()> {
        match self {
            Synopsis::Sparse(s) => s.insert(point),
            Synopsis::MHist(m) => m.insert(point),
            Synopsis::Reservoir(r) => r.insert(point),
            Synopsis::Wavelet(w) => w.insert(point),
            Synopsis::Adaptive(a) => a.insert(point),
        }
    }

    /// Insert a batch of points — bit-identical to one
    /// [`Synopsis::insert`] per point, but the enum dispatch happens
    /// once per batch and the structures can amortize internal work
    /// (MHIST reserves its point buffer in one step).
    pub fn insert_batch<'a>(
        &mut self,
        points: impl IntoIterator<Item = &'a [i64]>,
    ) -> DtResult<()> {
        match self {
            Synopsis::Sparse(s) => s.insert_batch(points),
            Synopsis::MHist(m) => m.insert_batch(points),
            Synopsis::Reservoir(r) => {
                for p in points {
                    r.insert(p)?;
                }
                Ok(())
            }
            Synopsis::Wavelet(w) => {
                for p in points {
                    w.insert(p)?;
                }
                Ok(())
            }
            Synopsis::Adaptive(a) => {
                for p in points {
                    a.insert(p)?;
                }
                Ok(())
            }
        }
    }

    /// Insert unit-mass points given column-wise: `cols[d][i]` is
    /// dimension `d` of point `i`. Bit-identical to one
    /// [`Synopsis::insert`] per transposed point, in row order.
    ///
    /// Sparse and MHIST dispatch to their vectorized column kernels;
    /// reservoir, wavelet, and adaptive synopses are order-sensitive
    /// (RNG eviction / on-line coarsening) and replay the points
    /// row-by-row instead.
    pub fn insert_columns(&mut self, cols: &[Vec<i64>]) -> DtResult<()> {
        match self {
            Synopsis::Sparse(s) => s.insert_columns(cols),
            Synopsis::MHist(m) => m.insert_columns(cols),
            other => {
                let n = cols.first().map_or(0, Vec::len);
                if cols.iter().any(|c| c.len() != n) {
                    return Err(DtError::synopsis("column lengths differ in insert_columns"));
                }
                let mut point: Vec<i64> = Vec::with_capacity(cols.len());
                for i in 0..n {
                    point.clear();
                    point.extend(cols.iter().map(|c| c[i]));
                    other.insert(&point)?;
                }
                Ok(())
            }
        }
    }

    /// Insert one unit-mass tuple carrying an arrival tag (a unique,
    /// totally ordered sequence number — sharded triage uses the
    /// per-stream ingest sequence). Tags are what make partial
    /// synopses mergeable: MHIST records them to restore global
    /// insertion order at merge, mergeable reservoirs hash them into
    /// retention priorities, and the order-free structures (sparse
    /// grids) ignore them — for those this is exactly
    /// [`Synopsis::insert`].
    pub fn insert_tagged(&mut self, point: &[i64], tag: u64) -> DtResult<()> {
        match self {
            Synopsis::MHist(m) => m.insert_tagged(point, tag),
            Synopsis::Reservoir(r) => r.insert_tagged(point, tag),
            other => other.insert(point),
        }
    }

    /// Columnar [`Synopsis::insert_tagged`]: unit-mass points given
    /// column-wise with one tag per row, bit-identical to one tagged
    /// insert per transposed point in row order.
    pub fn insert_columns_tagged(&mut self, cols: &[Vec<i64>], tags: &[u64]) -> DtResult<()> {
        let n = cols.first().map_or(0, Vec::len);
        if tags.len() != n {
            return Err(DtError::synopsis("tag count != row count"));
        }
        match self {
            Synopsis::Sparse(s) => s.insert_columns(cols),
            Synopsis::MHist(m) => m.insert_columns_tagged(cols, tags),
            other => {
                if cols.iter().any(|c| c.len() != n) {
                    return Err(DtError::synopsis("column lengths differ in insert_columns"));
                }
                let mut point: Vec<i64> = Vec::with_capacity(cols.len());
                for (i, &tag) in tags.iter().enumerate() {
                    point.clear();
                    point.extend(cols.iter().map(|c| c[i]));
                    other.insert_tagged(&point, tag)?;
                }
                Ok(())
            }
        }
    }

    /// Fold another (unsealed) partial synopsis into this one.
    ///
    /// Sharded triage keeps one synopsis per shard and merges them at
    /// seal, in shard order; the merged result is bit-identical to a
    /// single synopsis that saw every tuple, provided inserts carried
    /// the per-stream sequence tags ([`Synopsis::insert_tagged`]).
    /// Sparse grids merge by cell-mass addition (order-free), MHISTs
    /// by tag-sorted point-buffer concatenation, mergeable reservoirs
    /// by bottom-k union. Wavelet and adaptive-sparse synopses error —
    /// server configs reject them for sharded runs up front
    /// ([`SynopsisConfig::supports_merge`]).
    pub fn merge_from(&mut self, other: &Synopsis) -> DtResult<()> {
        match (self, other) {
            (Synopsis::Sparse(a), Synopsis::Sparse(b)) => a.merge_from(b),
            (Synopsis::MHist(a), Synopsis::MHist(b)) => a.merge_from(b),
            (Synopsis::Reservoir(a), Synopsis::Reservoir(b)) => a.merge_from(b),
            (a, b) if a.kind_name() == b.kind_name() => Err(DtError::synopsis(format!(
                "synopsis kind '{}' does not support merging",
                b.kind_name()
            ))),
            (a, b) => Err(Self::kind_mismatch("merge_from", a, b)),
        }
    }

    /// Finalize the synopsis at a window boundary. For MHIST this runs
    /// MAXDIFF partitioning; for the other structures it is a no-op.
    pub fn seal(&mut self) {
        match self {
            Synopsis::MHist(m) => m.freeze(),
            Synopsis::Wavelet(w) => w.freeze(),
            _ => {}
        }
    }

    /// Lower a wavelet operand to its reconstructed width-1 sparse
    /// grid; other kinds pass through. Relational operations call this
    /// first, so wavelet synopses compose with the whole shadow-plan
    /// machinery (results come back as `Sparse`).
    fn lowered(&self) -> Synopsis {
        match self {
            Synopsis::Wavelet(w) => Synopsis::Sparse(w.reconstructed()),
            Synopsis::Adaptive(a) => Synopsis::Sparse(a.as_sparse().clone()),
            other => other.clone(),
        }
    }

    /// Must this operand be lowered to a plain sparse histogram before
    /// a binary operation?
    fn needs_lowering(&self) -> bool {
        matches!(self, Synopsis::Wavelet(_) | Synopsis::Adaptive(_))
    }

    /// Bring two sparse histograms onto one grid: the finer is
    /// coarsened to the coarser width (exact when the widths divide,
    /// which holds for adaptive synopses sharing a base width).
    fn harmonize(
        a: crate::sparse::SparseHist,
        b: crate::sparse::SparseHist,
    ) -> DtResult<(crate::sparse::SparseHist, crate::sparse::SparseHist)> {
        let (wa, wb) = (a.cell_width(), b.cell_width());
        if wa == wb {
            return Ok((a, b));
        }
        let (fine, coarse_w) = if wa < wb { (&a, wb) } else { (&b, wa) };
        let fine_w = fine.cell_width();
        if coarse_w % fine_w != 0 {
            return Err(DtError::synopsis(format!(
                "cannot harmonize grids of widths {fine_w} and {coarse_w}                  (not integer multiples)"
            )));
        }
        let factor = coarse_w / fine_w;
        if wa < wb {
            let a2 = a.coarsen(factor)?;
            Ok((a2, b))
        } else {
            let b2 = b.coarsen(factor)?;
            Ok((a, b2))
        }
    }

    /// π onto the given dimensions.
    pub fn project(&self, keep: &[usize]) -> DtResult<Synopsis> {
        Ok(match self {
            Synopsis::Sparse(s) => Synopsis::Sparse(s.project(keep)?),
            Synopsis::MHist(m) => Synopsis::MHist(m.project(keep)?),
            Synopsis::Reservoir(r) => Synopsis::Reservoir(r.project(keep)?),
            Synopsis::Wavelet(_) | Synopsis::Adaptive(_) => self.lowered().project(keep)?,
        })
    }

    /// `UNION ALL`.
    pub fn union_all(&self, other: &Synopsis) -> DtResult<Synopsis> {
        if self.needs_lowering() || other.needs_lowering() {
            return self.lowered().union_all(&other.lowered());
        }
        Ok(match (self, other) {
            (Synopsis::Sparse(a), Synopsis::Sparse(b)) if a.cell_width() != b.cell_width() => {
                let (a, b) = Self::harmonize(a.clone(), b.clone())?;
                Synopsis::Sparse(a.union_all(&b)?)
            }
            (Synopsis::Sparse(a), Synopsis::Sparse(b)) => Synopsis::Sparse(a.union_all(b)?),
            (Synopsis::MHist(a), Synopsis::MHist(b)) => Synopsis::MHist(a.union_all(b)?),
            (Synopsis::Reservoir(a), Synopsis::Reservoir(b)) => {
                Synopsis::Reservoir(a.union_all(b)?)
            }
            _ => return Err(Self::kind_mismatch("union_all", self, other)),
        })
    }

    /// Equijoin on `self_dim = other_dim`.
    pub fn equijoin(
        &self,
        self_dim: usize,
        other: &Synopsis,
        other_dim: usize,
    ) -> DtResult<Synopsis> {
        if self.needs_lowering() || other.needs_lowering() {
            return self
                .lowered()
                .equijoin(self_dim, &other.lowered(), other_dim);
        }
        Ok(match (self, other) {
            (Synopsis::Sparse(a), Synopsis::Sparse(b)) if a.cell_width() != b.cell_width() => {
                let (a, b) = Self::harmonize(a.clone(), b.clone())?;
                Synopsis::Sparse(a.equijoin(self_dim, &b, other_dim)?)
            }
            (Synopsis::Sparse(a), Synopsis::Sparse(b)) => {
                Synopsis::Sparse(a.equijoin(self_dim, b, other_dim)?)
            }
            (Synopsis::MHist(a), Synopsis::MHist(b)) => {
                Synopsis::MHist(a.equijoin(self_dim, b, other_dim)?)
            }
            (Synopsis::Reservoir(a), Synopsis::Reservoir(b)) => {
                Synopsis::Reservoir(a.equijoin(self_dim, b, other_dim)?)
            }
            _ => return Err(Self::kind_mismatch("equijoin", self, other)),
        })
    }

    /// Would this point be absorbed by existing synopsis structure
    /// (occupied cell / covering bucket / duplicate sample row)? The
    /// synergistic drop policy prefers such victims.
    pub fn covers(&self, point: &[i64]) -> bool {
        match self {
            Synopsis::Sparse(s) => s.covers(point),
            Synopsis::MHist(m) => m.covers(point),
            Synopsis::Reservoir(r) => r.covers(point),
            Synopsis::Wavelet(w) => w.covers(point),
            Synopsis::Adaptive(a) => a.covers(point),
        }
    }

    /// Cross product ×.
    pub fn cross(&self, other: &Synopsis) -> DtResult<Synopsis> {
        if self.needs_lowering() || other.needs_lowering() {
            return self.lowered().cross(&other.lowered());
        }
        Ok(match (self, other) {
            (Synopsis::Sparse(a), Synopsis::Sparse(b)) if a.cell_width() != b.cell_width() => {
                let (a, b) = Self::harmonize(a.clone(), b.clone())?;
                Synopsis::Sparse(a.cross(&b)?)
            }
            (Synopsis::Sparse(a), Synopsis::Sparse(b)) => Synopsis::Sparse(a.cross(b)?),
            (Synopsis::MHist(a), Synopsis::MHist(b)) => Synopsis::MHist(a.cross(b)?),
            (Synopsis::Reservoir(a), Synopsis::Reservoir(b)) => Synopsis::Reservoir(a.cross(b)?),
            _ => return Err(Self::kind_mismatch("cross", self, other)),
        })
    }

    /// σ on an inclusive integer range of one dimension.
    pub fn select_range(&self, dim: usize, lo: i64, hi: i64) -> DtResult<Synopsis> {
        Ok(match self {
            Synopsis::Sparse(s) => Synopsis::Sparse(s.select_range(dim, lo, hi)?),
            Synopsis::MHist(m) => Synopsis::MHist(m.select_range(dim, lo, hi)?),
            Synopsis::Reservoir(r) => Synopsis::Reservoir(r.select_range(dim, lo, hi)?),
            Synopsis::Wavelet(_) | Synopsis::Adaptive(_) => {
                self.lowered().select_range(dim, lo, hi)?
            }
        })
    }

    /// Estimated `GROUP BY dim` + `COUNT(*)`.
    pub fn group_counts(&self, dim: usize) -> DtResult<GroupEstimate> {
        match self {
            Synopsis::Sparse(s) => s.group_counts(dim),
            Synopsis::MHist(m) => m.group_counts(dim),
            Synopsis::Reservoir(r) => r.group_counts(dim),
            Synopsis::Wavelet(_) | Synopsis::Adaptive(_) => self.lowered().group_counts(dim),
        }
    }

    /// Estimated `GROUP BY group_dim` + `SUM(sum_dim)`.
    pub fn group_sums(&self, group_dim: usize, sum_dim: usize) -> DtResult<GroupEstimate> {
        match self {
            Synopsis::Sparse(s) => s.group_sums(group_dim, sum_dim),
            Synopsis::MHist(m) => m.group_sums(group_dim, sum_dim),
            Synopsis::Reservoir(r) => r.group_sums(group_dim, sum_dim),
            Synopsis::Wavelet(_) | Synopsis::Adaptive(_) => {
                self.lowered().group_sums(group_dim, sum_dim)
            }
        }
    }

    /// Estimated `GROUP BY group_dim` + `AVG(avg_dim)` (sum/count,
    /// groups with zero estimated count omitted).
    pub fn group_avgs(&self, group_dim: usize, avg_dim: usize) -> DtResult<GroupEstimate> {
        let counts = self.group_counts(group_dim)?;
        let sums = self.group_sums(group_dim, avg_dim)?;
        let mut out = GroupEstimate::default();
        for (k, s) in sums {
            if let Some(&c) = counts.get(&k) {
                if c > 0.0 {
                    out.insert(k, s / c);
                }
            }
        }
        Ok(out)
    }

    fn kind_mismatch(op: &str, a: &Synopsis, b: &Synopsis) -> DtError {
        DtError::synopsis(format!(
            "{op} requires matching synopsis kinds, got {} and {}",
            a.kind_name(),
            b.kind_name()
        ))
    }

    /// Structure name, for error messages and labels.
    pub fn kind_name(&self) -> &'static str {
        match self {
            Synopsis::Sparse(_) => "sparse",
            Synopsis::MHist(_) => "mhist",
            Synopsis::Reservoir(_) => "reservoir",
            Synopsis::Wavelet(_) => "wavelet",
            Synopsis::Adaptive(_) => "adaptive-sparse",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_configs() -> Vec<SynopsisConfig> {
        vec![
            SynopsisConfig::Sparse { cell_width: 1 },
            SynopsisConfig::MHist {
                max_buckets: 64,
                alignment: None,
            },
            SynopsisConfig::MHist {
                max_buckets: 64,
                alignment: Some(10),
            },
            SynopsisConfig::Reservoir {
                capacity: 1000,
                seed: 7,
            },
            SynopsisConfig::Wavelet {
                budget: 128,
                domain: 128,
            },
            SynopsisConfig::AdaptiveSparse {
                base_width: 1,
                max_cells: 64,
            },
        ]
    }

    #[test]
    fn every_config_builds_and_counts() {
        for cfg in all_configs() {
            let mut s = cfg.build(1).unwrap();
            for v in [1i64, 1, 2, 3] {
                s.insert(&[v]).unwrap();
            }
            s.seal();
            assert!(
                (s.total_mass() - 4.0).abs() < 1e-9,
                "{}: {}",
                cfg.label(),
                s.total_mass()
            );
            assert!(!s.is_empty());
            assert!(s.memory_units() > 0);
        }
    }

    #[test]
    fn every_config_joins_exactly_when_lossless() {
        // With per-value resolution (w=1, enough buckets/capacity,
        // alignment grid 1) the estimated join count matches the exact
        // join for every structure.
        let lossless_configs = vec![
            SynopsisConfig::Sparse { cell_width: 1 },
            SynopsisConfig::MHist {
                max_buckets: 64,
                alignment: None,
            },
            SynopsisConfig::MHist {
                max_buckets: 64,
                alignment: Some(1),
            },
            SynopsisConfig::Reservoir {
                capacity: 1000,
                seed: 7,
            },
            // Full coefficient budget = lossless reconstruction.
            SynopsisConfig::Wavelet {
                budget: 128,
                domain: 128,
            },
            // Budget large enough that the grid never coarsens.
            SynopsisConfig::AdaptiveSparse {
                base_width: 1,
                max_cells: 1000,
            },
        ];
        for cfg in lossless_configs {
            let mut a = cfg.build(1).unwrap();
            let mut b = cfg.build(1).unwrap();
            for v in [1i64, 1, 2] {
                a.insert(&[v]).unwrap();
            }
            for v in [1i64, 3] {
                b.insert(&[v]).unwrap();
            }
            a.seal();
            b.seal();
            let j = a.equijoin(0, &b, 0).unwrap();
            assert!(
                (j.total_mass() - 2.0).abs() < 1e-6,
                "{}: {}",
                cfg.label(),
                j.total_mass()
            );
            let g = j.group_counts(0).unwrap();
            assert!((g[&1] - 2.0).abs() < 1e-6, "{}", cfg.label());
        }
    }

    #[test]
    fn mixed_kind_binary_ops_error() {
        let a = SynopsisConfig::Sparse { cell_width: 1 }.build(1).unwrap();
        let b = SynopsisConfig::Reservoir {
            capacity: 10,
            seed: 0,
        }
        .build(1)
        .unwrap();
        assert!(a.union_all(&b).is_err());
        assert!(a.equijoin(0, &b, 0).is_err());
    }

    #[test]
    fn group_avgs_divide() {
        let mut s = SynopsisConfig::Sparse { cell_width: 1 }.build(2).unwrap();
        s.insert(&[5, 10]).unwrap();
        s.insert(&[5, 20]).unwrap();
        let avg = s.group_avgs(0, 1).unwrap();
        assert!((avg[&5] - 15.0).abs() < 1e-9);
    }

    #[test]
    fn labels_are_descriptive() {
        assert_eq!(SynopsisConfig::default_sparse().label(), "sparse(w=10)");
        assert_eq!(
            SynopsisConfig::MHist {
                max_buckets: 8,
                alignment: Some(5)
            }
            .label(),
            "mhist-aligned(b=8,g=5)"
        );
        assert_eq!(
            SynopsisConfig::Reservoir {
                capacity: 3,
                seed: 0
            }
            .label(),
            "reservoir(c=3)"
        );
        assert_eq!(
            SynopsisConfig::Wavelet {
                budget: 16,
                domain: 128
            }
            .label(),
            "wavelet(b=16,n=128)"
        );
        assert_eq!(
            SynopsisConfig::AdaptiveSparse {
                base_width: 1,
                max_cells: 64
            }
            .label(),
            "adaptive(w=1,cells=64)"
        );
    }

    #[test]
    fn adaptive_operands_harmonize_grids() {
        // One synopsis coarsens under pressure, the other does not;
        // union and join still work, at the coarser resolution.
        let cfg = SynopsisConfig::AdaptiveSparse {
            base_width: 1,
            max_cells: 8,
        };
        let mut pressured = cfg.build(1).unwrap();
        for v in 0..64 {
            pressured.insert(&[v]).unwrap();
        }
        let mut light = cfg.build(1).unwrap();
        for v in 0..4 {
            light.insert(&[v]).unwrap();
        }
        let u = pressured.union_all(&light).unwrap();
        assert!((u.total_mass() - 68.0).abs() < 1e-9);
        let j = pressured.equijoin(0, &light, 0).unwrap();
        assert!(j.total_mass() > 0.0);
        // Harmonization failure: incompatible fixed widths.
        let a = SynopsisConfig::Sparse { cell_width: 2 }.build(1).unwrap();
        let b = SynopsisConfig::Sparse { cell_width: 3 }.build(1).unwrap();
        assert!(a.union_all(&b).is_err());
    }

    #[test]
    fn adaptive_bounds_memory_under_the_enum_api() {
        let cfg = SynopsisConfig::AdaptiveSparse {
            base_width: 1,
            max_cells: 10,
        };
        let mut s = cfg.build(2).unwrap();
        for x in 0..30 {
            s.insert(&[x, x * 3 % 50]).unwrap();
        }
        s.seal();
        assert!(s.memory_units() <= 10);
        assert_eq!(s.total_mass(), 30.0);
        assert_eq!(s.kind_name(), "adaptive-sparse");
    }

    /// Every mergeable kind: partitioning tagged inserts across 3
    /// partials and merging in partition order reproduces the
    /// single-writer synopsis bit-for-bit.
    #[test]
    fn sharded_merge_matches_single_writer() {
        let configs = vec![
            SynopsisConfig::Sparse { cell_width: 10 },
            SynopsisConfig::MHist {
                max_buckets: 8,
                alignment: None,
            },
            SynopsisConfig::Reservoir {
                capacity: 16,
                seed: 99,
            },
        ];
        // Deterministic pseudo-random values; tag = arrival index.
        let points: Vec<(u64, i64)> = (0..200u64)
            .map(|i| (i, ((i * 2654435761) % 100) as i64))
            .collect();
        for cfg in configs {
            let mut single = cfg.build_mergeable(1).unwrap();
            for &(tag, v) in &points {
                single.insert_tagged(&[v], tag).unwrap();
            }
            let mut parts: Vec<Synopsis> =
                (0..3).map(|_| cfg.build_mergeable(1).unwrap()).collect();
            for &(tag, v) in &points {
                // Skewed partition, deliberately unlike round-robin.
                let p = if v < 50 { 0 } else { (tag % 2 + 1) as usize };
                parts[p].insert_tagged(&[v], tag).unwrap();
            }
            let mut merged = parts.remove(0);
            for p in &parts {
                merged.merge_from(p).unwrap();
            }
            merged.seal();
            single.seal();
            assert_eq!(merged, single, "{}", cfg.label());
        }
    }

    #[test]
    fn merge_rejects_unsupported_and_mismatched_kinds() {
        let w = SynopsisConfig::Wavelet {
            budget: 16,
            domain: 128,
        };
        assert!(!w.supports_merge());
        assert!(w.build_mergeable(1).is_err());
        let a = SynopsisConfig::AdaptiveSparse {
            base_width: 1,
            max_cells: 8,
        };
        assert!(!a.supports_merge());
        assert!(a.build_mergeable(1).is_err());
        let mut wa = w.build(1).unwrap();
        let wb = w.build(1).unwrap();
        assert!(wa.merge_from(&wb).is_err());
        let mut s = SynopsisConfig::default_sparse().build(1).unwrap();
        assert!(s.merge_from(&wb).is_err());
        assert!(SynopsisConfig::default_sparse().supports_merge());
    }

    #[test]
    fn mergeable_reservoir_demands_tags_and_matching_seeds() {
        let cfg = SynopsisConfig::Reservoir {
            capacity: 4,
            seed: 1,
        };
        let mut r = cfg.build_mergeable(1).unwrap();
        assert!(r.insert(&[1]).is_err(), "untagged insert must be rejected");
        r.insert_tagged(&[1], 0).unwrap();
        let other = SynopsisConfig::Reservoir {
            capacity: 4,
            seed: 2,
        }
        .build_mergeable(1)
        .unwrap();
        assert!(r.merge_from(&other).is_err(), "seed mismatch must fail");
        // Algorithm R samples (untagged mode) cannot merge.
        let mut plain = cfg.build(1).unwrap();
        plain.insert(&[1]).unwrap();
        let plain2 = cfg.build(1).unwrap();
        assert!(plain.merge_from(&plain2).is_err());
    }

    #[test]
    fn mhist_merge_requires_tags_and_thawed_operands() {
        let cfg = SynopsisConfig::MHist {
            max_buckets: 8,
            alignment: None,
        };
        let mut a = cfg.build(1).unwrap();
        a.insert(&[1]).unwrap(); // untagged
        let b = cfg.build(1).unwrap();
        assert!(a.merge_from(&b).is_err(), "untagged points cannot merge");
        let mut c = cfg.build_mergeable(1).unwrap();
        c.insert_tagged(&[1], 0).unwrap();
        let mut d = cfg.build_mergeable(1).unwrap();
        d.insert_tagged(&[2], 1).unwrap();
        d.seal();
        assert!(c.merge_from(&d).is_err(), "frozen operand cannot merge");
    }

    #[test]
    fn project_and_select_dispatch() {
        for cfg in all_configs() {
            let mut s = cfg.build(2).unwrap();
            s.insert(&[1, 10]).unwrap();
            s.insert(&[2, 20]).unwrap();
            s.seal();
            let p = s.project(&[0]).unwrap();
            assert_eq!(p.dims(), 1, "{}", cfg.label());
            let f = s.select_range(0, 2, 2).unwrap();
            assert!(f.total_mass() <= 2.0);
        }
    }
}
