//! The memory-bounded adaptive sparse histogram.
//!
//! The paper's summarize-only baseline has its "synopsis data
//! structure tuned to handle the highest observed data rate" (§7.1) —
//! a static choice. The *adaptive* alternative tunes itself: start at
//! a fine grid, and whenever the number of occupied cells exceeds the
//! configured budget, coarsen the grid by 2× (mass-conserving, see
//! [`SparseHist::coarsen`]). Under light shedding the synopsis stays
//! near-lossless; under a heavy burst it degrades resolution instead
//! of memory.
//!
//! Widths evolve as `base × 2^k`, so two adaptive synopses that have
//! coarsened differently can always be *harmonized* — the finer one
//! coarsened to the coarser width — before a binary operation;
//! [`crate::Synopsis`]'s operators do this automatically.

use dt_types::{DtError, DtResult};

use crate::sparse::SparseHist;

/// A sparse histogram that halves its resolution whenever it would
/// exceed a cell budget.
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptiveSparse {
    hist: SparseHist,
    max_cells: usize,
}

impl AdaptiveSparse {
    /// An adaptive histogram over `dims` dimensions starting at
    /// `base_width` and never exceeding `max_cells` occupied cells.
    pub fn new(dims: usize, base_width: i64, max_cells: usize) -> DtResult<Self> {
        if max_cells == 0 {
            return Err(DtError::synopsis("cell budget must be >= 1"));
        }
        Ok(AdaptiveSparse {
            hist: SparseHist::new(dims, base_width)?,
            max_cells,
        })
    }

    /// Number of dimensions.
    pub fn dims(&self) -> usize {
        self.hist.dims()
    }

    /// The configured cell budget.
    pub fn max_cells(&self) -> usize {
        self.max_cells
    }

    /// The current (possibly coarsened) cell width.
    pub fn current_width(&self) -> i64 {
        self.hist.cell_width()
    }

    /// Total mass.
    pub fn total_mass(&self) -> f64 {
        self.hist.total_mass()
    }

    /// True if nothing has been inserted.
    pub fn is_empty(&self) -> bool {
        self.hist.is_empty()
    }

    /// Occupied cells (≤ `max_cells` after every insert).
    pub fn num_cells(&self) -> usize {
        self.hist.num_cells()
    }

    /// Insert one tuple, coarsening as needed to respect the budget.
    pub fn insert(&mut self, point: &[i64]) -> DtResult<()> {
        self.hist.insert(point)?;
        while self.hist.num_cells() > self.max_cells {
            self.hist = self.hist.coarsen(2)?;
        }
        Ok(())
    }

    /// Does the point land in an occupied cell? (Synergistic-policy
    /// hook.)
    pub fn covers(&self, point: &[i64]) -> bool {
        self.hist.covers(point)
    }

    /// The underlying plain histogram (for lowering into the shared
    /// relational operations).
    pub fn as_sparse(&self) -> &SparseHist {
        &self.hist
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_zero_budget() {
        assert!(AdaptiveSparse::new(1, 1, 0).is_err());
    }

    #[test]
    fn stays_lossless_under_budget() {
        let mut a = AdaptiveSparse::new(1, 1, 100).unwrap();
        for v in 0..50 {
            a.insert(&[v]).unwrap();
        }
        assert_eq!(a.current_width(), 1, "no coarsening needed");
        assert_eq!(a.num_cells(), 50);
        assert_eq!(a.total_mass(), 50.0);
    }

    #[test]
    fn coarsens_under_pressure_and_conserves_mass() {
        let mut a = AdaptiveSparse::new(1, 1, 16).unwrap();
        for v in 0..100 {
            a.insert(&[v]).unwrap();
        }
        assert!(a.num_cells() <= 16, "{}", a.num_cells());
        assert!(a.current_width() > 1, "must have coarsened");
        // Widths evolve as powers of two times the base.
        assert!(a.current_width().count_ones() == 1);
        assert_eq!(a.total_mass(), 100.0);
    }

    #[test]
    fn budget_of_one_degenerates_to_a_counter() {
        let mut a = AdaptiveSparse::new(1, 1, 1).unwrap();
        for v in [1i64, 50, 99, 3] {
            a.insert(&[v]).unwrap();
        }
        assert_eq!(a.num_cells(), 1);
        assert_eq!(a.total_mass(), 4.0);
    }

    #[test]
    fn two_dimensional_budgets() {
        let mut a = AdaptiveSparse::new(2, 1, 25).unwrap();
        for x in 0..20 {
            for y in 0..20 {
                a.insert(&[x, y]).unwrap();
            }
        }
        assert!(a.num_cells() <= 25);
        assert_eq!(a.total_mass(), 400.0);
    }

    #[test]
    fn covers_tracks_current_grid() {
        let mut a = AdaptiveSparse::new(1, 1, 2).unwrap();
        a.insert(&[0]).unwrap();
        a.insert(&[10]).unwrap();
        a.insert(&[20]).unwrap(); // forces coarsening
                                  // After coarsening, wide cells cover neighbours of inserted
                                  // values too.
        assert!(a.covers(&[0]));
        let w = a.current_width();
        assert!(w >= 2);
        assert!(a.covers(&[1]) || w == 1);
    }
}
