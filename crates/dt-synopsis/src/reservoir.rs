//! Reservoir-sample synopses.
//!
//! The paper's §8.1 lists "additional types of synopsis data
//! structures" as future work; a uniform sample is the natural first
//! candidate and doubles as an ablation baseline (`A1` in DESIGN.md).
//! A sample supports every relational operation the shadow plan needs,
//! but joining two *independent* samples famously underestimates join
//! results (Chaudhuri et al., cited in the paper's related work) — the
//! ablation bench makes that visible.
//!
//! A fresh reservoir ingests tuples with classic Algorithm R; each
//! retained row then represents `seen / kept` source tuples. The
//! relational operations produce *frozen weighted samples* — plain
//! weighted row sets that are no longer sampled into.

use dt_types::{DtError, DtResult};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Deterministic 64-bit mix (splitmix64 finalizer) mapping an arrival
/// tag to a sampling priority.
fn priority_of(seed: u64, tag: u64) -> u64 {
    let mut z = seed ^ tag.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A uniform reservoir sample with deterministic (seeded) eviction.
#[derive(Debug, Clone)]
pub struct ReservoirSample {
    dims: usize,
    capacity: usize,
    /// `(row, weight)`. While sampling, weights are 1 and the scale
    /// factor `seen / rows.len()` is applied at read time; after a
    /// relational operation, weights are explicit and `seen` equals
    /// their sum.
    rows: Vec<(Box<[i64]>, f64)>,
    /// Total source mass represented.
    seen: f64,
    /// `true` while Algorithm R is still running.
    sampling: bool,
    rng: ChaCha8Rng,
    /// RNG seed, kept so mergeable samples can check compatibility.
    seed: u64,
    /// `Some` switches the sample to *mergeable bottom-k* mode: each
    /// tagged insert gets the deterministic priority
    /// `splitmix64(seed, tag)`, and the sample retains the `capacity`
    /// rows with the smallest `(priority, tag)` — a simple random
    /// sample without replacement whose content is a pure function of
    /// the inserted `(row, tag)` *set*, independent of insertion order
    /// and of how inserts were partitioned across shards. The vector
    /// holds the retained `(priority, tag)` keys sorted ascending,
    /// parallel to `rows`.
    keys: Option<Vec<(u64, u64)>>,
}

impl ReservoirSample {
    /// A reservoir over `dims` dimensions holding at most `capacity`
    /// rows, with a deterministic seed.
    pub fn new(dims: usize, capacity: usize, seed: u64) -> DtResult<Self> {
        if capacity == 0 {
            return Err(DtError::synopsis("reservoir capacity must be >= 1"));
        }
        Ok(ReservoirSample {
            dims,
            capacity,
            rows: Vec::new(),
            seen: 0.0,
            sampling: true,
            rng: ChaCha8Rng::seed_from_u64(seed),
            seed,
            keys: None,
        })
    }

    /// A mergeable bottom-k sample (see the `keys` field docs): every
    /// insert must carry an arrival tag, and two samples built with
    /// the same capacity and seed merge exactly via
    /// [`ReservoirSample::merge_from`].
    pub fn new_mergeable(dims: usize, capacity: usize, seed: u64) -> DtResult<Self> {
        let mut s = Self::new(dims, capacity, seed)?;
        s.keys = Some(Vec::new());
        Ok(s)
    }

    /// A frozen weighted sample (the output form of relational ops).
    fn from_weighted(dims: usize, capacity: usize, rows: Vec<(Box<[i64]>, f64)>) -> Self {
        let seen = rows.iter().map(|(_, w)| w).sum();
        ReservoirSample {
            dims,
            capacity,
            rows,
            seen,
            sampling: false,
            rng: ChaCha8Rng::seed_from_u64(0),
            seed: 0,
            keys: None,
        }
    }

    /// Number of dimensions.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Number of retained rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Estimated total source mass (`COUNT(*)`).
    pub fn total_mass(&self) -> f64 {
        self.seen
    }

    /// True if nothing has been seen.
    pub fn is_empty(&self) -> bool {
        self.seen == 0.0
    }

    /// Insert one tuple (Algorithm R). Errors if this sample is the
    /// frozen output of a relational operation, or is in mergeable
    /// bottom-k mode (which needs a tag — use
    /// [`ReservoirSample::insert_tagged`]).
    pub fn insert(&mut self, point: &[i64]) -> DtResult<()> {
        if self.keys.is_some() {
            return Err(DtError::synopsis(
                "mergeable reservoir requires tagged inserts",
            ));
        }
        if !self.sampling {
            return Err(DtError::synopsis("cannot insert into a frozen sample"));
        }
        if point.len() != self.dims {
            return Err(DtError::synopsis(format!(
                "point arity {} != sample dims {}",
                point.len(),
                self.dims
            )));
        }
        self.seen += 1.0;
        if self.rows.len() < self.capacity {
            self.rows.push((point.into(), 1.0));
        } else {
            let j = self.rng.gen_range(0..self.seen as u64) as usize;
            if j < self.capacity {
                self.rows[j] = (point.into(), 1.0);
            }
        }
        Ok(())
    }

    /// Insert one tuple carrying an arrival tag. In mergeable bottom-k
    /// mode the tag determines the row's retention priority; in
    /// Algorithm R mode the tag is ignored and this is
    /// [`ReservoirSample::insert`].
    pub fn insert_tagged(&mut self, point: &[i64], tag: u64) -> DtResult<()> {
        if self.keys.is_none() {
            return self.insert(point);
        }
        if !self.sampling {
            return Err(DtError::synopsis("cannot insert into a frozen sample"));
        }
        if point.len() != self.dims {
            return Err(DtError::synopsis(format!(
                "point arity {} != sample dims {}",
                point.len(),
                self.dims
            )));
        }
        self.seen += 1.0;
        let key = (priority_of(self.seed, tag), tag);
        let keys = self.keys.as_mut().expect("checked above");
        if keys.len() == self.capacity {
            match keys.last() {
                Some(&last) if key < last => {
                    keys.pop();
                    self.rows.pop();
                }
                _ => return Ok(()),
            }
        }
        let at = keys.partition_point(|&k| k < key);
        keys.insert(at, key);
        self.rows.insert(at, (point.into(), 1.0));
        Ok(())
    }

    /// Fold another mergeable bottom-k sample into this one: the union
    /// of the retained sets, re-truncated to the `capacity` smallest
    /// `(priority, tag)` keys.
    ///
    /// Because each partial sample retains its shard's bottom
    /// `capacity` keys, the union is a superset of the global bottom
    /// `capacity` — so the merged sample equals what a single sample
    /// over the whole stream would retain, regardless of partitioning.
    ///
    /// # Errors
    /// Errors unless both samples are unfrozen, mergeable, and share
    /// dims, capacity, and seed.
    pub fn merge_from(&mut self, other: &ReservoirSample) -> DtResult<()> {
        if self.keys.is_none() || other.keys.is_none() {
            return Err(DtError::synopsis(
                "reservoir merge requires mergeable (tagged bottom-k) samples",
            ));
        }
        if !self.sampling || !other.sampling {
            return Err(DtError::synopsis("cannot merge frozen samples"));
        }
        if self.dims != other.dims || self.capacity != other.capacity || self.seed != other.seed {
            return Err(DtError::synopsis(
                "cannot merge reservoirs with different dims, capacity, or seed",
            ));
        }
        // One retained entry: the (priority, tag) sort key + its row.
        type KeyedRow = ((u64, u64), (Box<[i64]>, f64));
        let ours = std::mem::take(self.keys.as_mut().expect("checked above"));
        let theirs = other.keys.as_ref().expect("checked above");
        let our_rows = std::mem::take(&mut self.rows);
        let mut all: Vec<KeyedRow> = ours
            .into_iter()
            .zip(our_rows)
            .chain(theirs.iter().copied().zip(other.rows.iter().cloned()))
            .collect();
        all.sort_unstable_by_key(|&(k, _)| k);
        all.truncate(self.capacity);
        let (keys, rows) = all.into_iter().unzip();
        self.keys = Some(keys);
        self.rows = rows;
        self.seen += other.seen;
        Ok(())
    }

    /// The retained rows with their effective (scaled) weights.
    pub fn weighted_rows(&self) -> impl Iterator<Item = (&[i64], f64)> {
        let scale = if self.sampling && !self.rows.is_empty() {
            self.seen / self.rows.len() as f64
        } else {
            1.0
        };
        self.rows.iter().map(move |(r, w)| (r.as_ref(), w * scale))
    }

    /// π onto the given dimensions.
    pub fn project(&self, keep: &[usize]) -> DtResult<ReservoirSample> {
        for &d in keep {
            if d >= self.dims {
                return Err(DtError::synopsis("projection dim out of range"));
            }
        }
        let rows = self
            .weighted_rows()
            .map(|(r, w)| {
                let nr: Box<[i64]> = keep.iter().map(|&d| r[d]).collect();
                (nr, w)
            })
            .collect();
        Ok(ReservoirSample::from_weighted(
            keep.len(),
            self.capacity,
            rows,
        ))
    }

    /// `UNION ALL`: concatenate weighted rows.
    pub fn union_all(&self, other: &ReservoirSample) -> DtResult<ReservoirSample> {
        if self.dims != other.dims {
            return Err(DtError::synopsis("union of samples with different dims"));
        }
        let mut rows: Vec<(Box<[i64]>, f64)> =
            self.weighted_rows().map(|(r, w)| (r.into(), w)).collect();
        rows.extend(other.weighted_rows().map(|(r, w)| (Box::from(r), w)));
        Ok(ReservoirSample::from_weighted(
            self.dims,
            self.capacity.max(other.capacity),
            rows,
        ))
    }

    /// Equijoin on `self_dim = other_dim`: hash join of the retained
    /// rows, weights multiplying. (Samples of joins ≠ joins of
    /// samples; expect underestimation — see module docs.)
    pub fn equijoin(
        &self,
        self_dim: usize,
        other: &ReservoirSample,
        other_dim: usize,
    ) -> DtResult<ReservoirSample> {
        if self_dim >= self.dims || other_dim >= other.dims {
            return Err(DtError::synopsis("join dimension out of range"));
        }
        let mut index: dt_types::FxHashMap<i64, Vec<(&[i64], f64)>> = Default::default();
        for (r, w) in other.weighted_rows() {
            index.entry(r[other_dim]).or_default().push((r, w));
        }
        let mut rows: Vec<(Box<[i64]>, f64)> = Vec::new();
        for (r, w) in self.weighted_rows() {
            if let Some(matches) = index.get(&r[self_dim]) {
                for &(t, tw) in matches {
                    let mut nr = Vec::with_capacity(self.dims + other.dims - 1);
                    nr.extend_from_slice(r);
                    for (d, &v) in t.iter().enumerate() {
                        if d != other_dim {
                            nr.push(v);
                        }
                    }
                    // Each matched pair represents w · tw source pairs,
                    // but only `1/max(scale)`… the unbiased correction
                    // for sampled joins is an open problem; we use the
                    // plain product, documenting the bias.
                    rows.push((nr.into_boxed_slice(), w * tw / self.join_correction(other)));
                }
            }
        }
        Ok(ReservoirSample::from_weighted(
            self.dims + other.dims - 1,
            self.capacity.max(other.capacity),
            rows,
        ))
    }

    /// Correction factor for sampled joins.
    ///
    /// If both operands are unfrozen unit-weight reservoirs, each
    /// *matching pair* of sampled rows was observed with probability
    /// `(kept_s/seen_s)·(kept_t/seen_t)`, and the plain product of
    /// effective weights `(seen_s/kept_s)·(seen_t/kept_t)` is exactly
    /// the Horvitz–Thompson estimate — correction 1. The hook exists so
    /// alternative estimators can be slotted in; it currently returns 1.
    fn join_correction(&self, _other: &ReservoirSample) -> f64 {
        1.0
    }

    /// Is an identical row already retained? Used by the synergistic
    /// drop policy.
    pub fn covers(&self, point: &[i64]) -> bool {
        point.len() == self.dims && self.rows.iter().any(|(r, _)| r.as_ref() == point)
    }

    /// Cross product ×: row pairs concatenate, weights multiply.
    pub fn cross(&self, other: &ReservoirSample) -> DtResult<ReservoirSample> {
        let mut rows: Vec<(Box<[i64]>, f64)> = Vec::new();
        for (r, w) in self.weighted_rows() {
            for (t, tw) in other.weighted_rows() {
                let mut nr = Vec::with_capacity(self.dims + other.dims);
                nr.extend_from_slice(r);
                nr.extend_from_slice(t);
                rows.push((nr.into_boxed_slice(), w * tw));
            }
        }
        Ok(ReservoirSample::from_weighted(
            self.dims + other.dims,
            self.capacity.max(other.capacity),
            rows,
        ))
    }

    /// σ on an inclusive integer range.
    pub fn select_range(&self, dim: usize, lo: i64, hi: i64) -> DtResult<ReservoirSample> {
        if dim >= self.dims {
            return Err(DtError::synopsis("selection dim out of range"));
        }
        let rows = self
            .weighted_rows()
            .filter(|(r, _)| r[dim] >= lo && r[dim] <= hi)
            .map(|(r, w)| (Box::from(r), w))
            .collect();
        Ok(ReservoirSample::from_weighted(
            self.dims,
            self.capacity,
            rows,
        ))
    }

    /// Estimated per-value counts along one dimension.
    pub fn group_counts(&self, dim: usize) -> DtResult<dt_types::FxHashMap<i64, f64>> {
        if dim >= self.dims {
            return Err(DtError::synopsis("group dim out of range"));
        }
        let mut out = dt_types::FxHashMap::default();
        for (r, w) in self.weighted_rows() {
            *out.entry(r[dim]).or_insert(0.0) += w;
        }
        Ok(out)
    }

    /// Estimated per-group `SUM(sum_dim)`.
    pub fn group_sums(
        &self,
        group_dim: usize,
        sum_dim: usize,
    ) -> DtResult<dt_types::FxHashMap<i64, f64>> {
        if group_dim >= self.dims || sum_dim >= self.dims {
            return Err(DtError::synopsis("group/sum dim out of range"));
        }
        let mut out = dt_types::FxHashMap::default();
        for (r, w) in self.weighted_rows() {
            *out.entry(r[group_dim]).or_insert(0.0) += w * r[sum_dim] as f64;
        }
        Ok(out)
    }
}

impl PartialEq for ReservoirSample {
    fn eq(&self, other: &Self) -> bool {
        self.dims == other.dims
            && self.capacity == other.capacity
            && self.rows == other.rows
            && self.seen == other.seen
            && self.sampling == other.sampling
            && self.keys == other.keys
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample1(cap: usize, points: &[i64]) -> ReservoirSample {
        let mut s = ReservoirSample::new(1, cap, 42).unwrap();
        for &p in points {
            s.insert(&[p]).unwrap();
        }
        s
    }

    #[test]
    fn rejects_bad_config_and_arity() {
        assert!(ReservoirSample::new(1, 0, 0).is_err());
        let mut s = ReservoirSample::new(2, 4, 0).unwrap();
        assert!(s.insert(&[1]).is_err());
        assert!(s.insert(&[1, 2]).is_ok());
    }

    #[test]
    fn under_capacity_keeps_everything() {
        let s = sample1(10, &[1, 2, 3]);
        assert_eq!(s.num_rows(), 3);
        assert_eq!(s.total_mass(), 3.0);
        // Scale 1: weights are exact.
        let total: f64 = s.weighted_rows().map(|(_, w)| w).sum();
        assert!((total - 3.0).abs() < 1e-12);
    }

    #[test]
    fn over_capacity_bounds_rows_and_scales() {
        let pts: Vec<i64> = (0..1000).collect();
        let s = sample1(50, &pts);
        assert_eq!(s.num_rows(), 50);
        assert_eq!(s.total_mass(), 1000.0);
        let total: f64 = s.weighted_rows().map(|(_, w)| w).sum();
        assert!((total - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = sample1(5, &(0..100).collect::<Vec<_>>());
        let b = sample1(5, &(0..100).collect::<Vec<_>>());
        assert_eq!(a, b);
    }

    #[test]
    fn group_counts_estimate_uniform() {
        // 200 tuples of each of 4 values; with a large sample the
        // per-value estimates should be near 200.
        let mut pts = Vec::new();
        for v in 0..4 {
            pts.extend(std::iter::repeat_n(v, 200));
        }
        let s = sample1(400, &pts);
        let g = s.group_counts(0).unwrap();
        for v in 0..4 {
            let est = g.get(&v).copied().unwrap_or(0.0);
            assert!((est - 200.0).abs() < 80.0, "value {v}: {est}");
        }
    }

    #[test]
    fn equijoin_exact_when_unsampled() {
        let a = sample1(100, &[1, 1, 2]);
        let b = sample1(100, &[1, 3]);
        let j = a.equijoin(0, &b, 0).unwrap();
        assert!((j.total_mass() - 2.0).abs() < 1e-12);
        assert_eq!(j.dims(), 1);
    }

    #[test]
    fn union_concatenates_weighted() {
        let a = sample1(10, &[1]);
        let b = sample1(10, &[2, 3]);
        let u = a.union_all(&b).unwrap();
        assert!((u.total_mass() - 3.0).abs() < 1e-12);
        let c = ReservoirSample::new(2, 4, 0).unwrap();
        assert!(a.union_all(&c).is_err());
    }

    #[test]
    fn frozen_sample_rejects_insert() {
        let a = sample1(10, &[1]);
        let mut p = a.project(&[0]).unwrap();
        assert!(p.insert(&[5]).is_err());
    }

    #[test]
    fn select_range_filters() {
        let s = sample1(100, &[1, 5, 9]);
        let f = s.select_range(0, 2, 8).unwrap();
        assert!((f.total_mass() - 1.0).abs() < 1e-12);
        assert!(s.select_range(1, 0, 1).is_err());
    }

    #[test]
    fn group_sums() {
        let mut s = ReservoirSample::new(2, 10, 0).unwrap();
        s.insert(&[7, 40]).unwrap();
        s.insert(&[7, 2]).unwrap();
        let sums = s.group_sums(0, 1).unwrap();
        assert!((sums[&7] - 42.0).abs() < 1e-12);
    }

    #[test]
    fn project_reorders() {
        let mut s = ReservoirSample::new(2, 10, 0).unwrap();
        s.insert(&[1, 2]).unwrap();
        let p = s.project(&[1, 0]).unwrap();
        let rows: Vec<_> = p.weighted_rows().collect();
        assert_eq!(rows[0].0, &[2, 1]);
        assert!(s.project(&[9]).is_err());
    }
}
