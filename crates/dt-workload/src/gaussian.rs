//! Clamped integer Gaussian sampling (Box–Muller over a seeded RNG).

use rand::Rng;

/// A Gaussian over the integer domain `[lo, hi]`: samples are drawn
/// from `N(mean, std²)`, rounded, and clamped to the domain (the
/// paper's attribute values "ranged from 1 to 100, inclusive").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Gaussian {
    /// Mean of the underlying normal.
    pub mean: f64,
    /// Standard deviation.
    pub std: f64,
    /// Inclusive domain lower bound.
    pub lo: i64,
    /// Inclusive domain upper bound.
    pub hi: i64,
}

impl Gaussian {
    /// The paper's default: mean 50, σ 15, domain 1..=100.
    pub fn paper_default() -> Self {
        Gaussian {
            mean: 50.0,
            std: 15.0,
            lo: 1,
            hi: 100,
        }
    }

    /// The same shape with a shifted mean — the "burst" distribution
    /// of §6.2.2.
    pub fn shifted(mean: f64) -> Self {
        Gaussian {
            mean,
            ..Self::paper_default()
        }
    }

    /// Draw one integer sample.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> i64 {
        // Box–Muller; one normal per call keeps the code simple (the
        // discarded second variate is not worth caching here).
        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        let v = (self.mean + self.std * z).round() as i64;
        v.clamp(self.lo, self.hi)
    }

    /// Draw a row of `arity` independent samples.
    pub fn sample_row<R: Rng>(&self, rng: &mut R, arity: usize) -> Vec<i64> {
        (0..arity).map(|_| self.sample(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn samples_stay_in_domain() {
        let g = Gaussian::paper_default();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = g.sample(&mut rng);
            assert!((1..=100).contains(&v));
        }
    }

    #[test]
    fn mean_and_spread_are_plausible() {
        let g = Gaussian::paper_default();
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let n = 20_000;
        let samples: Vec<i64> = (0..n).map(|_| g.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<i64>() as f64 / n as f64;
        assert!((mean - 50.0).abs() < 1.0, "mean {mean}");
        let var = samples
            .iter()
            .map(|&v| (v as f64 - mean).powi(2))
            .sum::<f64>()
            / n as f64;
        let std = var.sqrt();
        assert!((std - 15.0).abs() < 1.5, "std {std}");
    }

    #[test]
    fn shifted_mean_shifts_samples() {
        let a = Gaussian::paper_default();
        let b = Gaussian::shifted(20.0);
        let mut r1 = ChaCha8Rng::seed_from_u64(3);
        let mut r2 = ChaCha8Rng::seed_from_u64(3);
        let n = 5_000;
        let ma = (0..n).map(|_| a.sample(&mut r1)).sum::<i64>() as f64 / n as f64;
        let mb = (0..n).map(|_| b.sample(&mut r2)).sum::<i64>() as f64 / n as f64;
        assert!(ma - mb > 20.0, "{ma} vs {mb}");
    }

    #[test]
    fn deterministic_per_seed() {
        let g = Gaussian::paper_default();
        let mut r1 = ChaCha8Rng::seed_from_u64(9);
        let mut r2 = ChaCha8Rng::seed_from_u64(9);
        for _ in 0..100 {
            assert_eq!(g.sample(&mut r1), g.sample(&mut r2));
        }
    }

    #[test]
    fn sample_row_arity() {
        let g = Gaussian::paper_default();
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        assert_eq!(g.sample_row(&mut rng, 3).len(), 3);
        assert!(g.sample_row(&mut rng, 0).is_empty());
    }
}
