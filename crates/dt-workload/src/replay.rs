//! Wall-clock trace replay.
//!
//! The simulation consumes arrival sequences instantly, interpreting
//! tuple timestamps as *virtual* time. A server ingests at real
//! rates: [`replay`] walks an arrival sequence and sleeps on a
//! [`Clock`] until each tuple's timestamp before delivering it, so a
//! `dt-workload` trace plays back with its recorded inter-arrival
//! gaps — the paper's "replay off of disk … with arbitrary time
//! delays" (§6.2.2), against a real clock.
//!
//! With a [`dt_types::MonotonicClock`] this paces deliveries in real
//! time (a burst recorded at 100× base rate arrives at 100× base
//! rate). With a [`dt_types::VirtualClock`] the *test* controls the
//! pace: deliveries block until the clock is advanced past their
//! timestamps, which makes multi-threaded server tests deterministic.

use dt_types::{Clock, DtResult, Tuple};

/// Deliver `arrivals` in order, sleeping until each tuple's timestamp
/// on `clock` first. Stops at the first delivery error. Returns the
/// number of tuples delivered.
pub fn replay<'a, I, F>(arrivals: I, clock: &dyn Clock, mut deliver: F) -> DtResult<u64>
where
    I: IntoIterator<Item = &'a (usize, Tuple)>,
    F: FnMut(usize, &Tuple) -> DtResult<()>,
{
    let mut n = 0;
    for (stream, tuple) in arrivals {
        // Clocks may wake early; re-check until the deadline passes.
        while clock.now() < tuple.ts {
            clock.sleep_until(tuple.ts);
        }
        deliver(*stream, tuple)?;
        n += 1;
    }
    Ok(n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dt_types::{DtError, MonotonicClock, Row, Timestamp, VirtualClock};
    use std::sync::Arc;

    fn arrivals(times_us: &[u64]) -> Vec<(usize, Tuple)> {
        times_us
            .iter()
            .enumerate()
            .map(|(i, &us)| {
                (
                    i % 2,
                    Tuple::new(Row::from_ints(&[i as i64]), Timestamp::from_micros(us)),
                )
            })
            .collect()
    }

    #[test]
    fn monotonic_replay_paces_deliveries() {
        let seq = arrivals(&[0, 2_000, 4_000]);
        let clock = MonotonicClock::new();
        let mut seen = Vec::new();
        let n = replay(&seq, &clock, |s, t| {
            // Delivery must not run ahead of the tuple's timestamp.
            assert!(clock.now() >= t.ts);
            seen.push((s, t.row[0].as_i64().unwrap()));
            Ok(())
        })
        .unwrap();
        assert_eq!(n, 3);
        assert_eq!(seen, vec![(0, 0), (1, 1), (0, 2)]);
        assert!(clock.now() >= Timestamp::from_micros(4_000));
    }

    #[test]
    fn virtual_replay_blocks_until_the_test_advances() {
        let seq = arrivals(&[0, 1_000_000]);
        let clock = Arc::new(VirtualClock::new());
        let c2 = Arc::clone(&clock);
        let h = std::thread::spawn(move || {
            let mut count = 0u64;
            replay(&seq, &*c2, |_, _| {
                count += 1;
                Ok(())
            })
            .unwrap();
            count
        });
        // The second tuple can only arrive once the clock reaches 1 s.
        std::thread::sleep(std::time::Duration::from_millis(20));
        clock.set(Timestamp::from_secs(1));
        assert_eq!(h.join().expect("replayer"), 2);
    }

    #[test]
    fn delivery_errors_stop_the_replay() {
        let seq = arrivals(&[0, 0, 0]);
        let clock = MonotonicClock::new();
        let mut n = 0;
        let err = replay(&seq, &clock, |_, _| {
            n += 1;
            if n == 2 {
                Err(DtError::config("downstream refused"))
            } else {
                Ok(())
            }
        });
        assert!(err.is_err());
        assert_eq!(n, 2);
    }
}
