//! Full experiment workloads: per-stream Gaussian tuples delivered by
//! an arrival process.

use dt_types::{DtError, DtResult, Row, Tuple, Value};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::arrival::{ArrivalModel, ArrivalProcess};
use crate::gaussian::Gaussian;

/// One stream's shape.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamSpec {
    /// Number of integer columns.
    pub arity: usize,
    /// Distribution of non-burst tuples.
    pub base_dist: Gaussian,
    /// Distribution of burst tuples (§6.2.2 draws bursts from a
    /// Gaussian with a different mean).
    pub burst_dist: Gaussian,
}

impl StreamSpec {
    /// A stream whose burst data matches its base data.
    pub fn uniform_bursts(arity: usize, dist: Gaussian) -> Self {
        StreamSpec {
            arity,
            base_dist: dist,
            burst_dist: dist,
        }
    }

    /// The paper's bursty setting: base at mean 50, bursts shifted to
    /// mean 20.
    pub fn paper_bursty(arity: usize) -> Self {
        StreamSpec {
            arity,
            base_dist: Gaussian::paper_default(),
            burst_dist: Gaussian::shifted(20.0),
        }
    }
}

/// A complete, seeded workload description.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadConfig {
    /// One spec per stream; arrivals round-robin across streams so
    /// each receives an equal share (paper §6.2.1: "equal numbers of
    /// random tuples for each of the streams").
    pub streams: Vec<StreamSpec>,
    /// Arrival-time process (shared clock across streams).
    pub arrival: ArrivalModel,
    /// Total tuples across all streams.
    pub total_tuples: usize,
    /// Master seed: both values and burst timing derive from it.
    pub seed: u64,
}

impl WorkloadConfig {
    /// The paper's 3-stream experiment workload (`R(a)`, `S(b,c)`,
    /// `T(d)`) at a constant rate.
    pub fn paper_constant(rate: f64, total_tuples: usize, seed: u64) -> Self {
        let g = Gaussian::paper_default();
        WorkloadConfig {
            streams: vec![
                StreamSpec::uniform_bursts(1, g),
                StreamSpec::uniform_bursts(2, g),
                StreamSpec::uniform_bursts(1, g),
            ],
            arrival: ArrivalModel::Constant { rate },
            total_tuples,
            seed,
        }
    }

    /// The paper's 3-stream bursty workload (burst data shifted).
    pub fn paper_bursty(base_rate: f64, total_tuples: usize, seed: u64) -> Self {
        WorkloadConfig {
            streams: vec![
                StreamSpec::paper_bursty(1),
                StreamSpec::paper_bursty(2),
                StreamSpec::paper_bursty(1),
            ],
            arrival: ArrivalModel::paper_bursty(base_rate),
            total_tuples,
            seed,
        }
    }
}

/// Generate the time-ordered arrival sequence for a workload.
///
/// ```
/// use dt_workload::{generate, WorkloadConfig};
///
/// // The paper's bursty 3-stream workload at base rate 100 t/s.
/// let arrivals = generate(&WorkloadConfig::paper_bursty(100.0, 1_000, 42))?;
/// assert_eq!(arrivals.len(), 1_000);
/// assert!(arrivals.windows(2).all(|w| w[0].1.ts <= w[1].1.ts));
/// # Ok::<(), dt_types::DtError>(())
/// ```
pub fn generate(cfg: &WorkloadConfig) -> DtResult<Vec<(usize, Tuple)>> {
    if cfg.streams.is_empty() {
        return Err(DtError::config("workload has no streams"));
    }
    let mut process = ArrivalProcess::new(cfg.arrival)?;
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
    let mut out = Vec::with_capacity(cfg.total_tuples);
    for i in 0..cfg.total_tuples {
        let (ts, in_burst) = process.next_arrival(&mut rng);
        // Round-robin with a random phase offset per round so one
        // stream doesn't always see the first tuple of a burst.
        let stream = if cfg.streams.len() == 1 {
            0
        } else if i % cfg.streams.len() == 0 {
            rng.gen_range(0..cfg.streams.len())
        } else {
            (out.last().map(|&(s, _)| s).unwrap_or(0) + 1) % cfg.streams.len()
        };
        let spec = &cfg.streams[stream];
        let dist = if in_burst {
            &spec.burst_dist
        } else {
            &spec.base_dist
        };
        // Sample straight into the row: same RNG draw order as
        // `sample_row`, minus the intermediate i64 vector.
        let row = Row::new(
            (0..spec.arity)
                .map(|_| Value::Int(dist.sample(&mut rng)))
                .collect(),
        );
        out.push((stream, Tuple::new(row, ts)));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dt_types::Timestamp;

    #[test]
    fn generates_requested_count_in_time_order() {
        let cfg = WorkloadConfig::paper_constant(1000.0, 3000, 42);
        let arrivals = generate(&cfg).unwrap();
        assert_eq!(arrivals.len(), 3000);
        let mut last = Timestamp::ZERO;
        for (_, t) in &arrivals {
            assert!(t.ts >= last);
            last = t.ts;
        }
    }

    #[test]
    fn streams_get_roughly_equal_shares() {
        let cfg = WorkloadConfig::paper_constant(1000.0, 3000, 1);
        let arrivals = generate(&cfg).unwrap();
        let mut counts = [0usize; 3];
        for (s, _) in &arrivals {
            counts[*s] += 1;
        }
        for &c in &counts {
            assert!((c as i64 - 1000).abs() < 50, "{counts:?}");
        }
    }

    #[test]
    fn arities_match_specs() {
        let cfg = WorkloadConfig::paper_constant(1000.0, 300, 2);
        for (s, t) in generate(&cfg).unwrap() {
            let expected = cfg.streams[s].arity;
            assert_eq!(t.arity(), expected);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = WorkloadConfig::paper_bursty(100.0, 1000, 9);
        assert_eq!(generate(&cfg).unwrap(), generate(&cfg).unwrap());
        let cfg2 = WorkloadConfig {
            seed: 10,
            ..cfg.clone()
        };
        assert_ne!(generate(&cfg).unwrap(), generate(&cfg2).unwrap());
    }

    #[test]
    fn bursty_values_shift_during_bursts() {
        // With bursts drawn from mean 20 and base from mean 50, the
        // overall mean must sit well below 50.
        let cfg = WorkloadConfig::paper_bursty(100.0, 20_000, 3);
        let arrivals = generate(&cfg).unwrap();
        let vals: Vec<i64> = arrivals
            .iter()
            .flat_map(|(_, t)| t.row.values().iter().filter_map(|v| v.as_i64()))
            .collect();
        let mean = vals.iter().sum::<i64>() as f64 / vals.len() as f64;
        assert!(mean < 40.0, "mean {mean}");
        assert!(mean > 20.0, "mean {mean}");
    }

    #[test]
    fn empty_streams_rejected() {
        let cfg = WorkloadConfig {
            streams: vec![],
            arrival: ArrivalModel::Constant { rate: 1.0 },
            total_tuples: 10,
            seed: 0,
        };
        assert!(generate(&cfg).is_err());
    }
}
