//! Trace replay: driving the pipeline from recorded arrivals instead
//! of synthetic generators.
//!
//! The paper replays tuples "off of disk … with arbitrary time delays
//! between tuple deliveries" (§6.2.2). This module supplies the same
//! capability for recorded data: a plain-text trace format, a parser,
//! and a writer, so captured or externally produced workloads can be
//! fed through `dtsim` or the library.
//!
//! Format: one arrival per line,
//!
//! ```text
//! <timestamp_micros>,<stream_index>,<v1>[,<v2>…]
//! # comments and blank lines are ignored
//! ```
//!
//! Timestamps must be non-decreasing (the pipeline's requirement);
//! [`parse_trace`] validates this up front so errors surface with line
//! numbers instead of mid-run.

use std::fmt::Write as _;

use dt_types::{DtError, DtResult, Row, Timestamp, Tuple};

/// Parse a trace document into a time-ordered arrival sequence.
pub fn parse_trace(text: &str) -> DtResult<Vec<(usize, Tuple)>> {
    let mut out = Vec::new();
    let mut last = Timestamp::ZERO;
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let err = |msg: String| DtError::Parse {
            message: msg,
            position: (lineno + 1) as u32,
            line: (lineno + 1).min(u16::MAX as usize) as u16,
            column: 1,
        };
        let mut parts = line.split(',');
        let ts: u64 = parts
            .next()
            .ok_or_else(|| err("missing timestamp".into()))?
            .trim()
            .parse()
            .map_err(|e| err(format!("bad timestamp: {e}")))?;
        let stream: usize = parts
            .next()
            .ok_or_else(|| err("missing stream index".into()))?
            .trim()
            .parse()
            .map_err(|e| err(format!("bad stream index: {e}")))?;
        let values: Vec<i64> = parts
            .map(|p| {
                p.trim()
                    .parse()
                    .map_err(|e| err(format!("bad value '{}': {e}", p.trim())))
            })
            .collect::<DtResult<_>>()?;
        if values.is_empty() {
            return Err(err("arrival has no values".into()));
        }
        let ts = Timestamp::from_micros(ts);
        if ts < last {
            return Err(err(format!(
                "timestamps must be non-decreasing ({} after {})",
                ts, last
            )));
        }
        last = ts;
        out.push((stream, Tuple::new(Row::from_ints(&values), ts)));
    }
    Ok(out)
}

/// Serialize an arrival sequence into the trace format (inverse of
/// [`parse_trace`]). Errors if any value is not an integer.
pub fn write_trace(arrivals: &[(usize, Tuple)]) -> DtResult<String> {
    let mut out = String::with_capacity(arrivals.len() * 16);
    for (stream, tuple) in arrivals {
        write!(out, "{},{}", tuple.ts.micros(), stream).expect("string write");
        for v in tuple.row.values() {
            let i = v.as_i64().ok_or_else(|| {
                DtError::config(format!("trace values must be integers, got {v}"))
            })?;
            write!(out, ",{i}").expect("string write");
        }
        out.push('\n');
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{generate, WorkloadConfig};

    #[test]
    fn parses_simple_trace() {
        let trace = "\
# a comment
1000,0,5
2000,1,6,7

3000,0,8
";
        let arrivals = parse_trace(trace).unwrap();
        assert_eq!(arrivals.len(), 3);
        assert_eq!(arrivals[0].0, 0);
        assert_eq!(arrivals[0].1.ts, Timestamp::from_micros(1000));
        assert_eq!(arrivals[1].1.row, Row::from_ints(&[6, 7]));
    }

    #[test]
    fn roundtrips_generated_workloads() {
        let cfg = WorkloadConfig::paper_bursty(100.0, 500, 3);
        let arrivals = generate(&cfg).unwrap();
        let text = write_trace(&arrivals).unwrap();
        let parsed = parse_trace(&text).unwrap();
        assert_eq!(arrivals, parsed);
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(parse_trace("oops").is_err());
        assert!(parse_trace("1000").is_err());
        assert!(parse_trace("1000,0").is_err());
        assert!(parse_trace("1000,x,5").is_err());
        assert!(parse_trace("1000,0,x").is_err());
        assert!(parse_trace("-5,0,1").is_err());
    }

    #[test]
    fn rejects_time_travel_with_line_number() {
        let err = parse_trace("2000,0,1\n1000,0,2").unwrap_err();
        match err {
            DtError::Parse {
                position, message, ..
            } => {
                assert_eq!(position, 2);
                assert!(message.contains("non-decreasing"));
            }
            other => panic!("{other}"),
        }
    }

    #[test]
    fn write_rejects_non_integer_values() {
        use dt_types::Value;
        let arrivals = vec![(
            0usize,
            Tuple::new(Row::new(vec![Value::Str("x".into())]), Timestamp::ZERO),
        )];
        assert!(write_trace(&arrivals).is_err());
    }
}
