//! Arrival-time processes: constant-rate and two-state Markov bursty.

use dt_types::{DtError, DtResult, Timestamp, VDuration};
use rand::Rng;

/// How inter-arrival gaps are produced.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalModel {
    /// Fixed rate: every gap is `1/rate`.
    Constant {
        /// Tuples per second.
        rate: f64,
    },
    /// The paper's §6.2.2 two-state Markov model: tuples arrive at
    /// `base_rate` outside bursts and `base_rate × burst_multiplier`
    /// inside; state switches are decided per tuple so that the
    /// expected burst length is `mean_burst_len` tuples and a
    /// `burst_fraction` of all tuples fall inside bursts.
    Bursty {
        /// Non-burst tuples per second.
        base_rate: f64,
        /// Burst speed-up (the paper uses 100).
        burst_multiplier: f64,
        /// Fraction of tuples that are burst tuples (the paper: 0.6).
        burst_fraction: f64,
        /// Expected tuples per burst (the paper: 200).
        mean_burst_len: f64,
    },
}

impl ArrivalModel {
    /// The paper's bursty parameters at a given base rate.
    pub fn paper_bursty(base_rate: f64) -> Self {
        ArrivalModel::Bursty {
            base_rate,
            burst_multiplier: 100.0,
            burst_fraction: 0.6,
            mean_burst_len: 200.0,
        }
    }

    /// The peak instantaneous rate (the x-axis of Fig. 9).
    pub fn peak_rate(&self) -> f64 {
        match *self {
            ArrivalModel::Constant { rate } => rate,
            ArrivalModel::Bursty {
                base_rate,
                burst_multiplier,
                ..
            } => base_rate * burst_multiplier,
        }
    }

    /// The long-run average rate.
    pub fn mean_rate(&self) -> f64 {
        match *self {
            ArrivalModel::Constant { rate } => rate,
            ArrivalModel::Bursty {
                base_rate,
                burst_multiplier,
                burst_fraction,
                ..
            } => {
                // A fraction `f` of tuples take gaps of 1/(m·r), the
                // rest 1/r: mean gap = f/(m·r) + (1−f)/r.
                let mean_gap = burst_fraction / (burst_multiplier * base_rate)
                    + (1.0 - burst_fraction) / base_rate;
                1.0 / mean_gap
            }
        }
    }

    fn validate(&self) -> DtResult<()> {
        let ok = match *self {
            ArrivalModel::Constant { rate } => rate.is_finite() && rate > 0.0,
            ArrivalModel::Bursty {
                base_rate,
                burst_multiplier,
                burst_fraction,
                mean_burst_len,
            } => {
                base_rate.is_finite()
                    && base_rate > 0.0
                    && burst_multiplier >= 1.0
                    && (0.0..1.0).contains(&burst_fraction)
                    && mean_burst_len >= 1.0
            }
        };
        if ok {
            Ok(())
        } else {
            Err(DtError::config(format!("invalid arrival model {self:?}")))
        }
    }
}

/// A running arrival process: produces the timestamp of each
/// successive tuple and reports whether it is a burst tuple.
#[derive(Debug, Clone)]
pub struct ArrivalProcess {
    model: ArrivalModel,
    clock: Timestamp,
    in_burst: bool,
    /// Per-tuple probability of leaving the burst state.
    p_exit_burst: f64,
    /// Per-tuple probability of entering the burst state.
    p_enter_burst: f64,
}

impl ArrivalProcess {
    /// Start a process at virtual time zero.
    pub fn new(model: ArrivalModel) -> DtResult<Self> {
        model.validate()?;
        let (p_exit, p_enter) = match model {
            ArrivalModel::Constant { .. } => (0.0, 0.0),
            ArrivalModel::Bursty {
                burst_fraction,
                mean_burst_len,
                ..
            } => {
                // Expected burst run = mean_burst_len tuples
                //   ⇒ exit probability 1/mean_burst_len.
                // Tuple-stationary burst fraction f = B/(B+N) with
                // N = expected non-burst run ⇒ N = B(1−f)/f.
                let b = mean_burst_len;
                let n = b * (1.0 - burst_fraction) / burst_fraction.max(1e-12);
                (1.0 / b, 1.0 / n.max(1.0))
            }
        };
        Ok(ArrivalProcess {
            model,
            clock: Timestamp::ZERO,
            in_burst: false,
            p_exit_burst: p_exit,
            p_enter_burst: p_enter,
        })
    }

    /// Produce the next arrival: `(timestamp, is_burst_tuple)`.
    pub fn next_arrival<R: Rng>(&mut self, rng: &mut R) -> (Timestamp, bool) {
        let gap = match self.model {
            ArrivalModel::Constant { rate } => VDuration::from_secs_f64(1.0 / rate),
            ArrivalModel::Bursty {
                base_rate,
                burst_multiplier,
                ..
            } => {
                // Switch state first, then emit at the state's rate.
                if self.in_burst {
                    if rng.gen_bool(self.p_exit_burst) {
                        self.in_burst = false;
                    }
                } else if rng.gen_bool(self.p_enter_burst) {
                    self.in_burst = true;
                }
                let rate = if self.in_burst {
                    base_rate * burst_multiplier
                } else {
                    base_rate
                };
                VDuration::from_secs_f64(1.0 / rate)
            }
        };
        // Gaps below clock resolution still advance time by 1 µs so
        // arrivals stay strictly ordered.
        let gap = if gap.is_zero() {
            VDuration::from_micros(1)
        } else {
            gap
        };
        self.clock += gap;
        (self.clock, self.in_burst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn constant_rate_is_even() {
        let mut p = ArrivalProcess::new(ArrivalModel::Constant { rate: 1000.0 }).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let (t1, b1) = p.next_arrival(&mut rng);
        let (t2, _) = p.next_arrival(&mut rng);
        assert!(!b1);
        assert_eq!(t1, Timestamp::from_micros(1000));
        assert_eq!(t2 - t1, VDuration::from_millis(1));
    }

    #[test]
    fn bursty_hits_paper_parameters() {
        let mut p = ArrivalProcess::new(ArrivalModel::paper_bursty(100.0)).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let n = 200_000;
        let mut burst_tuples = 0u64;
        let mut bursts = 0u64;
        let mut prev_burst = false;
        let mut last = Timestamp::ZERO;
        for _ in 0..n {
            let (t, b) = p.next_arrival(&mut rng);
            assert!(t > last, "strictly increasing");
            last = t;
            if b {
                burst_tuples += 1;
                if !prev_burst {
                    bursts += 1;
                }
            }
            prev_burst = b;
        }
        let frac = burst_tuples as f64 / n as f64;
        assert!((frac - 0.6).abs() < 0.05, "burst fraction {frac}");
        let mean_len = burst_tuples as f64 / bursts as f64;
        assert!(
            (mean_len - 200.0).abs() < 30.0,
            "mean burst length {mean_len}"
        );
    }

    #[test]
    fn bursty_mean_rate_formula() {
        let m = ArrivalModel::paper_bursty(100.0);
        // mean gap = 0.6/(100·100) + 0.4/100 = 0.00006 + 0.004 = 0.00406 s
        assert!((m.mean_rate() - 1.0 / 0.00406).abs() < 1e-6);
        assert_eq!(m.peak_rate(), 10_000.0);
        let c = ArrivalModel::Constant { rate: 5.0 };
        assert_eq!(c.mean_rate(), 5.0);
        assert_eq!(c.peak_rate(), 5.0);
    }

    #[test]
    fn invalid_models_rejected() {
        assert!(ArrivalProcess::new(ArrivalModel::Constant { rate: 0.0 }).is_err());
        assert!(ArrivalProcess::new(ArrivalModel::Constant { rate: -1.0 }).is_err());
        assert!(ArrivalProcess::new(ArrivalModel::Bursty {
            base_rate: 10.0,
            burst_multiplier: 0.5,
            burst_fraction: 0.6,
            mean_burst_len: 200.0
        })
        .is_err());
        assert!(ArrivalProcess::new(ArrivalModel::Bursty {
            base_rate: 10.0,
            burst_multiplier: 100.0,
            burst_fraction: 1.5,
            mean_burst_len: 200.0
        })
        .is_err());
    }
}
