//! Workload generation for the Data Triage experiments (paper §6.2).
//!
//! The paper's experiments generate equal numbers of random tuples per
//! stream from Gaussian distributions over the integer domain
//! `1..=100`, delivered either at a constant rate or through a
//! two-state Markov bursty process in which:
//!
//! * 60 % of all tuples belong to bursts,
//! * the expected burst length is 200 tuples,
//! * burst-state data arrives 100× as fast as non-burst data, and
//! * burst tuples are drawn from a *different* Gaussian than non-burst
//!   tuples (this is what makes Fig. 9 interesting: drop-only loses
//!   precisely the unusual data).
//!
//! [`generate`] produces a time-ordered arrival sequence
//! `(stream index, Tuple)` from a fully seeded [`WorkloadConfig`].

pub mod arrival;
pub mod gaussian;
pub mod replay;
pub mod scenario;
pub mod trace;

pub use arrival::{ArrivalModel, ArrivalProcess};
pub use gaussian::Gaussian;
pub use replay::replay;
pub use scenario::{generate, StreamSpec, WorkloadConfig};
pub use trace::{parse_trace, write_trace};
