//! Shadow-plan construction: Equation 14 over synopsis leaves.

use dt_query::{CmpOp, QueryPlan};
use dt_types::{DtError, DtResult};

/// Which partition of a stream's window a leaf refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Part {
    /// Tuples the engine processed exactly.
    Kept,
    /// Tuples the triage queue shed.
    Dropped,
    /// `Kept ∪ Dropped` — the whole window.
    All,
}

/// A shadow-plan expression over per-stream synopses.
///
/// Dimensions: a leaf over stream `i` has one dimension per column of
/// the stream's schema, in schema order. A join keeps the left
/// operand's dimensions followed by the right operand's with the right
/// join dimension removed (its coordinate equals the left join
/// dimension's). [`ShadowQuery::column_dims`] records where each
/// combined-row column of the original query ended up.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SynPlan {
    /// A per-stream synopsis.
    Leaf {
        /// Stream position in the query plan's FROM order.
        stream: usize,
        /// Which partition.
        part: Part,
    },
    /// Equijoin of two sub-plans on one dimension pair, or a cross
    /// product when `on` is `None`.
    Join {
        /// Left input.
        left: Box<SynPlan>,
        /// Right input.
        right: Box<SynPlan>,
        /// `(left dim, right dim)`; `None` = cross product.
        on: Option<(usize, usize)>,
    },
    /// Multiset union of the sub-plans' estimates.
    Union(Vec<SynPlan>),
    /// Range selection on one dimension (inclusive bounds).
    Select {
        /// Input plan.
        input: Box<SynPlan>,
        /// Dimension to constrain.
        dim: usize,
        /// Inclusive lower bound.
        lo: i64,
        /// Inclusive upper bound.
        hi: i64,
    },
}

impl SynPlan {
    /// Number of `Join` nodes in the tree — the cost driver the
    /// paper's Fig. 6 microbenchmark measures.
    pub fn join_count(&self) -> usize {
        match self {
            SynPlan::Leaf { .. } => 0,
            SynPlan::Join { left, right, .. } => 1 + left.join_count() + right.join_count(),
            SynPlan::Union(parts) => parts.iter().map(SynPlan::join_count).sum(),
            SynPlan::Select { input, .. } => input.join_count(),
        }
    }

    /// Render as an SQL-ish string resembling the paper's Fig. 5 view
    /// definition, for logging and docs.
    pub fn display_sql(&self, stream_names: &[String]) -> String {
        match self {
            SynPlan::Leaf { stream, part } => {
                let name = stream_names
                    .get(*stream)
                    .cloned()
                    .unwrap_or_else(|| format!("s{stream}"));
                let suffix = match part {
                    Part::Kept => "kept_syn",
                    Part::Dropped => "dropped_syn",
                    Part::All => "all_syn",
                };
                format!("{name}_{suffix}")
            }
            SynPlan::Join { left, right, on } => match on {
                Some((l, r)) => format!(
                    "equijoin({}, d{l}, {}, d{r})",
                    left.display_sql(stream_names),
                    right.display_sql(stream_names)
                ),
                None => format!(
                    "cross({}, {})",
                    left.display_sql(stream_names),
                    right.display_sql(stream_names)
                ),
            },
            SynPlan::Union(parts) => {
                let inner: Vec<String> =
                    parts.iter().map(|p| p.display_sql(stream_names)).collect();
                format!("union_all({})", inner.join(", "))
            }
            SynPlan::Select { input, dim, lo, hi } => format!(
                "select({}, d{dim} in [{lo}, {hi}])",
                input.display_sql(stream_names)
            ),
        }
    }
}

/// The rewritten query: a shadow plan plus the bookkeeping needed to
/// interpret its output synopsis.
#[derive(Debug, Clone, PartialEq)]
pub struct ShadowQuery {
    /// Estimates `Q_dropped`.
    pub plan: SynPlan,
    /// For each combined-row column of the original query, the
    /// dimension of the shadow plan's output synopsis that carries it.
    /// Columns equated by a join share a dimension.
    pub column_dims: Vec<usize>,
    /// Number of input streams.
    pub num_streams: usize,
    /// Propagated `SELECT DISTINCT` flag (deferred projection: the
    /// shadow plan never projects; the merge stage handles duplicate
    /// semantics).
    pub distinct: bool,
}

/// Sentinel bounds for open-ended range selections (kept well inside
/// `i64` so downstream cell arithmetic cannot overflow).
const RANGE_MIN: i64 = i64::MIN / 4;
/// See [`RANGE_MIN`].
const RANGE_MAX: i64 = i64::MAX / 4;

/// Rewrite a planned query into its dropped-channel shadow query
/// (paper Eq. 14 plus pushed-down selections).
///
/// ```
/// use dt_query::{parse_select, Catalog, Planner};
/// use dt_rewrite::rewrite_dropped;
/// use dt_types::{DataType, Schema};
///
/// let mut catalog = Catalog::new();
/// catalog.add_stream("R", Schema::from_pairs(&[("a", DataType::Int)]));
/// catalog.add_stream("S", Schema::from_pairs(&[("b", DataType::Int)]));
/// let plan = Planner::new(&catalog)
///     .plan(&parse_select("SELECT a, COUNT(*) FROM R, S WHERE R.a = S.b GROUP BY a")?)?;
/// let shadow = rewrite_dropped(&plan)?;
/// // Eq. 14 for n = 2: D_R ⋈ A_S  ∪  K_R ⋈ D_S.
/// assert_eq!(shadow.plan.join_count(), 2);
/// assert_eq!(
///     shadow.plan.display_sql(&["R".into(), "S".into()]),
///     "union_all(equijoin(R_dropped_syn, d0, S_all_syn, d0), \
///      equijoin(R_kept_syn, d0, S_dropped_syn, d0))",
/// );
/// # Ok::<(), dt_types::DtError>(())
/// ```
///
/// # Errors
/// * a join step with more than one equality condition (the synopsis
///   algebra joins on a single dimension pair, as in the paper);
/// * a residual predicate that is not `column <op> integer-literal`
///   (not expressible over histograms).
pub fn rewrite_dropped(plan: &QueryPlan) -> DtResult<ShadowQuery> {
    let n = plan.streams.len();

    // Per-step join condition in (left synopsis dim, right local dim)
    // form, and the running column→dim map.
    let mut column_dims: Vec<usize> = Vec::with_capacity(plan.combined_schema.arity());
    // Stream 0 contributes its columns as dims 0..arity.
    for d in 0..plan.streams[0].schema.arity() {
        column_dims.push(d);
    }
    let mut next_dim = plan.streams[0].schema.arity();
    // steps[j] = Option<(left_dim, right_local_dim)>, None = cross.
    let mut steps: Vec<Option<(usize, usize)>> = Vec::with_capacity(n.saturating_sub(1));
    for (j, conds) in plan.join_graph.steps.iter().enumerate() {
        let stream = j + 1;
        let on = match conds.as_slice() {
            [] => None,
            [(global_left, local_right)] => Some((column_dims[*global_left], *local_right)),
            more => {
                return Err(DtError::rewrite(format!(
                    "join step {j} has {} equality conditions; shadow plans join \
                     synopses on a single dimension pair",
                    more.len()
                )))
            }
        };
        steps.push(on);
        // Extend the column→dim map with the new stream's columns.
        for local in 0..plan.streams[stream].schema.arity() {
            match on {
                Some((left_dim, local_right)) if local == local_right => {
                    // Collapsed onto the left join dimension.
                    column_dims.push(left_dim);
                }
                _ => {
                    column_dims.push(next_dim);
                    next_dim += 1;
                }
            }
        }
    }

    // One Eq.-14 summand: streams 0..i are Kept, i is Dropped, the
    // rest are All.
    let summand = |i: usize| -> SynPlan {
        let part_of = |s: usize| {
            use std::cmp::Ordering::*;
            match s.cmp(&i) {
                Less => Part::Kept,
                Equal => Part::Dropped,
                Greater => Part::All,
            }
        };
        let mut expr = SynPlan::Leaf {
            stream: 0,
            part: part_of(0),
        };
        for s in 1..n {
            expr = SynPlan::Join {
                left: Box::new(expr),
                right: Box::new(SynPlan::Leaf {
                    stream: s,
                    part: part_of(s),
                }),
                on: steps[s - 1],
            };
        }
        expr
    };

    let mut plan_expr = if n == 1 {
        summand(0)
    } else {
        SynPlan::Union((0..n).map(summand).collect())
    };

    // Push residual predicates as top-level range selections.
    for pred in &plan.residual {
        let Some((col, op, v)) = pred.as_column_vs_int() else {
            return Err(DtError::rewrite(
                "residual predicate not expressible over synopses \
                 (only column <op> integer literal is supported)",
            ));
        };
        let dim = column_dims[col];
        let select = |input: SynPlan, lo: i64, hi: i64| SynPlan::Select {
            input: Box::new(input),
            dim,
            lo,
            hi,
        };
        plan_expr = match op {
            CmpOp::Eq => select(plan_expr, v, v),
            CmpOp::Lt => select(plan_expr, RANGE_MIN, v - 1),
            CmpOp::Le => select(plan_expr, RANGE_MIN, v),
            CmpOp::Gt => select(plan_expr, v + 1, RANGE_MAX),
            CmpOp::Ge => select(plan_expr, v, RANGE_MAX),
            CmpOp::Neq => SynPlan::Union(vec![
                select(plan_expr.clone(), RANGE_MIN, v - 1),
                select(plan_expr, v + 1, RANGE_MAX),
            ]),
        };
    }

    Ok(ShadowQuery {
        plan: plan_expr,
        column_dims,
        num_streams: n,
        distinct: plan.distinct,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dt_query::{parse_select, Catalog, Planner};
    use dt_types::{DataType, Schema};

    fn paper_catalog() -> Catalog {
        let mut c = Catalog::new();
        c.add_stream("R", Schema::from_pairs(&[("a", DataType::Int)]));
        c.add_stream(
            "S",
            Schema::from_pairs(&[("b", DataType::Int), ("c", DataType::Int)]),
        );
        c.add_stream("T", Schema::from_pairs(&[("d", DataType::Int)]));
        c
    }

    fn shadow(sql: &str) -> DtResult<ShadowQuery> {
        let stmt = parse_select(sql)?;
        let plan = Planner::new(&paper_catalog()).plan(&stmt)?;
        rewrite_dropped(&plan)
    }

    const PAPER_QUERY: &str = "SELECT a, COUNT(*) as count FROM R,S,T \
        WHERE R.a = S.b AND S.c = T.d GROUP BY a";

    #[test]
    fn paper_query_produces_three_summands() {
        let sq = shadow(PAPER_QUERY).unwrap();
        assert_eq!(sq.num_streams, 3);
        match &sq.plan {
            SynPlan::Union(parts) => {
                assert_eq!(parts.len(), 3);
                // First summand: D_R ⋈ A_S ⋈ A_T.
                let sql = parts[0].display_sql(&["R".into(), "S".into(), "T".into()]);
                assert_eq!(
                    sql,
                    // After R⋈S the dims are (a≡b)=d0, c=d1, so the
                    // second join's left dimension is d1.
                    "equijoin(equijoin(R_dropped_syn, d0, S_all_syn, d0), d1, T_all_syn, d0)"
                );
                // Second: K_R ⋈ D_S ⋈ A_T.
                let sql = parts[1].display_sql(&["R".into(), "S".into(), "T".into()]);
                assert!(sql.contains("R_kept_syn") && sql.contains("S_dropped_syn"));
                assert!(sql.contains("T_all_syn"));
                // Third: K_R ⋈ K_S ⋈ D_T.
                let sql = parts[2].display_sql(&["R".into(), "S".into(), "T".into()]);
                assert!(sql.contains("R_kept_syn") && sql.contains("S_kept_syn"));
                assert!(sql.contains("T_dropped_syn"));
            }
            other => panic!("expected Union, got {other:?}"),
        }
        // Dim layout: R.a=S.b collapse to dim 0; S.c dim 1; T.d
        // collapses onto S.c.
        assert_eq!(sq.column_dims, vec![0, 0, 1, 1]);
        // 2 joins per summand × 3 summands.
        assert_eq!(sq.plan.join_count(), 6);
    }

    #[test]
    fn single_stream_is_just_the_dropped_leaf() {
        let sq = shadow("SELECT a FROM R").unwrap();
        assert_eq!(
            sq.plan,
            SynPlan::Leaf {
                stream: 0,
                part: Part::Dropped
            }
        );
        assert_eq!(sq.column_dims, vec![0]);
    }

    #[test]
    fn cross_join_uses_cross_nodes() {
        let sq = shadow("SELECT * FROM R, T").unwrap();
        match &sq.plan {
            SynPlan::Union(parts) => {
                assert_eq!(parts.len(), 2);
                match &parts[0] {
                    SynPlan::Join { on, .. } => assert_eq!(*on, None),
                    other => panic!("{other:?}"),
                }
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(sq.column_dims, vec![0, 1]);
    }

    #[test]
    fn literal_predicates_become_selects() {
        let sq = shadow("SELECT a FROM R WHERE R.a > 5").unwrap();
        match &sq.plan {
            SynPlan::Select { dim, lo, hi, .. } => {
                assert_eq!(*dim, 0);
                assert_eq!(*lo, 6);
                assert!(*hi > 1_000_000);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn neq_becomes_union_of_ranges() {
        let sq = shadow("SELECT a FROM R WHERE R.a <> 5").unwrap();
        match &sq.plan {
            SynPlan::Union(parts) => {
                assert_eq!(parts.len(), 2);
                match (&parts[0], &parts[1]) {
                    (SynPlan::Select { hi: h1, .. }, SynPlan::Select { lo: l2, .. }) => {
                        assert_eq!(*h1, 4);
                        assert_eq!(*l2, 6);
                    }
                    other => panic!("{other:?}"),
                }
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn eq_and_le_bounds() {
        match shadow("SELECT a FROM R WHERE R.a = 7").unwrap().plan {
            SynPlan::Select { lo, hi, .. } => {
                assert_eq!((lo, hi), (7, 7));
            }
            other => panic!("{other:?}"),
        }
        match shadow("SELECT a FROM R WHERE R.a <= 7").unwrap().plan {
            SynPlan::Select { lo, hi, .. } => {
                assert!(lo < -1_000_000);
                assert_eq!(hi, 7);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn distinct_flag_propagates() {
        assert!(shadow("SELECT DISTINCT a FROM R").unwrap().distinct);
        assert!(!shadow("SELECT a FROM R").unwrap().distinct);
    }

    #[test]
    fn multi_condition_join_step_rejected() {
        let err = shadow("SELECT * FROM S, S z WHERE S.b = z.b AND S.c = z.c").unwrap_err();
        assert!(err.to_string().contains("single dimension pair"), "{err}");
    }

    #[test]
    fn column_vs_column_residual_rejected() {
        let err = shadow("SELECT * FROM S WHERE S.b < S.c").unwrap_err();
        assert!(err.to_string().contains("not expressible"), "{err}");
    }
}
