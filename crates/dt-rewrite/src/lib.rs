//! The Data Triage query rewrite (paper §4 and §5.1).
//!
//! Given a planned continuous query `Q ≡ R₁ ⋈ … ⋈ Rₙ` (with residual
//! selections and grouped aggregation on top), this crate derives the
//! **shadow query**: an expression over per-stream `Kept` / `Dropped`
//! synopsis leaves that estimates `Q_dropped` — the result tuples the
//! system lost to load shedding. The expansion is Equation 14 of the
//! paper (the drop-only specialization of the differential operators
//! of §3, whose correctness `dt-algebra` machine-checks):
//!
//! ```text
//! Q_dropped = Σᵢ  K₁ ⋈ … ⋈ Kᵢ₋₁ ⋈ Dᵢ ⋈ Aᵢ₊₁ ⋈ … ⋈ Aₙ ,   Aⱼ = Kⱼ ∪ Dⱼ
//! ```
//!
//! The paper implements this as generated `CREATE VIEW` SQL over a
//! synopsis UDT (its Fig. 5); our analog is the [`SynPlan`] expression
//! tree plus the [`evaluate`] interpreter over [`dt_synopsis::Synopsis`]
//! values.
//!
//! Residual single-column comparisons against integer literals are
//! pushed into the shadow plan as synopsis range selections (the
//! differential selection operator σ̂ applies σ to every channel, so a
//! top-level selection is sound). `SELECT DISTINCT` uses the deferred
//! projection strategy the paper sketches in §8.1: the shadow plan
//! performs no mid-plan projection at all, and the final projection
//! (plus duplicate handling) happens in the merge stage.

pub mod evaluator;
pub mod shadow;

pub use evaluator::{evaluate, evaluate_ref};
pub use shadow::{rewrite_dropped, Part, ShadowQuery, SynPlan};
