//! Interpreting shadow plans over concrete synopses.
//!
//! This is the runtime half of the paper's §5.1 object-relational
//! implementation: where TelegraphCQ evaluated the generated view SQL
//! (its Fig. 5) through user-defined functions on a synopsis datatype,
//! we walk the [`SynPlan`] tree and apply the corresponding
//! [`Synopsis`] operations.

use dt_synopsis::Synopsis;
use dt_types::{DtError, DtResult};

use crate::shadow::{Part, SynPlan};

/// Evaluate a shadow plan against per-stream kept/dropped synopses.
///
/// `kept[i]` / `dropped[i]` must be the sealed window synopses of
/// stream `i` (in the query plan's FROM order), all built with the
/// same [`dt_synopsis::SynopsisConfig`].
pub fn evaluate(plan: &SynPlan, kept: &[Synopsis], dropped: &[Synopsis]) -> DtResult<Synopsis> {
    let kept: Vec<&Synopsis> = kept.iter().collect();
    let dropped: Vec<&Synopsis> = dropped.iter().collect();
    evaluate_ref(plan, &kept, &dropped)
}

/// Borrowing variant of [`evaluate`]: callers holding shared
/// per-stream synopses (one pair per physical stream, read by every
/// query's shadow plan) pass references and skip cloning whole
/// histograms per evaluation.
pub fn evaluate_ref(
    plan: &SynPlan,
    kept: &[&Synopsis],
    dropped: &[&Synopsis],
) -> DtResult<Synopsis> {
    if kept.len() != dropped.len() {
        return Err(DtError::rewrite(format!(
            "kept/dropped synopsis count mismatch: {} vs {}",
            kept.len(),
            dropped.len()
        )));
    }
    Ok(match eval(plan, kept, dropped)? {
        Eval::Ref(s) => s.clone(),
        Eval::Owned(s) => s,
    })
}

/// An evaluation result that is cloned only when it must be: `Leaf`
/// nodes hand back borrows of the sealed window synopses (every
/// combining operator reads its operands by reference), so whole
/// histograms are copied only when the *entire* plan is one bare leaf.
enum Eval<'a> {
    Ref(&'a Synopsis),
    Owned(Synopsis),
}

impl Eval<'_> {
    fn as_ref(&self) -> &Synopsis {
        match self {
            Eval::Ref(s) => s,
            Eval::Owned(s) => s,
        }
    }
}

fn eval<'a>(plan: &SynPlan, kept: &[&'a Synopsis], dropped: &[&'a Synopsis]) -> DtResult<Eval<'a>> {
    match plan {
        SynPlan::Leaf { stream, part } => {
            let k = *kept.get(*stream).ok_or_else(|| {
                DtError::rewrite(format!("shadow plan references unknown stream {stream}"))
            })?;
            let d = dropped[*stream];
            match part {
                Part::Kept => Ok(Eval::Ref(k)),
                Part::Dropped => Ok(Eval::Ref(d)),
                Part::All => Ok(Eval::Owned(k.union_all(d)?)),
            }
        }
        SynPlan::Join { left, right, on } => {
            let l = eval(left, kept, dropped)?;
            let r = eval(right, kept, dropped)?;
            Ok(Eval::Owned(match on {
                Some((ld, rd)) => l.as_ref().equijoin(*ld, r.as_ref(), *rd)?,
                None => l.as_ref().cross(r.as_ref())?,
            }))
        }
        SynPlan::Union(parts) => {
            let mut iter = parts.iter();
            let first = iter
                .next()
                .ok_or_else(|| DtError::rewrite("empty union in shadow plan"))?;
            let mut acc = eval(first, kept, dropped)?;
            for p in iter {
                acc = Eval::Owned(acc.as_ref().union_all(eval(p, kept, dropped)?.as_ref())?);
            }
            Ok(acc)
        }
        SynPlan::Select { input, dim, lo, hi } => Ok(Eval::Owned(
            eval(input, kept, dropped)?
                .as_ref()
                .select_range(*dim, *lo, *hi)?,
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shadow::rewrite_dropped;
    use dt_query::{parse_select, Catalog, Planner};
    use dt_synopsis::SynopsisConfig;
    use dt_types::{DataType, Schema};

    fn paper_catalog() -> Catalog {
        let mut c = Catalog::new();
        c.add_stream("R", Schema::from_pairs(&[("a", DataType::Int)]));
        c.add_stream(
            "S",
            Schema::from_pairs(&[("b", DataType::Int), ("c", DataType::Int)]),
        );
        c.add_stream("T", Schema::from_pairs(&[("d", DataType::Int)]));
        c
    }

    fn build(cfg: &SynopsisConfig, dims: usize, pts: &[&[i64]]) -> Synopsis {
        let mut s = cfg.build(dims).unwrap();
        for p in pts {
            s.insert(p).unwrap();
        }
        s.seal();
        s
    }

    /// End-to-end: the paper's query, exact-resolution synopses, a
    /// hand-checkable drop pattern.
    #[test]
    fn paper_query_shadow_estimate_is_exact_at_w1() {
        let stmt = parse_select(
            "SELECT a, COUNT(*) as count FROM R,S,T \
             WHERE R.a = S.b AND S.c = T.d GROUP BY a",
        )
        .unwrap();
        let plan = Planner::new(&paper_catalog()).plan(&stmt).unwrap();
        let sq = rewrite_dropped(&plan).unwrap();

        let cfg = SynopsisConfig::Sparse { cell_width: 1 };
        // R: kept {1}, dropped {2}
        // S: kept {(1,7), (2,7)}, dropped {(1,8)}
        // T: kept {7}, dropped {8}
        let kept = vec![
            build(&cfg, 1, &[&[1]]),
            build(&cfg, 2, &[&[1, 7], &[2, 7]]),
            build(&cfg, 1, &[&[7]]),
        ];
        let dropped = vec![
            build(&cfg, 1, &[&[2]]),
            build(&cfg, 2, &[&[1, 8]]),
            build(&cfg, 1, &[&[8]]),
        ];
        // Full data: R={1,2}, S={(1,7),(2,7),(1,8)}, T={7,8}.
        // Q_all: (1,1,7,7), (2,2,7,7), (1,1,8,8) => per-a counts {1:2, 2:1}.
        // Q_kept: R{1} ⋈ S{(1,7),(2,7)} ⋈ T{7} => (1,1,7,7) => {1:1}.
        // Q_dropped should be {1:1, 2:1}.
        let est = evaluate(&sq.plan, &kept, &dropped).unwrap();
        assert!(
            (est.total_mass() - 2.0).abs() < 1e-9,
            "{}",
            est.total_mass()
        );
        let group_dim = sq.column_dims[plan.group_by[0]];
        let counts = est.group_counts(group_dim).unwrap();
        assert!((counts[&1] - 1.0).abs() < 1e-9);
        assert!((counts[&2] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn no_drops_estimates_zero() {
        let stmt = parse_select("SELECT a, COUNT(*) FROM R, S WHERE R.a = S.b GROUP BY a").unwrap();
        let plan = Planner::new(&paper_catalog()).plan(&stmt).unwrap();
        let sq = rewrite_dropped(&plan).unwrap();
        let cfg = SynopsisConfig::Sparse { cell_width: 1 };
        let kept = vec![build(&cfg, 1, &[&[1], &[2]]), build(&cfg, 2, &[&[1, 5]])];
        let dropped = vec![build(&cfg, 1, &[]), build(&cfg, 2, &[])];
        let est = evaluate(&sq.plan, &kept, &dropped).unwrap();
        assert_eq!(est.total_mass(), 0.0);
    }

    #[test]
    fn select_pushdown_filters_estimate() {
        let stmt = parse_select("SELECT a FROM R WHERE R.a > 5").unwrap();
        let plan = Planner::new(&paper_catalog()).plan(&stmt).unwrap();
        let sq = rewrite_dropped(&plan).unwrap();
        let cfg = SynopsisConfig::Sparse { cell_width: 1 };
        let kept = vec![build(&cfg, 1, &[&[1]])];
        let dropped = vec![build(&cfg, 1, &[&[3], &[7], &[9]])];
        let est = evaluate(&sq.plan, &kept, &dropped).unwrap();
        // Dropped tuples with a > 5: {7, 9}.
        assert!((est.total_mass() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn mismatched_lengths_rejected() {
        let plan = SynPlan::Leaf {
            stream: 0,
            part: Part::Kept,
        };
        let cfg = SynopsisConfig::Sparse { cell_width: 1 };
        let kept = vec![build(&cfg, 1, &[])];
        assert!(evaluate(&plan, &kept, &[]).is_err());
    }

    #[test]
    fn unknown_stream_rejected() {
        let plan = SynPlan::Leaf {
            stream: 5,
            part: Part::Kept,
        };
        let cfg = SynopsisConfig::Sparse { cell_width: 1 };
        let kept = vec![build(&cfg, 1, &[])];
        let dropped = vec![build(&cfg, 1, &[])];
        assert!(evaluate(&plan, &kept, &dropped).is_err());
    }
}
