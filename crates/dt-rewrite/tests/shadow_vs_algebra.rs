//! The keystone correctness test of the reproduction: evaluating the
//! rewritten shadow plan over *exact-resolution* synopses (sparse
//! histogram, cell width 1) must reproduce, group for group, the exact
//! `Q_dropped` computed by the multiset algebra's Eq.-14 expansion —
//! for random inputs and random drop patterns.
//!
//! This is the executable version of the paper's §4 correctness
//! argument, connecting all three layers: parser/planner → rewriter →
//! synopsis algebra, with `dt-algebra` as ground truth.

use dt_algebra::spj::{dropped_query, JoinSpec};
use dt_algebra::Relation;
use dt_query::{parse_select, Catalog, Planner};
use dt_rewrite::{evaluate, rewrite_dropped};
use dt_synopsis::{Synopsis, SynopsisConfig};
use dt_types::{DataType, Row, Schema};
use proptest::prelude::*;

fn paper_catalog() -> Catalog {
    let mut c = Catalog::new();
    c.add_stream("R", Schema::from_pairs(&[("a", DataType::Int)]));
    c.add_stream(
        "S",
        Schema::from_pairs(&[("b", DataType::Int), ("c", DataType::Int)]),
    );
    c.add_stream("T", Schema::from_pairs(&[("d", DataType::Int)]));
    c.add_stream("U", Schema::from_pairs(&[("e", DataType::Int)]));
    c
}

fn to_synopsis(points: &[Vec<i64>], dims: usize) -> Synopsis {
    let mut s = SynopsisConfig::Sparse { cell_width: 1 }
        .build(dims)
        .unwrap();
    for p in points {
        s.insert(p).unwrap();
    }
    s.seal();
    s
}

fn to_relation(points: &[Vec<i64>]) -> Relation {
    Relation::from_rows(points.iter().map(|p| Row::from_ints(p)))
}

/// `(kept, dropped)` point sets for one stream.
fn arb_partition(
    dims: usize,
    domain: i64,
    max: usize,
) -> impl Strategy<Value = (Vec<Vec<i64>>, Vec<Vec<i64>>)> {
    (
        prop::collection::vec(prop::collection::vec(0..domain, dims), 0..=max),
        prop::collection::vec(prop::collection::vec(0..domain, dims), 0..=max),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn shadow_plan_matches_exact_dropped_query(
        (rk, rd) in arb_partition(1, 5, 8),
        (sk, sd) in arb_partition(2, 5, 8),
        (tk, td) in arb_partition(1, 5, 8),
    ) {
        // Front half: SQL → plan → shadow plan.
        let stmt = parse_select(
            "SELECT a, COUNT(*) as count FROM R,S,T \
             WHERE R.a = S.b AND S.c = T.d GROUP BY a",
        ).unwrap();
        let plan = Planner::new(&paper_catalog()).plan(&stmt).unwrap();
        let sq = rewrite_dropped(&plan).unwrap();

        // Shadow estimate over exact-resolution synopses.
        let kept = vec![to_synopsis(&rk, 1), to_synopsis(&sk, 2), to_synopsis(&tk, 1)];
        let dropped = vec![to_synopsis(&rd, 1), to_synopsis(&sd, 2), to_synopsis(&td, 1)];
        let est = evaluate(&sq.plan, &kept, &dropped).unwrap();
        let group_dim = sq.column_dims[plan.group_by[0]];
        let est_counts = est.group_counts(group_dim).unwrap();

        // Ground truth via the exact algebra.
        let spec = JoinSpec { steps: vec![vec![(0, 0)], vec![(2, 0)]] };
        let inputs = vec![
            (to_relation(&rk), to_relation(&rd)),
            (to_relation(&sk), to_relation(&sd)),
            (to_relation(&tk), to_relation(&td)),
        ];
        let exact_dropped = dropped_query(&inputs, &spec);
        let exact_counts_rel = exact_dropped.project(&[0]);

        // Group-for-group equality.
        for (row, c) in exact_counts_rel.iter() {
            let v = row[0].as_i64().unwrap();
            let e = est_counts.get(&v).copied().unwrap_or(0.0);
            prop_assert!((e - c as f64).abs() < 1e-6,
                "group {v}: shadow {e} vs exact {c}");
        }
        // No spurious groups.
        for (&v, &e) in &est_counts {
            if e.abs() > 1e-6 {
                let c = exact_counts_rel.count(&Row::from_ints(&[v]));
                prop_assert!(c > 0, "spurious group {v} with mass {e}");
            }
        }
        // Total mass equality.
        prop_assert!((est.total_mass() - exact_dropped.len() as f64).abs() < 1e-6);
    }

    /// Four-way chain with *double* dimension collapse: T.d joins both
    /// S.c (as the right side) and U.e (as the left side), so three
    /// original columns share one synopsis dimension. Exactness at
    /// width 1 must survive the chained bookkeeping.
    #[test]
    fn four_way_chain_with_shared_dims_matches_exact(
        (rk, rd) in arb_partition(1, 4, 6),
        (sk, sd) in arb_partition(2, 4, 6),
        (tk, td) in arb_partition(1, 4, 6),
        (uk, ud) in arb_partition(1, 4, 6),
    ) {
        let stmt = parse_select(
            "SELECT a, COUNT(*) FROM R, S, T, U \
             WHERE R.a = S.b AND S.c = T.d AND T.d = U.e GROUP BY a",
        ).unwrap();
        let plan = Planner::new(&paper_catalog()).plan(&stmt).unwrap();
        let sq = rewrite_dropped(&plan).unwrap();
        // Columns: a b c d e → dims a≡b = 0, c≡d≡e = 1.
        prop_assert_eq!(&sq.column_dims, &vec![0, 0, 1, 1, 1]);

        let kept = vec![
            to_synopsis(&rk, 1),
            to_synopsis(&sk, 2),
            to_synopsis(&tk, 1),
            to_synopsis(&uk, 1),
        ];
        let dropped = vec![
            to_synopsis(&rd, 1),
            to_synopsis(&sd, 2),
            to_synopsis(&td, 1),
            to_synopsis(&ud, 1),
        ];
        let est = evaluate(&sq.plan, &kept, &dropped).unwrap();

        let spec = JoinSpec {
            steps: vec![vec![(0, 0)], vec![(2, 0)], vec![(3, 0)]],
        };
        let inputs = vec![
            (to_relation(&rk), to_relation(&rd)),
            (to_relation(&sk), to_relation(&sd)),
            (to_relation(&tk), to_relation(&td)),
            (to_relation(&uk), to_relation(&ud)),
        ];
        let exact = dropped_query(&inputs, &spec);
        prop_assert!((est.total_mass() - exact.len() as f64).abs() < 1e-6,
            "est {} vs exact {}", est.total_mass(), exact.len());
        // Per-group too.
        let counts = est.group_counts(sq.column_dims[plan.group_by[0]]).unwrap();
        let exact_groups = exact.project(&[0]);
        for (row, c) in exact_groups.iter() {
            let v = row[0].as_i64().unwrap();
            let e = counts.get(&v).copied().unwrap_or(0.0);
            prop_assert!((e - c as f64).abs() < 1e-6, "group {v}");
        }
    }

    /// Same theorem for a two-way join with a pushed-down selection.
    #[test]
    fn shadow_with_selection_matches_exact(
        (rk, rd) in arb_partition(1, 6, 10),
        (sk, sd) in arb_partition(2, 6, 10),
    ) {
        let stmt = parse_select(
            "SELECT a, COUNT(*) FROM R, S WHERE R.a = S.b AND S.c > 2 GROUP BY a",
        ).unwrap();
        let plan = Planner::new(&paper_catalog()).plan(&stmt).unwrap();
        let sq = rewrite_dropped(&plan).unwrap();

        let kept = vec![to_synopsis(&rk, 1), to_synopsis(&sk, 2)];
        let dropped = vec![to_synopsis(&rd, 1), to_synopsis(&sd, 2)];
        let est = evaluate(&sq.plan, &kept, &dropped).unwrap();

        // Exact: σ_{c>2}(dropped join).
        let spec = JoinSpec { steps: vec![vec![(0, 0)]] };
        let inputs = vec![
            (to_relation(&rk), to_relation(&rd)),
            (to_relation(&sk), to_relation(&sd)),
        ];
        let exact = dropped_query(&inputs, &spec)
            .select(|r| r[2].as_i64().unwrap() > 2);
        prop_assert!((est.total_mass() - exact.len() as f64).abs() < 1e-6,
            "est {} vs exact {}", est.total_mass(), exact.len());
    }
}
