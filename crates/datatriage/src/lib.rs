//! # Data Triage
//!
//! A from-scratch Rust reproduction of *Data Triage: An Adaptive
//! Architecture for Load Shedding in TelegraphCQ* (Reiss &
//! Hellerstein, ICDE 2005): a continuous-query engine whose triage
//! queues shed load under bursts, summarize what they shed into
//! multidimensional-histogram synopses, estimate the lost results with
//! a formally derived *shadow query*, and merge exact and estimated
//! answers into one composite result per window.
//!
//! This crate is the public facade: it re-exports every layer of the
//! workspace under one roof and is the only dependency a downstream
//! user needs.
//!
//! ## Quickstart
//!
//! ```
//! use datatriage::prelude::*;
//!
//! // 1. Declare the streams and the continuous query (Fig. 7 of the
//! //    paper).
//! let mut catalog = Catalog::new();
//! catalog.add_stream("R", Schema::from_pairs(&[("a", DataType::Int)]));
//! catalog.add_stream("S", Schema::from_pairs(&[("b", DataType::Int), ("c", DataType::Int)]));
//! catalog.add_stream("T", Schema::from_pairs(&[("d", DataType::Int)]));
//! let stmt = parse_select(
//!     "SELECT a, COUNT(*) as count FROM R,S,T \
//!      WHERE R.a = S.b AND S.c = T.d GROUP BY a \
//!      WINDOW R['1 second'], S['1 second'], T['1 second']",
//! ).unwrap();
//! let plan = Planner::new(&catalog).plan(&stmt).unwrap();
//!
//! // 2. Build a Data Triage pipeline.
//! let cfg = PipelineConfig::new(ShedMode::DataTriage);
//! let mut pipeline = Pipeline::new(plan, cfg).unwrap();
//!
//! // 3. Feed arrivals (here: a seeded synthetic workload) and read
//! //    the merged per-window results.
//! let workload = WorkloadConfig::paper_constant(2_000.0, 2_000, 42);
//! for (stream, tuple) in generate(&workload).unwrap() {
//!     pipeline.offer(stream, tuple).unwrap();
//! }
//! let report = pipeline.finish().unwrap();
//! assert!(report.totals.arrived > 0);
//! for window in &report.windows {
//!     let _groups = window.groups().unwrap();
//! }
//! ```
//!
//! ## Layer map
//!
//! | Re-export | Crate | Paper section |
//! |---|---|---|
//! | [`types`] | `dt-types` | data model, virtual time |
//! | [`algebra`] | `dt-algebra` | §3 differential relational algebra |
//! | [`synopsis`] | `dt-synopsis` | §5.2.2 synopsis structures |
//! | [`query`] | `dt-query` | Fig. 7 query dialect, EXPLAIN, join-order optimizer |
//! | [`rewrite`] | `dt-rewrite` | §4 shadow-query rewrite |
//! | [`engine`] | `dt-engine` | standard-case query engine |
//! | [`triage`] | `dt-triage` | Fig. 1 architecture, §5.2.1 modes, §8.1 shared multi-query pipeline |
//! | [`workload`] | `dt-workload` | §6.2 workloads |
//! | [`metrics`] | `dt-metrics` | §6.3 RMS metric, Fig. 8/9 sweeps |
//! | [`server`] | `dt-server` | the TelegraphCQ role: a live, concurrent runtime serving triage over TCP |
//! | [`obs`] | `dt-obs` | low-overhead metrics registry, histograms, spans, Prometheus exposition |

pub use dt_algebra as algebra;
pub use dt_engine as engine;
pub use dt_metrics as metrics;
pub use dt_obs as obs;
pub use dt_query as query;
pub use dt_rewrite as rewrite;
pub use dt_server as server;
pub use dt_synopsis as synopsis;
pub use dt_triage as triage;
pub use dt_types as types;
pub use dt_workload as workload;

/// The names most programs need, in one import.
pub mod prelude {
    pub use dt_engine::{execute_window, AggValue, CostModel, WindowOutput};
    pub use dt_metrics::{
        ideal_map, rate_sweep, report_to_map, rms_error, MeanStd, RatePoint, ResultMap, RunSummary,
        SweepConfig,
    };
    pub use dt_obs::MetricsRegistry;
    pub use dt_query::{parse_select, Catalog, Planner, QueryPlan};
    pub use dt_rewrite::{evaluate, rewrite_dropped, ShadowQuery, SynPlan};
    pub use dt_server::{
        fetch_stats, run_source, Client, Server, ServerConfig, ServerHandle, ServerReport, Source,
        TraceSource,
    };
    pub use dt_synopsis::{Synopsis, SynopsisConfig};
    pub use dt_triage::{
        DelayConstraint, DropPolicy, Pipeline, PipelineConfig, RunReport, ShedMode, TriageQueue,
        WindowPayload, WindowResult,
    };
    pub use dt_types::{
        Clock, DataType, DtError, DtResult, MonotonicClock, Row, Schema, Timestamp, Tuple,
        VDuration, Value, VirtualClock, WindowSpec,
    };
    pub use dt_workload::{generate, replay, ArrivalModel, Gaussian, StreamSpec, WorkloadConfig};
}
