//! `dtsim` — a command-line Data Triage simulator.
//!
//! Runs a continuous query over a synthetic workload through the load
//! shedding pipeline, printing per-window results and the RMS error
//! against the ideal (unshed) answer.
//!
//! ```text
//! dtsim [options]
//!   --query SQL         continuous query (default: the paper's Fig. 7 query)
//!   --streams SPEC      stream schemas, e.g. "R:a;S:b,c;T:d" (all INTEGER)
//!   --mode MODE         data-triage | drop-only | summarize-only | compare
//!   --rate N            constant arrival rate, tuples/s (default 2000)
//!   --bursty            use the paper's bursty arrival model (N = peak rate)
//!   --tuples N          total tuples to generate (default 12000)
//!   --capacity N        engine capacity, tuples/s (default 1000)
//!   --queue N           triage queue capacity (default 100)
//!   --delay-ms MS       delay constraint: enable the adaptive
//!                       controller and keep window results within MS
//!                       milliseconds of window close (default: off)
//!   --synopsis SPEC     sparse:W | mhist:B | mhist-aligned:B,G |
//!                       reservoir:C | wavelet:B (default sparse:10)
//!   --policy P          random | front | newest | synergistic
//!   --window SECS       window width in seconds (default: scale to
//!                       600 tuples/window)
//!   --seed N            RNG seed (default 0)
//!   --windows N         print at most N windows (default 5)
//!   --explain           print the plan tree and shadow query first
//!   --optimize          reorder joins with the cost-based optimizer
//!   --incremental       maintain windows with the streaming symmetric
//!                       join instead of batch execution at close
//!   --trace FILE        replay arrivals from a trace file instead of
//!                       generating them (format: ts_us,stream,v1[,v2…])
//!   --dump-trace FILE   write the arrivals used to a trace file
//!   --serve ADDR        instead of simulating, host the query on a
//!                       live dt-server at ADDR and replay the
//!                       arrivals through the TCP ingest path at their
//!                       recorded wall-clock times (single mode only)
//!   --queries FILE      additional ;-separated statements to register
//!                       alongside --query (`--` comment lines are
//!                       skipped); they share each stream's triage and
//!                       synopses (DESIGN.md §12). Requires --serve
//!   --obs               record observability instruments during the
//!                       run and print the snapshot table afterwards
//! ```
//!
//! Example:
//!
//! ```sh
//! cargo run --release -p datatriage --bin dtsim -- --mode compare --bursty --rate 12000
//! ```

use std::process::ExitCode;

use datatriage::prelude::*;

struct Args {
    query: String,
    streams: String,
    mode: String,
    rate: f64,
    bursty: bool,
    tuples: usize,
    capacity: f64,
    queue: usize,
    delay: Option<DelayConstraint>,
    synopsis: String,
    policy: String,
    window_secs: Option<f64>,
    seed: u64,
    show_windows: usize,
    trace_in: Option<String>,
    trace_out: Option<String>,
    incremental: bool,
    explain: bool,
    optimize: bool,
    serve: Option<String>,
    queries_file: Option<String>,
    obs: bool,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            query: "SELECT a, COUNT(*) as count FROM R,S,T \
                    WHERE R.a = S.b AND S.c = T.d GROUP BY a"
                .into(),
            streams: "R:a;S:b,c;T:d".into(),
            mode: "data-triage".into(),
            rate: 2_000.0,
            bursty: false,
            tuples: 12_000,
            capacity: 1_000.0,
            queue: 100,
            delay: None,
            synopsis: "sparse:10".into(),
            policy: "random".into(),
            window_secs: None,
            seed: 0,
            show_windows: 5,
            trace_in: None,
            trace_out: None,
            incremental: false,
            explain: false,
            optimize: false,
            serve: None,
            queries_file: None,
            obs: false,
        }
    }
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("missing value for {name}"));
        match flag.as_str() {
            "--query" => args.query = value("--query")?,
            "--streams" => args.streams = value("--streams")?,
            "--mode" => args.mode = value("--mode")?,
            "--rate" => {
                args.rate = value("--rate")?
                    .parse()
                    .map_err(|e| format!("bad --rate: {e}"))?
            }
            "--bursty" => args.bursty = true,
            "--tuples" => {
                args.tuples = value("--tuples")?
                    .parse()
                    .map_err(|e| format!("bad --tuples: {e}"))?
            }
            "--capacity" => {
                args.capacity = value("--capacity")?
                    .parse()
                    .map_err(|e| format!("bad --capacity: {e}"))?
            }
            "--queue" => {
                args.queue = value("--queue")?
                    .parse()
                    .map_err(|e| format!("bad --queue: {e}"))?
            }
            "--delay-ms" => {
                let ms: u64 = value("--delay-ms")?
                    .parse()
                    .map_err(|e| format!("bad --delay-ms: {e}"))?;
                args.delay = Some(
                    DelayConstraint::from_millis(ms).map_err(|e| format!("bad --delay-ms: {e}"))?,
                );
            }
            "--synopsis" => args.synopsis = value("--synopsis")?,
            "--policy" => args.policy = value("--policy")?,
            "--window" => {
                args.window_secs = Some(
                    value("--window")?
                        .parse()
                        .map_err(|e| format!("bad --window: {e}"))?,
                )
            }
            "--seed" => {
                args.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("bad --seed: {e}"))?
            }
            "--windows" => {
                args.show_windows = value("--windows")?
                    .parse()
                    .map_err(|e| format!("bad --windows: {e}"))?
            }
            "--incremental" => args.incremental = true,
            "--explain" => args.explain = true,
            "--optimize" => args.optimize = true,
            "--trace" => args.trace_in = Some(value("--trace")?),
            "--dump-trace" => args.trace_out = Some(value("--dump-trace")?),
            "--serve" => args.serve = Some(value("--serve")?),
            "--queries" => args.queries_file = Some(value("--queries")?),
            "--obs" => args.obs = true,
            "--help" | "-h" => {
                println!("see `dtsim` module docs (cargo doc) or the README for options");
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag '{other}' (try --help)")),
        }
    }
    Ok(args)
}

fn parse_streams(spec: &str) -> Result<Catalog, String> {
    let mut catalog = Catalog::new();
    for stream in spec.split(';').filter(|s| !s.is_empty()) {
        let (name, cols) = stream
            .split_once(':')
            .ok_or_else(|| format!("bad stream spec '{stream}' (want NAME:col1,col2)"))?;
        let fields: Vec<(&str, DataType)> = cols
            .split(',')
            .filter(|c| !c.is_empty())
            .map(|c| (c.trim(), DataType::Int))
            .collect();
        if fields.is_empty() {
            return Err(format!("stream '{name}' has no columns"));
        }
        catalog.add_stream(name.trim(), Schema::from_pairs(&fields));
    }
    Ok(catalog)
}

fn parse_synopsis(spec: &str, seed: u64) -> Result<SynopsisConfig, String> {
    let (kind, params) = spec.split_once(':').unwrap_or((spec, ""));
    let int = |s: &str| {
        s.parse::<i64>()
            .map_err(|e| format!("bad synopsis param '{s}': {e}"))
    };
    Ok(match kind {
        "sparse" => SynopsisConfig::Sparse {
            cell_width: int(params)?,
        },
        "mhist" => SynopsisConfig::MHist {
            max_buckets: int(params)? as usize,
            alignment: None,
        },
        "mhist-aligned" => {
            let (b, g) = params
                .split_once(',')
                .ok_or("mhist-aligned wants B,G".to_string())?;
            SynopsisConfig::MHist {
                max_buckets: int(b)? as usize,
                alignment: Some(int(g)?),
            }
        }
        "reservoir" => SynopsisConfig::Reservoir {
            capacity: int(params)? as usize,
            seed,
        },
        "wavelet" => SynopsisConfig::Wavelet {
            budget: int(params)? as usize,
            domain: 128,
        },
        other => return Err(format!("unknown synopsis kind '{other}'")),
    })
}

/// Split a `--queries` file into statements: `;`-separated, comment
/// lines (`--` prefix) dropped, blanks ignored.
fn split_statements(text: &str) -> Vec<String> {
    let stripped: String = text
        .lines()
        .filter(|l| !l.trim_start().starts_with("--"))
        .collect::<Vec<_>>()
        .join("\n");
    stripped
        .split(';')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(str::to_string)
        .collect()
}

fn parse_policy(s: &str) -> Result<DropPolicy, String> {
    DropPolicy::all()
        .into_iter()
        .find(|p| p.label() == s)
        .ok_or_else(|| format!("unknown policy '{s}'"))
}

fn parse_mode(s: &str) -> Result<Vec<ShedMode>, String> {
    if s == "compare" {
        return Ok(ShedMode::all().to_vec());
    }
    ShedMode::all()
        .into_iter()
        .find(|m| m.label() == s)
        .map(|m| vec![m])
        .ok_or_else(|| format!("unknown mode '{s}'"))
}

fn run(args: &Args) -> DtResult<()> {
    let catalog = parse_streams(&args.streams).map_err(DtError::config)?;
    let stmt = parse_select(&args.query)?;
    let mut plan = Planner::new(&catalog).plan(&stmt)?;
    if args.optimize {
        // Uniform per-stream statistics: equal shares of the window's
        // tuples, paper-domain distinct counts.
        let n_distinct_streams = {
            let mut seen = Vec::new();
            for b in &plan.streams {
                if !seen.contains(&b.stream) {
                    seen.push(b.stream.clone());
                }
            }
            seen.len().max(1)
        };
        let per_stream = 600.0 / n_distinct_streams as f64;
        let stats: Vec<datatriage::query::StreamStats> = plan
            .streams
            .iter()
            .map(|b| datatriage::query::StreamStats::uniform(b.schema.arity(), per_stream, 100.0))
            .collect();
        plan = datatriage::query::optimize_join_order(&plan, &stats)?;
    }

    // Workload: equal shares across the plan's *distinct* streams.
    let mut seen = Vec::new();
    for b in &plan.streams {
        if !seen.contains(&b.stream) {
            seen.push(b.stream.clone());
        }
    }
    let g = Gaussian::paper_default();
    let stream_specs: Vec<StreamSpec> = seen
        .iter()
        .map(|name| {
            let arity = catalog.schema(name).expect("planned stream").arity();
            if args.bursty {
                let mut s = StreamSpec::paper_bursty(arity);
                s.base_dist = g;
                s
            } else {
                StreamSpec::uniform_bursts(arity, g)
            }
        })
        .collect();
    let arrival = if args.bursty {
        ArrivalModel::paper_bursty(args.rate / 100.0)
    } else {
        ArrivalModel::Constant { rate: args.rate }
    };
    let workload = WorkloadConfig {
        streams: stream_specs,
        arrival,
        total_tuples: args.tuples,
        seed: args.seed,
    };

    // Window width: explicit or scaled to ~600 tuples/window.
    let width = match args.window_secs {
        Some(s) => VDuration::from_secs_f64(s),
        None => VDuration::from_secs_f64(600.0 / arrival.mean_rate()),
    };
    let spec = WindowSpec::new(width)?;
    for s in &mut plan.streams {
        s.window = spec;
    }

    let arrivals = match &args.trace_in {
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| DtError::config(format!("cannot read trace '{path}': {e}")))?;
            datatriage::workload::parse_trace(&text)?
        }
        None => generate(&workload)?,
    };
    if let Some(path) = &args.trace_out {
        let text = datatriage::workload::write_trace(&arrivals)?;
        std::fs::write(path, text)
            .map_err(|e| DtError::config(format!("cannot write trace '{path}': {e}")))?;
        println!("(trace written to {path})");
    }
    let ideal = if plan.is_aggregating() || !plan.group_by.is_empty() {
        Some(ideal_map(&plan, &arrivals)?)
    } else {
        None
    };

    println!(
        "dtsim: {} tuples, {} arrivals at {} t/s, engine {} t/s, window {:.3}s",
        args.tuples,
        if args.bursty {
            "bursty peak"
        } else {
            "constant"
        },
        args.rate,
        args.capacity,
        width.as_secs_f64()
    );
    println!("query: {}\n", args.query.trim());
    if args.explain {
        println!("{}", datatriage::query::explain(&plan));
        if let Ok(shadow) = datatriage::rewrite::rewrite_dropped(&plan) {
            let names: Vec<String> = plan.streams.iter().map(|s| s.alias.clone()).collect();
            println!("shadow query: {}\n", shadow.plan.display_sql(&names));
        }
    }

    let modes = parse_mode(&args.mode).map_err(DtError::config)?;

    // Live-serve wiring: host the same query on a real dt-server
    // socket, replay the same arrivals through TCP at their recorded
    // times, and score the live run against the same ideal.
    if args.queries_file.is_some() && args.serve.is_none() {
        return Err(DtError::config(
            "--queries registers extra live queries and wants --serve",
        ));
    }
    if let Some(addr) = &args.serve {
        if modes.len() > 1 {
            return Err(DtError::config(
                "--serve wants a single --mode, not compare",
            ));
        }
        let mode = modes[0];
        let mut scfg = ServerConfig::new(args.query.clone(), catalog.clone());
        if let Some(path) = &args.queries_file {
            let text = std::fs::read_to_string(path)
                .map_err(|e| DtError::config(format!("--queries {path}: {e}")))?;
            scfg.queries.extend(split_statements(&text));
        }
        scfg.mode = mode;
        scfg.window = Some(width);
        scfg.channel_capacity = args.queue;
        scfg.delay = args.delay;
        scfg.cost_hint = CostModel::from_capacity(args.capacity)?;
        scfg.synopsis = parse_synopsis(&args.synopsis, args.seed).map_err(DtError::config)?;
        if args.obs {
            scfg.metrics = MetricsRegistry::new();
        }
        let server = Server::start(
            &scfg,
            Some(addr),
            std::sync::Arc::new(MonotonicClock::new()),
        )?;
        let bound = server.addr().expect("listener bound");
        println!(
            "serving on {bound}; replaying {} arrivals at recorded times…",
            arrivals.len()
        );
        let names = seen.clone();
        let mut client = Client::connect(bound)?;
        let wall = MonotonicClock::new();
        replay(&arrivals, &wall, |s, t| {
            client.send(&names[s], &t.row, Some(t.ts))
        })?;
        client.close()?;
        let report = server.shutdown()?;
        let live = &report.reports[0];
        println!(
            "== live {:<11} kept {:>6}  shed {:>6} ({:>5.1}%)  windows {}",
            mode.label(),
            live.totals.kept,
            live.totals.dropped,
            100.0 * live.totals.dropped as f64 / live.totals.arrived.max(1) as f64,
            live.windows.len()
        );
        if let Some(ideal) = &ideal {
            println!(
                "   RMS error vs ideal: {:.3}",
                rms_error(ideal, &report_to_map(live))
            );
        }
        // Extra --queries statements share the streams' triage; only
        // the primary query is scored against the ideal.
        for q in report.queries.iter().skip(1) {
            println!("   q{} windows {:>4}  {}", q.id, q.windows_emitted, q.sql);
        }
        if let Some(snap) = &report.obs {
            println!("\n{}", snap.render_table());
        }
        return Ok(());
    }

    for mode in modes {
        let mut cfg = PipelineConfig::new(mode);
        cfg.policy = parse_policy(&args.policy).map_err(DtError::config)?;
        cfg.queue_capacity = args.queue;
        cfg.cost = CostModel::from_capacity(args.capacity)?;
        cfg.delay = args.delay;
        cfg.synopsis = parse_synopsis(&args.synopsis, args.seed).map_err(DtError::config)?;
        cfg.seed = args.seed;
        if args.incremental {
            cfg.execution = datatriage::triage::ExecStrategy::Incremental;
        }
        let reg = if args.obs {
            MetricsRegistry::new()
        } else {
            MetricsRegistry::disabled()
        };
        let report = Pipeline::run_with_metrics(plan.clone(), cfg, arrivals.iter().cloned(), &reg)?;
        println!(
            "== {:<15} kept {:>6}  dropped {:>6} ({:>5.1}%)  windows {}",
            mode.label(),
            report.totals.kept,
            report.totals.dropped,
            100.0 * report.totals.dropped as f64 / report.totals.arrived.max(1) as f64,
            report.windows.len()
        );
        if let Some(ideal) = &ideal {
            println!(
                "   RMS error vs ideal: {:.3}",
                rms_error(ideal, &report_to_map(&report))
            );
        }
        for w in report.windows.iter().take(args.show_windows) {
            match &w.payload {
                WindowPayload::Groups(groups) => {
                    let mut top: Vec<(&Row, f64)> = groups.iter().map(|(k, v)| (k, v[0])).collect();
                    top.sort_by(|a, b| b.1.total_cmp(&a.1));
                    let show: Vec<String> = top
                        .iter()
                        .take(4)
                        .map(|(k, v)| format!("{k}={v:.1}"))
                        .collect();
                    println!(
                        "   w{:<4} arrived {:>5} kept {:>5} dropped {:>5} | {}",
                        w.window,
                        w.arrived,
                        w.kept,
                        w.dropped,
                        show.join("  ")
                    );
                }
                WindowPayload::Rows { rows, lost } => {
                    println!(
                        "   w{:<4} {} exact rows, est. {:.1} lost",
                        w.window,
                        rows.len(),
                        lost.as_ref().map(|l| l.total_mass()).unwrap_or(0.0)
                    );
                }
            }
        }
        if report.windows.len() > args.show_windows {
            println!(
                "   … {} more windows",
                report.windows.len() - args.show_windows
            );
        }
        if args.obs {
            println!("\n{}", reg.render_table());
        }
        println!();
    }
    Ok(())
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("dtsim: {e}");
            return ExitCode::FAILURE;
        }
    };
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("dtsim: {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_specs_parse() {
        let c = parse_streams("R:a;S:b,c;T:d").unwrap();
        assert_eq!(c.schema("R").unwrap().arity(), 1);
        assert_eq!(c.schema("S").unwrap().arity(), 2);
        assert_eq!(c.schema("T").unwrap().arity(), 1);
        assert!(parse_streams("R").is_err());
        assert!(parse_streams("R:").is_err());
        // Trailing separators are tolerated.
        assert!(parse_streams("R:a;").is_ok());
    }

    #[test]
    fn synopsis_specs_parse() {
        assert_eq!(
            parse_synopsis("sparse:10", 0).unwrap(),
            SynopsisConfig::Sparse { cell_width: 10 }
        );
        assert_eq!(
            parse_synopsis("mhist:64", 0).unwrap(),
            SynopsisConfig::MHist {
                max_buckets: 64,
                alignment: None
            }
        );
        assert_eq!(
            parse_synopsis("mhist-aligned:64,10", 0).unwrap(),
            SynopsisConfig::MHist {
                max_buckets: 64,
                alignment: Some(10)
            }
        );
        assert_eq!(
            parse_synopsis("reservoir:200", 7).unwrap(),
            SynopsisConfig::Reservoir {
                capacity: 200,
                seed: 7
            }
        );
        assert_eq!(
            parse_synopsis("wavelet:32", 0).unwrap(),
            SynopsisConfig::Wavelet {
                budget: 32,
                domain: 128
            }
        );
        assert!(parse_synopsis("zipf:3", 0).is_err());
        assert!(parse_synopsis("sparse:x", 0).is_err());
        assert!(parse_synopsis("mhist-aligned:64", 0).is_err());
    }

    #[test]
    fn modes_and_policies_parse() {
        assert_eq!(parse_mode("compare").unwrap().len(), 3);
        assert_eq!(parse_mode("drop-only").unwrap(), vec![ShedMode::DropOnly]);
        assert!(parse_mode("yolo").is_err());
        assert_eq!(
            parse_policy("synergistic").unwrap(),
            DropPolicy::Synergistic
        );
        assert!(parse_policy("coinflip").is_err());
    }
}
