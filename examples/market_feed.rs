//! Market-feed analytics during a flash event.
//!
//! One stream of trades `(symbol, price)`; the continuous query keeps
//! per-symbol trade counts and average prices per window. A flash
//! event multiplies the feed rate by 100× while prices crash to a
//! different distribution — the burst data *is* the story, so a
//! load shedder that drops it blinds the analyst. This example shows
//! the merged `COUNT` and re-weighted `AVG` tracking the ideal values
//! through the event.
//!
//! ```sh
//! cargo run --release -p datatriage --example market_feed
//! ```

use datatriage::prelude::*;

fn main() -> DtResult<()> {
    let mut catalog = Catalog::new();
    catalog.add_stream(
        "trades",
        Schema::from_pairs(&[("symbol", DataType::Int), ("price", DataType::Int)]),
    );
    let sql = "SELECT symbol, COUNT(*) as trades, AVG(price) as avg_price \
               FROM trades GROUP BY symbol WINDOW trades['1 second']";
    let plan = Planner::new(&catalog).plan(&parse_select(sql)?)?;

    // Ten symbols (1..=10); normal prices around 60, crash prices
    // around 25.
    let normal = Gaussian {
        mean: 60.0,
        std: 8.0,
        lo: 1,
        hi: 100,
    };
    let crash = Gaussian {
        mean: 25.0,
        std: 6.0,
        lo: 1,
        hi: 100,
    };
    // The symbol column must come from a narrow domain: we overwrite
    // it below after generation so both distributions share symbols.
    let workload = WorkloadConfig {
        streams: vec![StreamSpec {
            arity: 2,
            base_dist: normal,
            burst_dist: crash,
        }],
        arrival: ArrivalModel::paper_bursty(100.0),
        total_tuples: 12_000,
        seed: 11,
    };
    let mut arrivals = generate(&workload)?;
    // Re-map column 0 to a symbol id in 1..=10 (keep prices as drawn).
    for (i, (_, t)) in arrivals.iter_mut().enumerate() {
        let sym = (i % 10) as i64 + 1;
        let price = t.row[1].clone();
        t.row = Row::new(vec![Value::Int(sym), price]);
    }
    let ideal = ideal_map(&plan, &arrivals)?;

    let mut cfg = PipelineConfig::new(ShedMode::DataTriage);
    cfg.cost = CostModel::from_capacity(800.0)?;
    cfg.queue_capacity = 80;
    // Cell width 1 on a 10-symbol × 100-price grid stays tiny while
    // keeping symbol resolution exact.
    cfg.synopsis = SynopsisConfig::Sparse { cell_width: 1 };
    cfg.seed = 11;
    let report = Pipeline::run(plan.clone(), cfg, arrivals.iter().cloned())?;
    let actual = report_to_map(&report);

    println!(
        "market feed: {} trades, {:.1}% shed, RMS error {:.2}\n",
        report.totals.arrived,
        100.0 * report.totals.dropped as f64 / report.totals.arrived as f64,
        rms_error(&ideal, &actual)
    );

    // Show symbol 1's trajectory through the event: ideal vs merged.
    println!("symbol 1, per window:   (count: ideal → merged,  avg price: ideal → merged)");
    let key = Row::from_ints(&[1]);
    for w in &report.windows {
        let Some(m) = w.groups().and_then(|g| g.get(&key)) else {
            continue;
        };
        let Some(i) = ideal.get(&(w.window, key.clone())) else {
            continue;
        };
        println!(
            "  window {:>3}:  count {:>7.1} → {:>7.1}   avg {:>5.1} → {:>5.1}",
            w.window, i[0], m[0], i[1], m[1]
        );
    }

    // Compare against drop-only on the same data: the crash average
    // is what drop-only gets wrong.
    let mut cfg = PipelineConfig::new(ShedMode::DropOnly);
    cfg.cost = CostModel::from_capacity(800.0)?;
    cfg.queue_capacity = 80;
    cfg.seed = 11;
    let drop_report = Pipeline::run(plan.clone(), cfg, arrivals.iter().cloned())?;
    let drop_err = rms_error(&ideal, &report_to_map(&drop_report));
    println!(
        "\ndrop-only RMS error on the same feed: {:.2}  (data-triage: {:.2})",
        drop_err,
        rms_error(&ideal, &actual)
    );
    Ok(())
}
