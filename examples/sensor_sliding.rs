//! Sliding-window monitoring of an out-of-order sensor feed.
//!
//! Combines the reproduction's TelegraphCQ-style extensions:
//!
//! * a **hopping window** (`WINDOW readings['2 seconds', '500
//!   milliseconds']`) — each reading contributes to four overlapping
//!   windows, giving a smooth moving view;
//! * a [`ReorderBuffer`] absorbing network jitter (readings arrive up
//!   to 20 ms out of order);
//! * the **adaptive** memory-bounded synopsis, so a burst cannot blow
//!   up synopsis memory;
//! * HAVING over *merged* aggregates: alert groups only count when
//!   exact + estimated readings together clear the threshold.
//!
//! ```sh
//! cargo run --release -p datatriage --example sensor_sliding
//! ```

use datatriage::prelude::*;
use datatriage::triage::ReorderBuffer;

fn main() -> DtResult<()> {
    let mut catalog = Catalog::new();
    catalog.add_stream(
        "readings",
        Schema::from_pairs(&[("sensor", DataType::Int), ("level", DataType::Int)]),
    );
    let plan = Planner::new(&catalog).plan(&parse_select(
        "SELECT sensor, COUNT(*) as n, AVG(level) as avg_level FROM readings \
         WHERE level > 10 GROUP BY sensor HAVING COUNT(*) >= 20 \
         WINDOW readings['2 seconds', '500 milliseconds']",
    )?)?;
    println!("{}", datatriage::query::explain(&plan));

    let mut cfg = PipelineConfig::new(ShedMode::DataTriage);
    cfg.cost = CostModel::from_capacity(700.0)?;
    cfg.queue_capacity = 70;
    cfg.synopsis = SynopsisConfig::AdaptiveSparse {
        base_width: 1,
        max_cells: 64,
    };
    cfg.seed = 99;
    let mut pipeline = Pipeline::new(plan, cfg)?;

    // A bursty feed whose tuples arrive with up to 20 ms of jitter.
    let workload = WorkloadConfig {
        streams: vec![StreamSpec {
            arity: 2,
            base_dist: Gaussian {
                mean: 40.0,
                std: 15.0,
                lo: 1,
                hi: 100,
            },
            burst_dist: Gaussian {
                mean: 85.0,
                std: 8.0,
                lo: 1,
                hi: 100,
            },
        }],
        arrival: ArrivalModel::paper_bursty(80.0),
        total_tuples: 10_000,
        seed: 99,
    };
    let mut arrivals = generate(&workload)?;
    // Assign sensor ids and jitter the delivery order deterministically.
    for (i, (_, t)) in arrivals.iter_mut().enumerate() {
        let sensor = (i % 6) as i64 + 1;
        let level = t.row[1].clone();
        t.row = Row::new(vec![Value::Int(sensor), level]);
    }
    let mut jittered = arrivals.clone();
    for i in (3..jittered.len()).step_by(4) {
        jittered.swap(i - 3, i); // out-of-order by up to 3 positions
    }

    let mut reorder = ReorderBuffer::new(VDuration::from_millis(20));
    let mut fed = 0u64;
    for (stream, tuple) in jittered {
        match reorder.offer(stream, tuple) {
            Ok(ready) => {
                for (s, t) in ready {
                    pipeline.offer(s, t)?;
                    fed += 1;
                }
            }
            Err(_) => { /* too late even for the bound; shed at ingress */ }
        }
    }
    for (s, t) in reorder.drain() {
        pipeline.offer(s, t)?;
        fed += 1;
    }
    let report = pipeline.finish()?;

    println!(
        "fed {fed} readings ({} rejected as too-late), shed {} ({:.1}%), \
         peak synopsis memory {} cells",
        reorder.late_dropped(),
        report.totals.dropped,
        100.0 * report.totals.dropped as f64 / report.totals.arrived.max(1) as f64,
        report.totals.peak_synopsis_units,
    );

    // Print the sliding alert view: windows where some sensor cleared
    // the HAVING threshold.
    println!("\nsliding alert view (windows advance every 0.5 s, span 2 s):");
    let mut alerts = 0;
    for w in &report.windows {
        let groups = w.groups().expect("aggregating");
        if groups.is_empty() {
            continue;
        }
        let mut items: Vec<String> = groups
            .iter()
            .map(|(k, v)| format!("sensor {} (n={:.0}, avg {:.0})", k[0], v[0], v[1]))
            .collect();
        items.sort();
        println!("  window {:>3}: {}", w.window, items.join(", "));
        alerts += 1;
        if alerts >= 12 {
            println!("  …");
            break;
        }
    }
    if alerts == 0 {
        println!("  (no window cleared the threshold)");
    }
    println!(
        "\nnote: under the heaviest bursts the adaptive synopsis coarsens its\n\
         grid, so estimated mass can spread to neighbouring sensor ids\n\
         (e.g. 'sensor 0'/'sensor 7' above) — resolution, not memory, is\n\
         what degrades under pressure."
    );
    Ok(())
}
