//! Network monitoring under a traffic spike — the paper's motivating
//! scenario ("crisis scenarios: network attacks … a high volume of
//! unusual readings").
//!
//! Streams:
//! * `flows(src, dport)` — one tuple per observed flow;
//! * `watch(port)`       — a (streamed) watchlist of suspicious ports.
//!
//! Continuous query: per-port counts of watched flows. During the
//! attack burst, traffic concentrates on low port numbers (a different
//! distribution from the steady state), and its volume exceeds the
//! monitor's capacity — exactly the situation where drop-only loses
//! the attack signal. All three shedding modes run on the *same*
//! arrival sequence and are scored against the ideal result.
//!
//! ```sh
//! cargo run --release -p datatriage --example network_monitor
//! ```

use datatriage::prelude::*;

fn main() -> DtResult<()> {
    let mut catalog = Catalog::new();
    catalog.add_stream(
        "flows",
        Schema::from_pairs(&[("src", DataType::Int), ("dport", DataType::Int)]),
    );
    catalog.add_stream("watch", Schema::from_pairs(&[("port", DataType::Int)]));
    let sql = "SELECT dport, COUNT(*) as hits FROM flows, watch \
               WHERE flows.dport = watch.port GROUP BY dport \
               WINDOW flows['1 second'], watch['1 second']";
    let plan = Planner::new(&catalog).plan(&parse_select(sql)?)?;

    // Steady-state traffic spreads over the port domain (mean 50);
    // attack bursts hammer low ports (mean 10). The watchlist stream
    // is uniform-ish over the same domain.
    let attack = Gaussian {
        mean: 10.0,
        std: 5.0,
        lo: 1,
        hi: 100,
    };
    let steady = Gaussian::paper_default();
    let workload = WorkloadConfig {
        streams: vec![
            StreamSpec {
                arity: 2,
                base_dist: steady,
                burst_dist: attack,
            },
            StreamSpec::uniform_bursts(1, steady),
        ],
        arrival: ArrivalModel::paper_bursty(150.0),
        total_tuples: 16_000,
        seed: 7,
    };
    let arrivals = generate(&workload)?;
    let ideal = ideal_map(&plan, &arrivals)?;

    println!(
        "network monitor: {} arrivals, peak rate {:.0} t/s, engine capacity 1000 t/s\n",
        arrivals.len(),
        workload.arrival.peak_rate()
    );
    println!(
        "{:>16}  {:>10}  {:>10}  {:>9}",
        "mode", "RMS error", "dropped", "windows"
    );
    let mut series = Vec::new();
    for mode in ShedMode::all() {
        let mut cfg = PipelineConfig::new(mode);
        cfg.cost = CostModel::from_capacity(1_000.0)?;
        cfg.queue_capacity = 100;
        cfg.synopsis = SynopsisConfig::Sparse { cell_width: 5 };
        cfg.seed = 7;
        let report = Pipeline::run(plan.clone(), cfg, arrivals.iter().cloned())?;
        let err = rms_error(&ideal, &report_to_map(&report));
        println!(
            "{:>16}  {:>10.2}  {:>9.1}%  {:>9}",
            mode.label(),
            err,
            100.0 * report.totals.dropped as f64 / report.totals.arrived.max(1) as f64,
            report.windows.len()
        );
        series.push((mode, err));
    }

    // The paper's qualitative claim, asserted live: Data Triage is at
    // least as accurate as both alternatives under this burst.
    let err_of = |m: ShedMode| series.iter().find(|(s, _)| *s == m).unwrap().1;
    let dt = err_of(ShedMode::DataTriage);
    println!(
        "\ndata-triage vs drop-only:      {:+.1}%",
        100.0 * (dt / err_of(ShedMode::DropOnly) - 1.0)
    );
    println!(
        "data-triage vs summarize-only: {:+.1}%",
        100.0 * (dt / err_of(ShedMode::SummarizeOnly) - 1.0)
    );
    Ok(())
}
