//! A terminal rendition of the paper's Fig. 3 visualization:
//! exact result tuples drawn as points, the shadow-query estimate of
//! *lost* results drawn as shaded cells ("rectangles in varying
//! shades of red" in the paper's web UI; density glyphs here).
//!
//! The query returns two-dimensional tuples (no aggregation), so each
//! window's payload carries the exact rows plus the lost-result
//! synopsis; the renderer overlays them on one grid.
//!
//! ```sh
//! cargo run --release -p datatriage --example dashboard
//! ```

use datatriage::prelude::*;
use datatriage::synopsis::Synopsis as Syn;

const GRID: i64 = 10; // cells per axis (domain 1..=100, width 10)

fn main() -> DtResult<()> {
    let mut catalog = Catalog::new();
    catalog.add_stream(
        "points",
        Schema::from_pairs(&[("x", DataType::Int), ("y", DataType::Int)]),
    );
    let sql = "SELECT x, y FROM points WINDOW points['1 second']";
    let plan = Planner::new(&catalog).plan(&parse_select(sql)?)?;

    // Steady data clusters top-right (mean 70); burst data bottom-left
    // (mean 25) — the burst paints a second cluster the analyst must
    // not lose.
    let steady = Gaussian {
        mean: 70.0,
        std: 10.0,
        lo: 1,
        hi: 100,
    };
    let burst = Gaussian {
        mean: 25.0,
        std: 8.0,
        lo: 1,
        hi: 100,
    };
    let workload = WorkloadConfig {
        streams: vec![StreamSpec {
            arity: 2,
            base_dist: steady,
            burst_dist: burst,
        }],
        arrival: ArrivalModel::paper_bursty(60.0),
        total_tuples: 6_000,
        seed: 5,
    };
    let arrivals = generate(&workload)?;

    let mut cfg = PipelineConfig::new(ShedMode::DataTriage);
    cfg.cost = CostModel::from_capacity(400.0)?;
    cfg.queue_capacity = 60;
    cfg.synopsis = SynopsisConfig::Sparse { cell_width: GRID };
    cfg.seed = 5;
    let report = Pipeline::run(plan, cfg, arrivals)?;

    // Render the busiest window.
    let window = report
        .windows
        .iter()
        .max_by_key(|w| w.arrived)
        .expect("at least one window");
    let WindowPayload::Rows { rows, lost } = &window.payload else {
        unreachable!("non-aggregating query");
    };
    println!(
        "window {} — {} arrived, {} kept (points), {} dropped (shaded estimate)\n",
        window.window, window.arrived, window.kept, window.dropped
    );

    // Kept points per cell.
    let mut kept_cells = vec![vec![0u32; GRID as usize]; GRID as usize];
    for r in rows {
        let (x, y) = (r[0].as_i64().unwrap(), r[1].as_i64().unwrap());
        let (cx, cy) = (((x - 1) / GRID) as usize, ((y - 1) / GRID) as usize);
        kept_cells[cy.min(9)][cx.min(9)] += 1;
    }
    // Lost-estimate mass per cell, straight from the sparse histogram.
    let mut lost_cells = vec![vec![0f64; GRID as usize]; GRID as usize];
    if let Some(Syn::Sparse(hist)) = lost.as_ref() {
        for (coords, mass) in hist.iter_cells() {
            // Histogram cells are value/GRID; domain starts at 1 so
            // cell 0 covers 0..GRID etc. Clamp into the render grid.
            let cx = coords[0].clamp(0, 9) as usize;
            let cy = coords[1].clamp(0, 9) as usize;
            lost_cells[cy][cx] += mass;
        }
    }

    let max_lost = lost_cells
        .iter()
        .flatten()
        .fold(0.0f64, |a, &b| a.max(b))
        .max(1.0);
    println!("   legend: '·:▒▓█' = estimated lost mass (light→heavy), '•' = exact kept point\n");
    for cy in (0..GRID as usize).rev() {
        print!("  {:>3} │", (cy as i64 + 1) * GRID);
        for cx in 0..GRID as usize {
            let lost = lost_cells[cy][cx];
            let kept = kept_cells[cy][cx];
            let shade = match (lost / max_lost * 4.0).round() as u32 {
                0 => ' ',
                1 => '·',
                2 => ':',
                3 => '▒',
                _ => '█',
            };
            let point = if kept > 0 { '•' } else { shade };
            print!(" {point}{shade}");
        }
        println!();
    }
    println!("      └{}", "─".repeat(3 * GRID as usize));
    println!("        10        30        50        70        90  (x)");
    println!(
        "\nestimated lost tuples in this window: {:.1} (actual dropped: {})",
        lost.as_ref().map(|s| s.total_mass()).unwrap_or(0.0),
        window.dropped
    );
    Ok(())
}
