//! Quickstart: the paper's experiment query under a burst, end to end.
//!
//! Runs the Fig. 7 three-way join + GROUP BY query through the full
//! Data Triage pipeline on a bursty workload that overloads the
//! engine, then prints the merged per-window results and the shedding
//! statistics.
//!
//! ```sh
//! cargo run --release -p datatriage --example quickstart
//! ```

use datatriage::prelude::*;

fn main() -> DtResult<()> {
    // --- 1. Streams and query (paper Fig. 7) -------------------------
    let mut catalog = Catalog::new();
    catalog.add_stream("R", Schema::from_pairs(&[("a", DataType::Int)]));
    catalog.add_stream(
        "S",
        Schema::from_pairs(&[("b", DataType::Int), ("c", DataType::Int)]),
    );
    catalog.add_stream("T", Schema::from_pairs(&[("d", DataType::Int)]));
    let stmt = parse_select(
        "SELECT a, COUNT(*) as count FROM R,S,T \
         WHERE R.a = S.b AND S.c = T.d GROUP BY a \
         WINDOW R['1 second'], S['1 second'], T['1 second']",
    )?;
    let plan = Planner::new(&catalog).plan(&stmt)?;
    println!(
        "query plan: {} streams, {} join steps, group by column {:?}",
        plan.streams.len(),
        plan.join_graph.steps.len(),
        plan.group_by,
    );

    // --- 2. A Data Triage pipeline ----------------------------------
    // Engine capacity 1 000 tuples/s; the bursty workload peaks at
    // 20 000 tuples/s, forcing the triage queue to shed.
    let mut cfg = PipelineConfig::new(ShedMode::DataTriage);
    cfg.cost = CostModel::from_capacity(1_000.0)?;
    cfg.queue_capacity = 100;
    cfg.synopsis = SynopsisConfig::Sparse { cell_width: 10 };
    cfg.seed = 42;
    let mut pipeline = Pipeline::new(plan.clone(), cfg)?;
    if let Some(shadow) = pipeline.shadow() {
        let names: Vec<String> = plan.streams.iter().map(|s| s.alias.clone()).collect();
        println!("\nshadow query (paper Fig. 5 analog):");
        println!("  {}", shadow.plan.display_sql(&names));
    }

    // --- 3. Feed a bursty workload -----------------------------------
    let workload = WorkloadConfig::paper_bursty(200.0, 12_000, 42);
    let arrivals = generate(&workload)?;
    let ideal = ideal_map(&plan, &arrivals)?;
    for (stream, tuple) in &arrivals {
        pipeline.offer(*stream, tuple.clone())?;
    }
    let report = pipeline.finish()?;

    // --- 4. Inspect the merged results -------------------------------
    println!(
        "\narrived {}  kept {}  dropped {}  ({:.1}% shed)",
        report.totals.arrived,
        report.totals.kept,
        report.totals.dropped,
        100.0 * report.totals.dropped as f64 / report.totals.arrived as f64
    );
    println!("\n  window   arrived  kept  dropped  groups  sample of merged counts");
    for w in report.windows.iter().take(8) {
        let groups = w.groups().expect("aggregating query");
        let mut sample: Vec<(i64, f64)> = groups
            .iter()
            .filter_map(|(k, v)| k.get(0).and_then(Value::as_i64).map(|g| (g, v[0])))
            .collect();
        sample.sort_by(|a, b| b.1.total_cmp(&a.1));
        sample.truncate(3);
        let sample: Vec<String> = sample
            .iter()
            .map(|(g, c)| format!("a={g}:{c:.1}"))
            .collect();
        println!(
            "  {:>6}   {:>7}  {:>4}  {:>7}  {:>6}  {}",
            w.window,
            w.arrived,
            w.kept,
            w.dropped,
            groups.len(),
            sample.join("  ")
        );
    }
    if report.windows.len() > 8 {
        println!("  … {} more windows", report.windows.len() - 8);
    }

    // --- 5. How close did we get? ------------------------------------
    let actual = report_to_map(&report);
    println!(
        "\nRMS error vs ideal (unshed) result: {:.2}",
        rms_error(&ideal, &actual)
    );
    Ok(())
}
