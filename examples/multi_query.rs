//! Shared multi-query processing (paper §8.1): several continuous
//! queries over one set of physical streams, sharing triage queues,
//! engine capacity, and — the part the paper flags as unexplored —
//! the kept/dropped **synopses**.
//!
//! Three analysts watch the same overloaded sensor feed:
//! * Q1: per-sensor reading counts,
//! * Q2: average reading per sensor,
//! * Q3: counts of high readings only (a filtered view).
//!
//! One arrival sequence drives all three; each tuple is queued, shed,
//! and synopsized exactly once.
//!
//! ```sh
//! cargo run --release -p datatriage --example multi_query
//! ```

use datatriage::prelude::*;
use datatriage::triage::SharedPipeline;

fn main() -> DtResult<()> {
    let mut catalog = Catalog::new();
    catalog.add_stream(
        "sensors",
        Schema::from_pairs(&[("sensor", DataType::Int), ("reading", DataType::Int)]),
    );
    let plans: Vec<QueryPlan> = [
        "SELECT sensor, COUNT(*) as n FROM sensors GROUP BY sensor WINDOW sensors['1 second']",
        "SELECT sensor, AVG(reading) as avg FROM sensors GROUP BY sensor WINDOW sensors['1 second']",
        "SELECT sensor, COUNT(*) as hot FROM sensors WHERE reading > 80 GROUP BY sensor \
         WINDOW sensors['1 second']",
    ]
    .iter()
    .map(|sql| Planner::new(&catalog).plan(&parse_select(sql)?))
    .collect::<DtResult<_>>()?;

    let mut cfg = PipelineConfig::new(ShedMode::DataTriage);
    cfg.cost = CostModel::from_capacity(600.0)?;
    cfg.queue_capacity = 60;
    cfg.synopsis = SynopsisConfig::Sparse { cell_width: 1 };
    cfg.seed = 21;
    let mut pipeline = SharedPipeline::new(plans.clone(), cfg)?;
    println!(
        "shared pipeline: {} queries over {} physical stream(s)\n",
        pipeline.num_queries(),
        pipeline.streams().len()
    );

    // A bursty feed: sensor ids 1..=8, readings Gaussian; the burst
    // runs hot (mean 90).
    let workload = WorkloadConfig {
        streams: vec![StreamSpec {
            arity: 2,
            base_dist: Gaussian {
                mean: 50.0,
                std: 12.0,
                lo: 1,
                hi: 100,
            },
            burst_dist: Gaussian {
                mean: 90.0,
                std: 5.0,
                lo: 1,
                hi: 100,
            },
        }],
        arrival: ArrivalModel::paper_bursty(60.0),
        total_tuples: 9_000,
        seed: 21,
    };
    let mut arrivals = generate(&workload)?;
    for (i, (_, t)) in arrivals.iter_mut().enumerate() {
        let sensor = (i % 8) as i64 + 1;
        let reading = t.row[1].clone();
        t.row = Row::new(vec![Value::Int(sensor), reading]);
    }
    // Ideal answers per query, for scoring.
    let ideals: Vec<ResultMap> = plans
        .iter()
        .map(|p| ideal_map(p, &arrivals))
        .collect::<DtResult<_>>()?;

    for (stream, tuple) in &arrivals {
        pipeline.offer(*stream, tuple.clone())?;
    }
    let reports = pipeline.finish()?;

    println!(
        "fed {} tuples once; {} shed once, shared by every query ({:.1}%)\n",
        reports[0].totals.arrived,
        reports[0].totals.dropped,
        100.0 * reports[0].totals.dropped as f64 / reports[0].totals.arrived as f64
    );
    let names = ["Q1 counts", "Q2 averages", "Q3 hot readings"];
    println!("{:<18} {:>9} {:>12}", "query", "windows", "RMS error");
    for ((name, report), ideal) in names.iter().zip(&reports).zip(&ideals) {
        println!(
            "{:<18} {:>9} {:>12.3}",
            name,
            report.windows.len(),
            rms_error(ideal, &report_to_map(report))
        );
    }
    println!(
        "\n(with width-1 synopses all three merged results are exact despite the\n\
         shedding — and the synopsis work was done once, not three times)"
    );
    Ok(())
}
